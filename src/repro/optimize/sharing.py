"""Applying the trie optimization to compiled NESs.

Per switch, the unguarded per-configuration rule sets feed the trie
heuristic; the optimized deployment guards each shared rule with a
:class:`repro.netkat.flowtable.PrefixMatch` over the configuration-tag
field.  This module produces both the counts (the §5.1 "rule reduction"
numbers, e.g. 18 -> 16 for the firewall) and an actual guarded rule
list, plus a semantic check that the optimized table behaves identically
to the naive guarded table for every configuration ID.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..netkat.flowtable import FlowTable, Match, PrefixMatch, Rule
from ..runtime.compiler import CompiledNES, TAG_FIELD
from .trie import (
    OptimizationResult,
    TrieNode,
    build_trie,
    heuristic_order,
    naive_rule_count,
    trie_rule_count,
)

__all__ = [
    "SwitchOptimization",
    "NESOptimization",
    "guarded_rules_of_trie",
    "optimize_compiled_nes",
]


@dataclass(frozen=True)
class SwitchOptimization:
    """Result for one switch: counts plus the deployable guarded rules."""

    switch: int
    original: int
    optimized: int
    rules: Tuple[Rule, ...]
    id_assignment: Dict[int, int]  # original config id -> assigned trie leaf id


@dataclass(frozen=True)
class NESOptimization:
    """Aggregated results across all switches of a compiled NES."""

    per_switch: Tuple[SwitchOptimization, ...]

    @property
    def original(self) -> int:
        return sum(s.original for s in self.per_switch)

    @property
    def optimized(self) -> int:
        return sum(s.optimized for s in self.per_switch)

    @property
    def savings_fraction(self) -> float:
        if self.original == 0:
            return 0.0
        return (self.original - self.optimized) / self.original


def guarded_rules_of_trie(
    root: TrieNode, width: int, tag_field: str = TAG_FIELD
) -> List[Rule]:
    """Materialize one guarded rule per (node, fresh rule).

    The guard is a PrefixMatch on ``tag_field``: ``depth`` fixed high
    bits, ``width - depth`` wildcarded low bits.  Priorities are offset
    so that deeper (more specific) guards win; within a node the
    original rule priorities are kept.
    """
    out: List[Rule] = []

    def walk(node: TrieNode, inherited: FrozenSet[Rule]) -> None:
        if node.rules is None:
            return
        fresh = node.rules - inherited
        for rule in sorted(fresh, key=lambda r: (-r.priority, repr(r.match))):
            guard = PrefixMatch(
                value=node.prefix,
                wildcard_bits=width - node.depth,
                width=width,
            )
            out.append(
                Rule(
                    priority=rule.priority,
                    match=rule.match.guarded(tag_field, guard),
                    actions=rule.actions,
                )
            )
        for child in node.children:
            walk(child, inherited | node.rules)

    walk(root, frozenset())
    return out


def optimize_compiled_nes(compiled: CompiledNES) -> NESOptimization:
    """Run the §5.3 heuristic over every switch of a compiled NES."""
    results: List[SwitchOptimization] = []
    config_ids = sorted(compiled.config_ids.values())
    for switch in sorted(compiled.topology.switches):
        by_config = compiled.rules_by_configuration(switch)
        configs = [by_config[cid] for cid in config_ids]
        original = naive_rule_count(configs)
        ordered = heuristic_order(configs)
        root = build_trie(ordered)
        optimized = trie_rule_count(root)
        width = (len(ordered)).bit_length() - 1
        rules = tuple(
            guarded_rules_of_trie(root, width, compiled.options.tag_field)
        )
        assignment = _leaf_assignment(ordered, configs)
        results.append(
            SwitchOptimization(
                switch=switch,
                original=original,
                optimized=optimized,
                rules=rules,
                id_assignment=assignment,
            )
        )
    return NESOptimization(tuple(results))


def _leaf_assignment(
    ordered: Sequence[Optional[FrozenSet[Rule]]],
    configs: Sequence[FrozenSet[Rule]],
) -> Dict[int, int]:
    """Map each original configuration ID to its assigned leaf ID.

    Equal rule sets are interchangeable, so assignment matches greedily
    by set equality.
    """
    assignment: Dict[int, int] = {}
    used_leaves: set = set()
    for config_id, rules in enumerate(configs):
        for leaf_id, leaf in enumerate(ordered):
            if leaf_id in used_leaves or leaf is None:
                continue
            if leaf == rules:
                assignment[config_id] = leaf_id
                used_leaves.add(leaf_id)
                break
    return assignment


def optimized_table_equivalent(
    compiled: CompiledNES, optimization: SwitchOptimization
) -> bool:
    """Semantic check: for every configuration, the optimized guarded
    table (with the packet's tag set to the *assigned* leaf ID) matches
    the original per-configuration table on that switch.

    Compares rule-by-rule reachable behavior by evaluating both tables
    on the match packets of every rule; used by the test suite.
    """
    from ..netkat.packet import Packet

    tag_field = compiled.options.tag_field
    table = FlowTable(optimization.rules)
    for state, config in compiled.configurations.items():
        config_id = compiled.config_ids[state]
        leaf_id = optimization.id_assignment.get(config_id)
        if leaf_id is None:
            return False
        original = config.table(optimization.switch)
        probes = _probe_packets(original)
        for probe in probes:
            tagged = probe.set(tag_field, leaf_id)
            got = table.apply(tagged)
            want = {p.set(tag_field, leaf_id) for p in original.apply(probe)}
            if got != frozenset(want):
                return False
    return True


def _probe_packets(table: FlowTable) -> List["Packet"]:
    from ..netkat.packet import Packet

    probes: List[Packet] = []
    for rule in table:
        fields = {}
        for field, constraint in rule.match.entries():
            if isinstance(constraint, int):
                fields[field] = constraint
        fields.setdefault("sw", 0)
        fields.setdefault("pt", 0)
        probes.append(Packet(fields))
    return probes
