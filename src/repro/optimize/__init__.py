"""The rule-sharing optimization of section 5.3."""

from .sharing import (
    NESOptimization,
    SwitchOptimization,
    guarded_rules_of_trie,
    optimize_compiled_nes,
    optimized_table_equivalent,
)
from .trie import (
    OptimizationResult,
    TrieNode,
    build_trie,
    exact_best_order,
    heuristic_order,
    naive_rule_count,
    optimize_configurations,
    trie_rule_count,
)

__all__ = [
    "TrieNode",
    "build_trie",
    "trie_rule_count",
    "naive_rule_count",
    "heuristic_order",
    "exact_best_order",
    "optimize_configurations",
    "OptimizationResult",
    "optimize_compiled_nes",
    "optimized_table_equivalent",
    "NESOptimization",
    "SwitchOptimization",
    "guarded_rules_of_trie",
]
