"""The rule-sharing optimization (section 5.3).

Rules guarded by configuration IDs are duplicated across configurations;
if a rule appears in all configurations whose IDs share their high-order
bits, one copy guarded by a *wildcarded* ID suffices.  The optimization
problem is to assign IDs to configurations so that this sharing is
maximal.

Formally: build a complete binary trie with the configurations (rule
sets) at the leaves; every internal node holds the intersection of its
children and a guard mask with the shared high bits fixed and the low
bits wildcarded.  A rule is materialized at the shallowest node that
contains it, so the total rule count is the sum over nodes of rules not
already present at an ancestor.

The paper's polynomial heuristic builds the trie bottom-up, at each
level pairing nodes to maximize the summed cardinality of pairwise
intersections.  We implement that heuristic (greedy maximum-weight
pairing), an exact brute-force optimum for small instances (used to
validate the heuristic), and the identity ordering as the baseline.

Configurations that do not fill a power of two are padded with *dummy*
configurations behaving as universal rule sets (the paper pads with
"all rules in R"): a dummy shares everything with its sibling, and its
own leaf materializes nothing because it is never deployed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

R = TypeVar("R", bound=Hashable)

__all__ = [
    "TrieNode",
    "build_trie",
    "trie_rule_count",
    "naive_rule_count",
    "heuristic_order",
    "exact_best_order",
    "OptimizationResult",
    "optimize_configurations",
]

RuleSet = FrozenSet[R]
# None plays the role of the universal set carried by dummy leaves.
MaybeRules = Optional[RuleSet]


@dataclass
class TrieNode:
    """One node of the configuration trie.

    ``rules`` is None for (subtrees of) dummy padding -- the universal
    set.  ``prefix``/``depth`` identify the guard: the top ``depth``
    bits of a ``width``-bit configuration ID equal ``prefix``.
    """

    rules: MaybeRules
    depth: int
    prefix: int
    children: Tuple["TrieNode", ...] = ()
    leaf_index: Optional[int] = None  # position in the *input* config list

    def is_leaf(self) -> bool:
        return not self.children


def _intersect(a: MaybeRules, b: MaybeRules) -> MaybeRules:
    if a is None:
        return b
    if b is None:
        return a
    return a & b


def build_trie(
    configs: Sequence[Optional[FrozenSet[R]]],
) -> TrieNode:
    """Build the trie for configurations in leaf order (None = dummy).

    The number of leaves must be a power of two (pad first).
    """
    n = len(configs)
    if n == 0 or n & (n - 1):
        raise ValueError(f"leaf count {n} is not a power of two")
    width = n.bit_length() - 1
    nodes: List[TrieNode] = [
        TrieNode(
            rules=config if config is not None else None,
            depth=width,
            prefix=i,
            leaf_index=i,
        )
        for i, config in enumerate(configs)
    ]
    depth = width
    while len(nodes) > 1:
        depth -= 1
        paired: List[TrieNode] = []
        for i in range(0, len(nodes), 2):
            left, right = nodes[i], nodes[i + 1]
            paired.append(
                TrieNode(
                    rules=_intersect(left.rules, right.rules),
                    depth=depth,
                    prefix=left.prefix >> 1,
                    children=(left, right),
                )
            )
        nodes = paired
    return nodes[0]


def trie_rule_count(root: TrieNode) -> int:
    """Total materialized rules: each rule counted at its shallowest node.

    Dummy (universal) leaves materialize nothing; a dummy's shared rules
    are accounted for at the ancestor where the sibling hoisted them.
    """

    def walk(node: TrieNode, inherited: FrozenSet) -> int:
        if node.rules is None:
            return 0  # dummy padding: never deployed
        fresh = node.rules - inherited
        total = len(fresh)
        for child in node.children:
            total += walk(child, inherited | node.rules)
        return total

    return walk(root, frozenset())


def naive_rule_count(configs: Sequence[FrozenSet[R]]) -> int:
    """Rules with one guarded copy per configuration (no sharing)."""
    return sum(len(c) for c in configs)


def _padded(configs: Sequence[FrozenSet[R]]) -> List[Optional[FrozenSet[R]]]:
    n = max(1, len(configs))
    size = 1 << max(1, math.ceil(math.log2(n))) if n > 1 else 2
    out: List[Optional[FrozenSet[R]]] = list(configs)
    out.extend([None] * (size - len(configs)))
    return out


def heuristic_order(configs: Sequence[FrozenSet[R]]) -> List[Optional[FrozenSet[R]]]:
    """The paper's bottom-up pairing heuristic.

    At each level, greedily pair the two nodes with the largest
    intersection (summed-cardinality maximization), building the leaf
    order implied by the pairing.  Returns the reordered (padded) leaf
    list.
    """
    padded = _padded(configs)

    @dataclass
    class Partial:
        rules: MaybeRules
        leaves: List[Optional[FrozenSet[R]]]

    nodes = [Partial(rules=c, leaves=[c]) for c in padded]
    while len(nodes) > 1:
        # Pair sizes are static within a level, so compute each pair's
        # intersection size exactly once and pick pairs greedily off the
        # sorted list (largest size first, then smallest indices -- the
        # same order the O(n^3) rescan produced).
        n = len(nodes)
        ranked: List[Tuple[int, int, int]] = []  # (-size, i, j)
        for i in range(n):
            for j in range(i + 1, n):
                shared = _intersect(nodes[i].rules, nodes[j].rules)
                size = len(shared) if shared is not None else _universal_len(
                    nodes[i].rules, nodes[j].rules
                )
                ranked.append((-size, i, j))
        ranked.sort()
        used = [False] * n
        paired: List[Partial] = []
        for _, i, j in ranked:
            if used[i] or used[j]:
                continue
            used[i] = used[j] = True
            paired.append(
                Partial(
                    rules=_intersect(nodes[i].rules, nodes[j].rules),
                    leaves=nodes[i].leaves + nodes[j].leaves,
                )
            )
        nodes = paired
    return nodes[0].leaves


def _universal_len(a: MaybeRules, b: MaybeRules) -> int:
    """Pairing weight when one side is a dummy: the other side's size."""
    if a is None and b is None:
        return 0
    concrete = a if a is not None else b
    assert concrete is not None
    return len(concrete)


def exact_best_order(
    configs: Sequence[FrozenSet[R]], max_leaves: int = 8
) -> Tuple[List[Optional[FrozenSet[R]]], int]:
    """Brute-force optimal leaf order (small instances only).

    Used by tests and the ablation bench to measure how far the
    heuristic is from optimal.
    """
    padded = _padded(configs)
    if len(padded) > max_leaves:
        raise ValueError(
            f"{len(padded)} leaves is too many for exhaustive search "
            f"(limit {max_leaves})"
        )
    best_order: Optional[List[Optional[FrozenSet[R]]]] = None
    best_count = None
    for perm in permutations(range(len(padded))):
        order = [padded[i] for i in perm]
        count = trie_rule_count(build_trie(order))
        if best_count is None or count < best_count:
            best_count = count
            best_order = order
    assert best_order is not None and best_count is not None
    return best_order, best_count


@dataclass(frozen=True)
class OptimizationResult:
    """Before/after rule counts for one optimization run."""

    original: int
    optimized: int

    @property
    def savings(self) -> int:
        return self.original - self.optimized

    @property
    def savings_fraction(self) -> float:
        if self.original == 0:
            return 0.0
        return self.savings / self.original


def optimize_configurations(configs: Sequence[FrozenSet[R]]) -> OptimizationResult:
    """Apply the heuristic and report rule counts (the §5.3 metric)."""
    if not configs:
        return OptimizationResult(0, 0)
    original = naive_rule_count(configs)
    order = heuristic_order(configs)
    optimized = trie_rule_count(build_trie(order))
    return OptimizationResult(original, optimized)
