"""The staged compilation pipeline: program -> ETS -> NES -> flow tables.

The paper's toolchain (Figure 7) is a fixed sequence of stages; this
module is its single front door.  :class:`CompileOptions` consolidates
every compiler/FDD/cache knob in one validated, frozen place, and
:class:`Pipeline` exposes the staged artifacts (:attr:`Pipeline.ets`,
:attr:`Pipeline.nes`, :attr:`Pipeline.compiled`) lazily, with per-stage
wall-clock timings and stats available via :meth:`Pipeline.report`.

Two scale axes hang off the options:

- ``backend`` shards the independent per-configuration
  ``compile_policy`` calls across an executor (``"serial"`` or
  ``"thread"``); results are gathered in configuration-state order, so
  the produced tables are byte-identical across backends.
- ``cache_dir`` enables a content-addressed on-disk artifact cache: the
  key is a SHA-256 digest of the program AST, the topology, the initial
  state, every output-affecting option, and the package version (see
  :meth:`Pipeline.artifact_key`), so a repeated
  :class:`Pipeline`/``App`` construction
  skips the ETS/NES/compile stages entirely and unpickles the
  :class:`~repro.runtime.compiler.CompiledNES` directly.

Execution-only knobs (``backend``, ``max_workers``, ``cache_dir``) are
deliberately excluded from the cache key: they cannot change the
artifact bytes (the golden tests in ``tests/test_pipeline.py`` pin
this), so serial and threaded runs share cache entries.

The rule for future knobs: any new compiler/cache switch lands as a
:class:`CompileOptions` field (not a loose keyword argument), and ships
with a byte-identity golden test for its off position.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import os
import pickle
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from . import faults
from .events.ets_to_nes import nes_of_ets
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .events.nes import NES
from .netkat import ast as _ast
from .netkat.ast import Policy
from .netkat.fdd import DEFAULT_FIELD_ORDER, FDDBuilder
from .runtime.compiler import TAG_FIELD, CompiledNES, compile_nes
from .stateful.ast import StateVector, vector_update
from .stateful.ets import ETS, build_ets
from .stateful.events import extract
from .stateful.projection import project
from .stateful.symbolic import (
    StateGuard,
    SymbolicProgram,
    changed_cell_guards,
    changed_edge_guards,
)
from .topology import Topology

__all__ = [
    "BACKENDS",
    "CompileOptions",
    "Delta",
    "Pipeline",
    "PipelineReport",
    "ArtifactCache",
    "ArtifactCacheWarning",
    "ArtifactIntegrityError",
    "PipelineError",
    "StageError",
    "compile_app",
]

# Executor backends for the per-configuration compile fan-out.  A
# "process" backend is the designed next step (same seam: deterministic
# state-ordered gather); it needs picklable compile closures, not a new
# API.
BACKENDS: Tuple[str, ...] = ("serial", "thread")

# Bump when the pickled artifact layout changes incompatibly; old cache
# entries then miss instead of unpickling garbage.  Format 2 added the
# optional HMAC-SHA256 signing envelope (see ArtifactCache).
ARTIFACT_FORMAT = 2

# Options that select *how* the pipeline executes, never *what* it
# produces; they are excluded from the artifact cache key.  The
# fault-tolerance knobs all live here: retry/deadline/degradation and
# cache signing change how (and whether) an artifact is obtained, never
# its bytes — the chaos suite pins that.
_EXECUTION_ONLY_FIELDS = frozenset(
    {
        "backend",
        "max_workers",
        "cache_dir",
        "cache_hmac_key",
        "strict_cache",
        "compile_retries",
        "deadline_seconds",
    }
)

# Environment fallback for CompileOptions.cache_hmac_key, so a fleet can
# be keyed without threading the secret through every construction site.
CACHE_HMAC_KEY_ENV = "REPRO_CACHE_HMAC_KEY"


class PipelineError(Exception):
    """Base for typed pipeline failures; ``stage`` names the provenance
    (``"ets"`` / ``"nes"`` / ``"compile"`` / ``"cache"``)."""

    def __init__(self, stage: str, message: str):
        super().__init__(message)
        self.stage = stage


class StageError(PipelineError):
    """A pipeline stage failed irrecoverably (after any retry and
    backend degradation the options allow)."""


class ArtifactIntegrityError(PipelineError):
    """A cached artifact failed HMAC verification under
    ``strict_cache=True``.  Never raised in the default lenient mode,
    where a bad artifact is a recorded miss + quarantine instead."""

    def __init__(self, message: str):
        super().__init__("cache", message)


class ArtifactCacheWarning(UserWarning):
    """A cache failure was absorbed (the cache is an accelerator, never
    a gate); the warning carries the cause that used to be swallowed
    silently."""


@dataclass(frozen=True)
class CompileOptions:
    """Every compiler/FDD/cache knob, in one validated place.

    Output-affecting knobs (everything except the execution trio
    ``backend`` / ``max_workers`` / ``cache_dir``) participate in the
    artifact cache key and must keep their byte-identity golden tests
    (see module docstring).

    - ``backend``: ``"serial"`` compiles configurations one by one on a
      single shared :class:`FDDBuilder`; ``"thread"`` shards them across
      a thread pool with one builder per worker thread (builders are not
      thread-safe), gathering results in state order.
    - ``max_workers``: thread-pool width (``None`` = executor default).
    - ``cache_dir``: directory for the persistent artifact cache;
      ``None`` (the default) disables it.
    - ``cache_hmac_key``: key (str/bytes) for HMAC-SHA256 signing of
      cache artifacts; falls back to the ``REPRO_CACHE_HMAC_KEY``
      environment variable, and ``None`` with no env var keeps the
      legacy unsigned format.  With a key, stored artifacts carry a
      signature envelope and loads verify it — a mismatching or
      unsigned entry is rejected (recorded miss + quarantine).
    - ``strict_cache``: escalate an integrity rejection from a recorded
      miss to a hard :class:`ArtifactIntegrityError` (for deployments
      where silently recompiling over a tampered cache is itself a
      signal worth stopping on).
    - ``compile_retries``: per-configuration compile attempts beyond the
      first (deterministic exponential backoff between attempts); ``0``
      disables retry.
    - ``deadline_seconds``: wall-clock budget for the compile stage,
      checked between per-configuration compiles (cooperative — one
      configuration is never preempted); exceeded → :class:`StageError`.
    - ``symbolic_extract``: build the ETS from one symbolic
      partial-evaluation pass over all state-component values
      (:class:`~repro.stateful.symbolic.SymbolicProgram`) instead of one
      ``extract``/``project`` walk per state; ``False`` selects the
      retained per-state reference walks.  Output-affecting by
      convention (it participates in the artifact cache key), though
      both paths are byte-identical by construction.
    - ``knowledge_cache``: the per-builder knowledge-predicate FDD cache
      from the second perf wave; ``False`` recompiles each knowledge
      predicate from a fresh AST (reference path).
    - ``ordered_insert``: the ordered-insert ITE strategy in the FDD
      algebra; ``False`` selects the retained mask/union reference path.
    - ``ast_memo``: the id-keyed ``of_policy``/``of_predicate`` memos.
    - ``field_order``: FDD branch-ordering precedence (``sw``/``pt``
      first keeps per-switch extraction cheap).
    - ``enforce_locality``: refuse NESs that are not locally determined
      (Lemma 1) instead of compiling them anyway.
    - ``tag_field``: the packet metadata field guarding merged tables.
    - ``max_frontier``: symbolic-knowledge frontier bound per hop.
    """

    backend: str = "serial"
    max_workers: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None
    cache_hmac_key: Optional[Union[str, bytes]] = None
    strict_cache: bool = False
    compile_retries: int = 2
    deadline_seconds: Optional[float] = None
    symbolic_extract: bool = True
    knowledge_cache: bool = True
    ordered_insert: bool = True
    ast_memo: bool = True
    field_order: Tuple[str, ...] = DEFAULT_FIELD_ORDER
    enforce_locality: bool = True
    tag_field: str = TAG_FIELD
    max_frontier: int = 4096

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.compile_retries < 0:
            raise ValueError(
                f"compile_retries must be >= 0, got {self.compile_retries}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.max_frontier < 1:
            raise ValueError(f"max_frontier must be >= 1, got {self.max_frontier}")
        if not self.tag_field:
            raise ValueError("tag_field must be a non-empty field name")
        object.__setattr__(self, "field_order", tuple(self.field_order))
        if self.cache_dir is not None:
            object.__setattr__(
                self, "cache_dir", Path(self.cache_dir).expanduser()
            )

    def replace(self, **changes) -> "CompileOptions":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def make_builder(self) -> FDDBuilder:
        """A fresh :class:`FDDBuilder` configured by these options."""
        return FDDBuilder.from_options(self)

    def semantic_fingerprint(self) -> str:
        """Canonical serialization of the output-affecting options."""
        pairs = tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in _EXECUTION_ONLY_FIELDS
        )
        return repr(pairs)

    def resolved_cache_hmac_key(self) -> Optional[bytes]:
        """The effective cache-signing key as bytes: the explicit field,
        else the ``REPRO_CACHE_HMAC_KEY`` environment variable, else
        ``None`` (unsigned legacy format)."""
        key = self.cache_hmac_key
        if key is None:
            env = os.environ.get(CACHE_HMAC_KEY_ENV)
            key = env if env else None
        if key is None:
            return None
        return key.encode() if isinstance(key, str) else bytes(key)


# ---------------------------------------------------------------------------
# Content-addressed artifact cache
# ---------------------------------------------------------------------------


def _topology_fingerprint(topology: Topology) -> str:
    """Canonical serialization of a topology (links, hosts, switches)."""
    links = tuple((str(src), str(dst)) for src, dst in topology.links())
    hosts = tuple((h.name, str(h.attachment)) for h in topology.hosts)
    switches = tuple(sorted(topology.switches))
    return repr((links, hosts, switches))


def artifact_digest(
    program: Policy,
    topology: Topology,
    initial_state: StateVector,
    options: CompileOptions,
) -> str:
    """The content address of one compiled artifact.

    Every AST node has a canonical, structure-complete ``repr``, so the
    program is digested through it; the topology through its sorted
    link/host/switch serialization; the options through their
    output-affecting fields only (module docstring).  The package
    version is folded in too, so a persistent ``cache_dir`` carried
    across an upgrade misses rather than serving tables compiled by an
    older (possibly since-fixed) compiler.
    """
    from . import __version__

    h = hashlib.sha256()
    for part in (
        f"repro-artifact-v{ARTIFACT_FORMAT}",
        f"repro-{__version__}",
        repr(program),
        _topology_fingerprint(topology),
        repr(tuple(initial_state)),
        options.semantic_fingerprint(),
    ):
        h.update(part.encode())
        h.update(b"\x00")
    return h.hexdigest()


# Signed-artifact envelope: MAGIC + 32-byte HMAC-SHA256(payload) +
# pickled payload.  Files without the magic are the legacy (format-1)
# unsigned layout.
_SIGNED_MAGIC = b"repro-signed-artifact\x00"
_HMAC_SIZE = hashlib.sha256().digest_size

# Quarantine slots kept per key (<key>.pkl.bad, .bad.1, ...) before the
# last slot is recycled; earlier forensic copies are never overwritten
# by a later rejection of the same key.
_QUARANTINE_SLOTS = 5


class ArtifactCache:
    """Pickled :class:`CompiledNES` artifacts under ``root/<digest>.pkl``.

    Writes go through a temp file + :func:`os.replace`, so concurrent
    pipelines racing on one key leave a complete artifact.  Unreadable
    or corrupt entries load as misses, never as errors — but no longer
    *silent* misses: the cause is surfaced once per cache as an
    :class:`ArtifactCacheWarning`, counted in ``health``, and the bad
    entry is quarantined to ``<key>.pkl.bad`` so a cold fleet does not
    re-read and re-reject it on every pipeline.

    With ``hmac_key`` set, stored artifacts carry an HMAC-SHA256
    signature envelope and loads verify it: a tampered, truncated, or
    unsigned entry is rejected (quarantine + recorded miss by default,
    :class:`ArtifactIntegrityError` under ``strict=True``) — the
    integrity prerequisite for sharing a cache beyond mutually-trusting
    writers.  A keyless cache still *reads* signed entries (unverified;
    same trust model as the legacy format it also reads).

    .. warning:: Artifacts are pickles, and unpickling executes code
       from the file.  The HMAC check authenticates entries against
       writers holding the key; without a key, point ``cache_dir`` only
       at directories whose writers you trust (your own machine, your
       own CI job) — never at a world-writable or untrusted shared path.
    """

    def __init__(
        self,
        root: Union[str, Path],
        hmac_key: Optional[bytes] = None,
        strict: bool = False,
        health: Optional[Dict[str, int]] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hmac_key = hmac_key
        self.strict = strict
        self.health = health if health is not None else {}
        self._warned: set = set()

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def bad_path(self, key: str, slot: int = 0) -> Path:
        """Where a corrupt/unverifiable entry for ``key`` is quarantined.

        Repeated rejections of one key fill numbered slots (``.bad``,
        ``.bad.1``, ... up to ``_QUARANTINE_SLOTS``), so an earlier
        forensic copy survives later rejections.
        """
        suffix = ".bad" if slot == 0 else f".bad.{slot}"
        return self.root / f"{key}.pkl{suffix}"

    # -- failure bookkeeping ------------------------------------------------

    def _count(self, counter: str) -> None:
        obs_metrics.count_health(self.health, counter)

    def _warn_once(self, category: str, message: str) -> None:
        # Counted on EVERY call, not just the first: the warning is
        # one-shot per cache, but the registry keeps seeing swallowed
        # failures after the warning is suppressed.
        obs_metrics.inc(
            "repro_cache_warnings_total",
            category=category,
            help="ArtifactCacheWarning-worthy cache failures by category "
                 "(counted even after the one-shot warning is suppressed)",
        )
        if category not in self._warned:
            self._warned.add(category)
            warnings.warn(message, ArtifactCacheWarning, stacklevel=4)

    def _quarantine(self, key: str) -> None:
        """Move the entry aside so it is never re-read and re-rejected;
        best-effort (a read-only cache just leaves it in place).

        The first free quarantine slot is used, so repeated rejections
        of the same key preserve the earlier forensic copies instead of
        silently overwriting the single ``.bad`` file; past the slot
        bound, the last slot is recycled.  Each successful quarantine is
        counted.
        """
        target = self.bad_path(key, _QUARANTINE_SLOTS - 1)
        for slot in range(_QUARANTINE_SLOTS):
            candidate = self.bad_path(key, slot)
            if not candidate.exists():
                target = candidate
                break
        try:
            os.replace(self.path(key), target)
            self._count("cache.quarantined")
        except OSError:
            pass

    def _reject(self, key: str, reason: str) -> None:
        """An entry failed verification: quarantine + count, and under
        strict mode escalate to a hard typed error."""
        self._count("cache.integrity_rejected")
        self._quarantine(key)
        if self.strict:
            raise ArtifactIntegrityError(
                f"cache artifact {self.path(key).name} rejected: {reason}"
            )
        self._warn_once(
            "integrity",
            f"artifact cache entry rejected ({reason}); recompiling "
            f"(quarantined to {self.bad_path(key).name})",
        )

    # -- load / store -------------------------------------------------------

    def load(self, key: str) -> Optional[CompiledNES]:
        try:
            faults.check("cache.load")
            blob = self.path(key).read_bytes()
        except FileNotFoundError:
            return None
        except Exception as exc:  # unreadable entry: recompile over it
            self._count("cache.load_error")
            self._warn_once(
                "load", f"artifact cache load failed ({exc!r}); recompiling"
            )
            return None
        payload = blob
        if blob.startswith(_SIGNED_MAGIC):
            header_end = len(_SIGNED_MAGIC) + _HMAC_SIZE
            if len(blob) < header_end:
                # A torn write that truncated inside the magic+HMAC
                # header: recognizably a signed entry, but without a
                # complete signature.  Reject it for keyed AND keyless
                # readers — slicing through it would hand pickle.loads
                # garbage bytes and miscount this as a generic corrupt
                # load instead of an integrity rejection.
                self._reject(key, "torn signed header (truncated entry)")
                return None
            digest, payload = blob[len(_SIGNED_MAGIC):header_end], blob[header_end:]
            if self.hmac_key is not None:
                want = hmac.new(self.hmac_key, payload, hashlib.sha256).digest()
                if len(digest) != _HMAC_SIZE or not hmac.compare_digest(digest, want):
                    self._reject(key, "HMAC-SHA256 mismatch (tampered or torn)")
                    return None
        elif self.hmac_key is not None:
            self._reject(key, "unsigned entry in a keyed cache")
            return None
        try:
            artifact = pickle.loads(payload)
        except Exception as exc:  # corrupt/truncated entry
            self._count("cache.load_corrupt")
            self._quarantine(key)
            self._warn_once(
                "corrupt",
                f"corrupt artifact cache entry ({exc!r}); recompiling "
                f"(quarantined to {self.bad_path(key).name})",
            )
            return None
        if not isinstance(artifact, CompiledNES):
            self._count("cache.load_corrupt")
            self._quarantine(key)
            self._warn_once(
                "corrupt",
                f"artifact cache entry holds {type(artifact).__name__}, "
                "not a CompiledNES; recompiling",
            )
            return None
        return artifact

    def store(self, key: str, compiled: CompiledNES) -> Path:
        faults.check("cache.store")
        target = self.path(key)
        tmp = target.with_name(
            f"{target.name}.tmp{os.getpid()}.{threading.get_ident()}"
        )
        payload = pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL)
        if self.hmac_key is not None:
            payload = (
                _SIGNED_MAGIC
                + hmac.new(self.hmac_key, payload, hashlib.sha256).digest()
                + payload
            )
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return target


# ---------------------------------------------------------------------------
# Deltas: the inputs of incremental recompilation
# ---------------------------------------------------------------------------


def _substitute_policy(
    p: Policy, old: Policy, new: Policy, hits: List[int]
) -> Policy:
    """Rebuild ``p`` with every subterm equal to ``old`` replaced by
    ``new``, counting replacements in ``hits[0]``.

    The walk is deterministic and shape-preserving (plain constructors,
    no smart-constructor normalization), and returns untouched subtrees
    by identity — the post-delta program shares every unchanged node
    with the original, which is what lets the symbolic layer's id-keyed
    memos and the guard diff localize the blast radius.
    """
    if p == old:
        hits[0] += 1
        return new
    if isinstance(p, _ast.Seq):
        left = _substitute_policy(p.left, old, new, hits)
        right = _substitute_policy(p.right, old, new, hits)
        return p if left is p.left and right is p.right else _ast.Seq(left, right)
    if isinstance(p, _ast.Union):
        left = _substitute_policy(p.left, old, new, hits)
        right = _substitute_policy(p.right, old, new, hits)
        return p if left is p.left and right is p.right else _ast.Union(left, right)
    if isinstance(p, _ast.Star):
        operand = _substitute_policy(p.operand, old, new, hits)
        return p if operand is p.operand else _ast.Star(operand)
    return p  # leaves w.r.t. policy children: filters, assigns, links, dup


@dataclass(frozen=True)
class Delta:
    """One small change to a pipeline's inputs (the unit of
    :meth:`Pipeline.update`).

    - ``set_state``: ``(component, value)`` writes applied to the
      initial state vector (the same shape as a link update's state
      writes).
    - ``replace_policy`` / ``with_policy``: substitute every occurrence
      of one sub-policy (matched by structural equality) with another;
      both must be given together, and the old sub-policy must occur.
    - ``topology``: a replacement topology (``None`` = unchanged).

    An all-defaults delta is a valid no-op (everything reuses).
    """

    set_state: Tuple[Tuple[int, int], ...] = ()
    replace_policy: Optional[Policy] = None
    with_policy: Optional[Policy] = None
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "set_state",
            tuple((int(m), int(n)) for m, n in self.set_state),
        )
        if (self.replace_policy is None) != (self.with_policy is None):
            raise ValueError(
                "replace_policy and with_policy must be given together"
            )

    def apply_program(self, program: Policy) -> Policy:
        """The post-delta program (``program`` itself when unchanged)."""
        if self.replace_policy is None or self.replace_policy == self.with_policy:
            return program
        hits = [0]
        substituted = _substitute_policy(
            program, self.replace_policy, self.with_policy, hits
        )
        if not hits[0]:
            raise ValueError(
                f"replace_policy {self.replace_policy!r} does not occur "
                "in the program"
            )
        return substituted

    def apply_initial_state(self, initial: StateVector) -> StateVector:
        """The post-delta initial state vector."""
        initial = tuple(initial)
        if not self.set_state:
            return initial
        for component, _ in self.set_state:
            if not 0 <= component < len(initial):
                raise ValueError(
                    f"set_state component {component} out of range for a "
                    f"{len(initial)}-component state vector"
                )
        return vector_update(initial, self.set_state)

    def apply_topology(self, topology: Topology) -> Topology:
        """The post-delta topology."""
        return self.topology if self.topology is not None else topology


class _PatchedInstantiation:
    """The ``build_ets`` instantiation source for :meth:`Pipeline.update`.

    States outside the delta's blast radius are served from the previous
    ETS, reusing its already-instantiated edge and configuration
    objects; affected (or newly reached) states fall through to the
    fresh per-state source.  ``edge_guards`` / ``cell_guards`` of
    ``None`` mean the blast radius is unknown — every state is fresh.
    """

    def __init__(
        self,
        fresh_edges,
        fresh_config,
        old_ets: Optional[ETS],
        edge_guards: Optional[FrozenSet[StateGuard]],
        cell_guards: Optional[FrozenSet[StateGuard]],
    ):
        self._fresh_edges = fresh_edges
        self._fresh_config = fresh_config
        self._old = old_ets
        self._old_states = (
            frozenset(old_ets.states()) if old_ets is not None else frozenset()
        )
        self._edge_guards = edge_guards
        self._cell_guards = cell_guards
        self.seen: set = set()
        self.fresh: set = set()

    def _unaffected(self, state, guards) -> bool:
        if guards is None or state not in self._old_states:
            return False
        return not any(g.holds(state) for g in guards)

    def edges_at(self, state):
        self.seen.add(state)
        if self._unaffected(state, self._edge_guards):
            return self._old.out_edges(state)
        self.fresh.add(state)
        return self._fresh_edges(state)

    def configuration_at(self, state):
        self.seen.add(state)
        if self._unaffected(state, self._cell_guards):
            return self._old.configuration(state)
        self.fresh.add(state)
        return self._fresh_config(state)


# ---------------------------------------------------------------------------
# The pipeline façade
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineReport:
    """Per-stage wall-clock timings and artifact stats for one pipeline.

    Only stages that actually ran appear in ``stage_seconds``; a warm
    artifact-cache hit runs just the ``compile`` stage (the load), and
    ``artifact_cache`` records ``"hit"``/``"miss"`` (``None`` when the
    cache is disabled).
    """

    stage_seconds: Tuple[Tuple[str, float], ...]
    stats: Tuple[Tuple[str, int], ...]
    backend: str
    artifact_cache: Optional[str]
    # Sub-stage split of the ets stage under symbolic_extract:
    # "ets.symbolic" (the one partial-evaluation pass) and
    # "ets.instantiate" (per-state BFS instantiation).  These refine
    # the "ets" entry of stage_seconds; total_seconds() ignores them.
    # A pipeline produced by Pipeline.update() additionally carries an
    # "update.delta" substage (delta application + blast-radius diff)
    # and "update.*" entries in stats (reinstantiation/recompile/reuse
    # counters).
    substages: Tuple[Tuple[str, float], ...] = ()
    # Failure/recovery counters: executor retries and serial fallbacks,
    # cache integrity rejections/quarantines, swallowed load/store
    # errors.  Empty = nothing went wrong *and* nothing was absorbed;
    # every absorbed failure shows up here, so nothing fails silently.
    health: Mapping[str, int] = dataclasses.field(default_factory=dict)

    def stage(self, name: str) -> Optional[float]:
        return dict(self.stage_seconds).get(name)

    def substage(self, name: str) -> Optional[float]:
        return dict(self.substages).get(name)

    def total_seconds(self) -> float:
        return sum(seconds for _, seconds in self.stage_seconds)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable snapshot of this report.

        This is the wire shape shared by the compilation service
        (``GET /stats`` / ``GET /health`` and every ``/compile``
        response) and ``python -m repro compile --report --json``; the
        key set is pinned by ``tests/test_pipeline.py`` so the format
        cannot drift silently.
        """
        return {
            "backend": self.backend,
            "artifact_cache": self.artifact_cache,
            "stages": dict(self.stage_seconds),
            "substages": dict(self.substages),
            "stats": dict(self.stats),
            "health": dict(self.health),
            "total_seconds": self.total_seconds(),
        }

    def __str__(self) -> str:
        lines = [f"pipeline backend={self.backend}"
                 + (f" artifact_cache={self.artifact_cache}"
                    if self.artifact_cache else "")]
        for name, seconds in self.stage_seconds:
            lines.append(f"  stage {name:<8s} {seconds:.6f}s")
            for sub, sub_seconds in self.substages:
                if sub.startswith(f"{name}."):
                    lines.append(f"    {sub:<18s} {sub_seconds:.6f}s")
        # Substages refining no stage that ran (e.g. "update.delta"):
        # printed in a trailing block so they stay visible.
        stages_shown = {name for name, _ in self.stage_seconds}
        for sub, sub_seconds in self.substages:
            if sub.split(".", 1)[0] not in stages_shown:
                lines.append(f"    {sub:<18s} {sub_seconds:.6f}s")
        for name, value in self.stats:
            lines.append(f"  {name:<22s} {value}")
        if self.health:
            for name in sorted(self.health):
                lines.append(f"  health {name:<22s} {self.health[name]}")
        else:
            lines.append("  health ok")
        return "\n".join(lines)


class Pipeline:
    """The staged toolchain of Figure 7 behind one façade.

    Stages are computed lazily and at most once::

        pipeline = Pipeline(program, topology, (0,), CompileOptions())
        pipeline.ets        # Stateful NetKAT -> event-driven transition system
        pipeline.nes        # ETS -> network event structure
        pipeline.compiled   # NES -> CompiledNES (tags + guarded tables)
        print(pipeline.report())

    With ``options.cache_dir`` set, :attr:`compiled` first consults the
    content-addressed artifact cache and, on a hit, skips the ETS and
    NES stages entirely (the NES is recovered from the artifact itself).

    The lazy memoization is thread-safe: a pipeline shared between
    threads (as the compilation service does across request handlers)
    runs each stage exactly once — concurrent readers of an unbuilt
    stage serialize on an internal lock and then observe the same
    artifact with fully-recorded stage timings.
    """

    def __init__(
        self,
        program: Policy,
        topology: Topology,
        initial_state: Iterable[int],
        options: Optional[CompileOptions] = None,
    ):
        self.program = program
        self.topology = topology
        self.initial_state: StateVector = tuple(initial_state)
        self.options = options if options is not None else CompileOptions()
        self._ets: Optional[ETS] = None
        self._nes: Optional[NES] = None
        self._compiled: Optional[CompiledNES] = None
        self._symbolic: Optional[SymbolicProgram] = None
        self._stage_seconds: Dict[str, float] = {}
        self._substage_seconds: Dict[str, float] = {}
        self._update_stats: Dict[str, int] = {}
        self._artifact_cache_state: Optional[str] = None
        self._artifact_key: Optional[str] = None
        self._cache: Optional[ArtifactCache] = None
        self._cache_resolved = False
        self._health: Dict[str, int] = {}
        # Guards the lazy stage memoization: a Pipeline shared between
        # threads (the compilation service memoizes pipelines across
        # request handlers) must run each stage exactly once, and a
        # lock-free reader that sees a published artifact must also see
        # its recorded stage timings — so stages run under this lock and
        # the memo field is always assigned *last*.
        self._memo_lock = threading.RLock()

    def _count(self, counter: str) -> None:
        obs_metrics.count_health(self._health, counter)

    @staticmethod
    def _stage_boundary(name: str) -> None:
        """The fault-injection hook at a stage boundary: an injected
        fault surfaces as a typed :class:`StageError` with provenance."""
        try:
            faults.check(f"stage.{name}")
        except faults.FaultInjected as exc:
            raise StageError(name, f"stage {name!r} failed: {exc}") from exc

    @staticmethod
    def _observe_stage(stage: str, seconds: float) -> None:
        """Mirror a recorded stage timing into the installed registry
        (the ``_stage_seconds`` dict stays the legacy report view)."""
        obs_metrics.observe(
            "repro_pipeline_stage_seconds",
            seconds,
            stage=stage,
            help="Wall-clock seconds per pipeline stage run, by stage",
        )

    # -- staged artifacts ---------------------------------------------------

    @property
    def ets(self) -> ETS:
        if self._ets is None:
            with self._memo_lock:
                if self._ets is None:
                    self._stage_boundary("ets")
                    with obs_trace.span("ets") as stage_span:
                        start = time.perf_counter()
                        if self.options.symbolic_extract:
                            # The symbolic path splits into the one-shot
                            # partial evaluation and the per-state BFS
                            # instantiation; the report carries both (the
                            # "ets.*" substages) alongside the stage total.
                            # The engine is retained: update() diffs it
                            # against the post-delta program's to localize
                            # a delta's blast radius.
                            with obs_trace.span("ets.symbolic"):
                                symbolic = SymbolicProgram(self.program)
                            mid = time.perf_counter()
                            with obs_trace.span("ets.instantiate"):
                                ets = build_ets(
                                    self.program,
                                    self.initial_state,
                                    symbolic=symbolic,
                                )
                            end = time.perf_counter()
                            self._substage_seconds["ets.symbolic"] = mid - start
                            self._substage_seconds["ets.instantiate"] = end - mid
                            self._symbolic = symbolic
                        else:
                            ets = build_ets(
                                self.program,
                                self.initial_state,
                                symbolic_extract=False,
                            )
                            end = time.perf_counter()
                        stage_span.set(states=len(ets.states()))
                    self._stage_seconds["ets"] = end - start
                    self._observe_stage("ets", end - start)
                    self._ets = ets
        return self._ets

    @property
    def nes(self) -> NES:
        if self._nes is None:
            with self._memo_lock:
                if self._nes is None:
                    if self._compiled is None:
                        # A warm artifact carries its NES, so consult
                        # the cache before paying for the ETS and NES
                        # stages.  (The ETS is not part of the artifact;
                        # pipeline.ets always builds.)
                        self._load_artifact()
                    if self._compiled is not None:
                        self._nes = self._compiled.nes
                    else:
                        ets = self.ets
                        self._stage_boundary("nes")
                        with obs_trace.span("nes") as stage_span:
                            start = time.perf_counter()
                            nes = nes_of_ets(ets)
                            seconds = time.perf_counter() - start
                            stage_span.set(events=len(nes.events))
                        self._stage_seconds["nes"] = seconds
                        self._observe_stage("nes", seconds)
                        self._nes = nes
        return self._nes

    @property
    def compiled(self) -> CompiledNES:
        if self._compiled is None:
            with self._memo_lock:
                if self._compiled is None:
                    self._load_artifact()
                if self._compiled is None:
                    nes = self.nes
                    self._stage_boundary("compile")
                    with obs_trace.span("compile") as stage_span:
                        start = time.perf_counter()
                        compiled = compile_nes(
                            nes,
                            self.topology,
                            options=self.options,
                            health=self._health,
                        )
                        seconds = time.perf_counter() - start
                        stage_span.set(configurations=len(compiled.states))
                    self._stage_seconds["compile"] = seconds
                    self._observe_stage("compile", seconds)
                    self._compiled = compiled
                    self._store_artifact()
        return self._compiled

    def _store_artifact(self) -> None:
        """Best-effort store of ``_compiled`` under this pipeline's key."""
        cache = self._artifact_cache()
        if cache is None or self._compiled is None:
            return
        try:
            with obs_trace.span("cache.store"):
                cache.store(self.artifact_key(), self._compiled)
            obs_metrics.inc(
                "repro_cache_stores_total",
                result="ok",
                help="Artifact cache stores by result",
            )
        except Exception as exc:
            # The cache is an accelerator, never a gate: a full
            # or unwritable cache_dir, or an artifact pickle
            # failure, must not discard a compile that already
            # succeeded.  But it must not vanish either — the
            # cause is warned once and counted in health.
            self._count("cache.store_error")
            obs_metrics.inc(
                "repro_cache_stores_total",
                result="error",
                help="Artifact cache stores by result",
            )
            warnings.warn(
                f"artifact cache store failed ({exc!r}); the "
                "compiled tables are unaffected but the cache "
                "stays cold for this key",
                ArtifactCacheWarning,
                stacklevel=3,
            )

    def _load_artifact(self) -> None:
        """Populate ``_compiled`` from the artifact cache on a hit.

        Consulted at most once per pipeline (the hit/miss verdict is
        recorded either way); a no-op when the cache is disabled.
        """
        if self._artifact_cache_state is not None:
            return
        cache = self._artifact_cache()
        if cache is None:
            return
        start = time.perf_counter()
        with obs_trace.span("cache.load") as load_span:
            loaded = cache.load(self.artifact_key())
            load_span.set(result="hit" if loaded is not None else "miss")
        obs_metrics.inc(
            "repro_cache_loads_total",
            result="hit" if loaded is not None else "miss",
            help="Artifact cache loads by result",
        )
        if loaded is not None:
            # The artifact was stored under possibly different
            # execution-only options (they are excluded from the key);
            # stamp in this run's, so compiled.options reflects how
            # *this* pipeline executes, not how the storing one did.
            loaded.options = loaded.options.replace(
                **{
                    name: getattr(self.options, name)
                    for name in _EXECUTION_ONLY_FIELDS
                }
            )
            self._artifact_cache_state = "hit"
            seconds = time.perf_counter() - start
            self._stage_seconds["compile"] = seconds
            self._observe_stage("compile", seconds)
            self._compiled = loaded
        else:
            self._artifact_cache_state = "miss"

    def guarded_tables(self, tag_field: Optional[str] = None):
        """The deployable merged tables of the compiled artifact
        (guarded by ``tag_field``, default ``options.tag_field``)."""
        return self.compiled.guarded_tables(tag_field)

    # -- incremental recompilation ------------------------------------------

    def update(self, delta: Delta) -> "Pipeline":
        """Recompile after ``delta``, reusing every unaffected artifact.

        Returns a **new** :class:`Pipeline` for the post-delta inputs
        with its staged artifacts populated; this pipeline is untouched
        and stays valid for the pre-delta program.  The contract is byte
        identity: the result's guarded tables equal a cold pipeline
        built on the post-delta inputs, because reuse happens only where
        the change provably cannot reach —

        - the retained :class:`SymbolicProgram` is reused outright when
          the program is unchanged; when it changed, the guard diff of
          the two partial evaluations (:func:`changed_edge_guards` /
          :func:`changed_cell_guards`) localizes the blast radius;
        - ETS states satisfying no changed guard keep their instantiated
          edges/configurations from the previous ETS;
        - NES conversion reruns only if the patched ETS differs from the
          previous one at all (the event/edge set or a configuration
          changed);
        - per-configuration tables recompile only where the
          configuration policy or the topology changed (tables are a
          pure function of policy + topology + field order), through the
          ``reuse_configurations`` executor seam.

        The result's :meth:`report` carries ``update.*`` stats (states
        reinstantiated/reused, configurations recompiled/reused, reuse
        ratio) and an ``update.delta`` substage; its
        :meth:`artifact_key` reflects the post-delta program, and with a
        cache configured the artifact is consulted under — and stored
        to — that key, so the cache stays correct.
        """
        with obs_trace.span("pipeline.update"):
            return self._update(delta)

    def _update(self, delta: Delta) -> "Pipeline":
        t_delta = time.perf_counter()
        new_program = delta.apply_program(self.program)
        new_topology = delta.apply_topology(self.topology)
        new_initial = delta.apply_initial_state(self.initial_state)
        updated = Pipeline(new_program, new_topology, new_initial, self.options)

        # Force the source once (the production shape: updates arrive at
        # an already-compiled pipeline), but reuse the ETS/symbolic
        # stages only if the source actually ran them — a warm-cache
        # source never did, and re-running them here would defeat its
        # cache hit.
        old_compiled = self.compiled
        old_nes = self.nes
        old_ets = self._ets
        old_symbolic = self._symbolic

        # A warm artifact under the post-delta key beats any patching.
        updated._load_artifact()
        if updated._compiled is not None:
            updated._update_stats = {
                "update.states_reinstantiated": 0,
                "update.states_reused": 0,
                "update.configurations_recompiled": 0,
                "update.configurations_reused": len(updated._compiled.states),
                "update.reuse_percent": 100,
            }
            updated._substage_seconds["update.delta"] = (
                time.perf_counter() - t_delta
            )
            return updated

        program_changed = new_program is not self.program
        topology_changed = delta.topology is not None and (
            _topology_fingerprint(new_topology)
            != _topology_fingerprint(self.topology)
        )

        # Blast radius from the symbolic guard diff.  ``None`` guards
        # mean unknown (no diffable engine): every state is affected.
        symbolic: Optional[SymbolicProgram] = None
        edge_guards: Optional[FrozenSet[StateGuard]] = None
        cell_guards: Optional[FrozenSet[StateGuard]] = None
        sym_seconds = 0.0
        if self.options.symbolic_extract:
            if not program_changed:
                symbolic = old_symbolic  # may be None (warm source)
                edge_guards = cell_guards = frozenset()
            else:
                t_sym = time.perf_counter()
                symbolic = SymbolicProgram(new_program)
                sym_seconds = time.perf_counter() - t_sym
                if old_symbolic is not None:
                    edge_guards = changed_edge_guards(
                        old_symbolic.extraction, symbolic.extraction
                    )
                    cell_guards = changed_cell_guards(
                        old_symbolic.cells, symbolic.cells
                    )
        elif not program_changed:
            # Reference path (per-state walks): nothing to diff, but an
            # unchanged program reuses every previous state verbatim.
            edge_guards = cell_guards = frozenset()
        updated._substage_seconds["update.delta"] = (
            time.perf_counter() - t_delta - sym_seconds
        )

        # Fresh per-state fallbacks for affected/new states.  Under
        # symbolic_extract the engine is built lazily: a fully-reused
        # instantiation (the common no-op / state-only delta) never pays
        # for a partial evaluation it does not use.
        if self.options.symbolic_extract:
            def _ensure_symbolic() -> SymbolicProgram:
                nonlocal symbolic, sym_seconds
                if symbolic is None:
                    t0 = time.perf_counter()
                    symbolic = SymbolicProgram(new_program)
                    sym_seconds += time.perf_counter() - t0
                return symbolic

            fresh_edges = lambda s: _ensure_symbolic().edges_at(s)  # noqa: E731
            fresh_config = lambda s: _ensure_symbolic().configuration_at(s)  # noqa: E731
        else:
            fresh_edges = lambda s: extract(new_program, s).edges  # noqa: E731
            fresh_config = lambda s: project(new_program, s)  # noqa: E731

        # Stage 1: the patched ETS.
        self._stage_boundary("ets")
        eager_sym_seconds = sym_seconds  # built before the ets window
        t_ets = time.perf_counter()
        source = _PatchedInstantiation(
            fresh_edges, fresh_config, old_ets, edge_guards, cell_guards
        )
        with obs_trace.span("update.reinstantiate") as ets_span:
            new_ets = build_ets(new_program, new_initial, symbolic=source)
            ets_span.set(
                fresh_states=len(source.fresh),
                reused_states=len(source.seen) - len(source.fresh),
            )
        ets_seconds = time.perf_counter() - t_ets
        lazy_sym_seconds = sym_seconds - eager_sym_seconds
        updated._ets = new_ets
        updated._symbolic = symbolic
        updated._stage_seconds["ets"] = ets_seconds + eager_sym_seconds
        self._observe_stage("ets", ets_seconds + eager_sym_seconds)
        if self.options.symbolic_extract:
            updated._substage_seconds["ets.symbolic"] = sym_seconds
            updated._substage_seconds["ets.instantiate"] = (
                ets_seconds - lazy_sym_seconds
            )

        # Stage 2: NES conversion, only if the ETS changed at all.  The
        # NES carries the configuration policies too, so a changed
        # vertex labeling (not just a changed event/edge set) reruns the
        # conversion — including its unique-configuration and
        # finite-completeness checks, which the delta may newly violate.
        if (
            old_ets is not None
            and new_ets.initial == old_ets.initial
            and new_ets.edges == old_ets.edges
            and new_ets.vertices == old_ets.vertices
        ):
            updated._nes = old_nes
        else:
            self._stage_boundary("nes")
            t_nes = time.perf_counter()
            with obs_trace.span("nes"):
                updated._nes = nes_of_ets(new_ets)
            nes_seconds = time.perf_counter() - t_nes
            updated._stage_seconds["nes"] = nes_seconds
            self._observe_stage("nes", nes_seconds)
        nes = updated._nes

        # Stage 3: compile, adopting every configuration whose policy
        # and topology are unchanged (byte-identical by purity).
        self._stage_boundary("compile")
        t_compile = time.perf_counter()
        reuse: Dict[StateVector, object] = {}
        if not topology_changed:
            for state in nes.configuration_states():
                previous = old_compiled.configurations.get(state)
                if previous is None:
                    continue
                old_policy = old_nes.configuration_policy(state)
                new_policy = nes.configuration_policy(state)
                if new_policy is old_policy or new_policy == old_policy:
                    reuse[state] = previous
        with obs_trace.span("compile", reused_configurations=len(reuse)):
            updated._compiled = compile_nes(
                nes,
                new_topology,
                options=self.options,
                health=updated._health,
                reuse_configurations=reuse,
            )
        compile_seconds = time.perf_counter() - t_compile
        updated._stage_seconds["compile"] = compile_seconds
        self._observe_stage("compile", compile_seconds)
        updated._store_artifact()

        total = len(updated._compiled.states)
        reused_configs = len(reuse)
        fresh_states = len(source.fresh)
        updated._update_stats = {
            "update.states_reinstantiated": fresh_states,
            "update.states_reused": len(source.seen) - fresh_states,
            "update.configurations_recompiled": total - reused_configs,
            "update.configurations_reused": reused_configs,
            "update.reuse_percent": (
                int(round(100 * reused_configs / total)) if total else 100
            ),
        }
        return updated

    # -- artifact cache -----------------------------------------------------

    def artifact_key(self) -> str:
        """The content address of this pipeline's compiled artifact.

        Memoized: the inputs are immutable, and digesting the full
        program repr is not free.
        """
        if self._artifact_key is None:
            self._artifact_key = artifact_digest(
                self.program, self.topology, self.initial_state, self.options
            )
        return self._artifact_key

    def _artifact_cache(self) -> Optional[ArtifactCache]:
        if not self._cache_resolved:
            self._cache_resolved = True
            if self.options.cache_dir is not None:
                try:
                    self._cache = ArtifactCache(
                        self.options.cache_dir,
                        hmac_key=self.options.resolved_cache_hmac_key(),
                        strict=self.options.strict_cache,
                        health=self._health,
                    )
                except Exception as exc:
                    # An uncreatable cache_dir (read-only filesystem,
                    # bad parent) disables the cache; it never aborts
                    # the compile — but it is counted and warned, not
                    # silently dropped.
                    self._cache = None
                    self._count("cache.disabled")
                    warnings.warn(
                        f"artifact cache disabled: cannot use cache_dir "
                        f"{self.options.cache_dir} ({exc!r})",
                        ArtifactCacheWarning,
                        stacklevel=3,
                    )
        return self._cache

    # -- reporting ----------------------------------------------------------

    def report(self) -> PipelineReport:
        """Timings and stats for the stages that have run so far."""
        stats: Dict[str, int] = {}
        if self._ets is not None:
            stats["ets_states"] = len(self._ets.states())
            stats["ets_edges"] = len(self._ets.edges)
        if self._nes is not None:
            stats["nes_events"] = len(self._nes.events)
            stats["nes_event_sets"] = len(self._nes.event_sets())
        if self._compiled is not None:
            compiled = self._compiled
            stats["configurations"] = len(compiled.states)
            # config_rule_count, not forwarding_rule_count: a report
            # stays a cheap observer instead of forcing the merge.
            forwarding = compiled.config_rule_count()
            stats["forwarding_rules"] = forwarding
            stats["total_rules"] = forwarding + compiled.stamp_rule_count()
        if self._update_stats:
            stats.update(self._update_stats)
        order = {"ets": 0, "nes": 1, "compile": 2}
        timings = tuple(
            sorted(self._stage_seconds.items(), key=lambda kv: order[kv[0]])
        )
        sub_order = {"ets.symbolic": 0, "ets.instantiate": 1, "update.delta": 2}
        substages = tuple(
            sorted(
                self._substage_seconds.items(),
                key=lambda kv: sub_order.get(kv[0], len(sub_order)),
            )
        )
        return PipelineReport(
            stage_seconds=timings,
            stats=tuple(stats.items()),
            backend=self.options.backend,
            artifact_cache=self._artifact_cache_state,
            substages=substages,
            health=dict(self._health),
        )

    def __repr__(self) -> str:
        ran = [name for name, _ in self.report().stage_seconds]
        return (
            f"Pipeline(backend={self.options.backend!r}, "
            f"stages_run={ran or '[]'})"
        )


def compile_app(
    program_or_app,
    topology: Optional[Topology] = None,
    initial_state: Optional[Sequence[int]] = None,
    options: Optional[CompileOptions] = None,
    **option_overrides,
) -> CompiledNES:
    """One call from a program (or an :class:`~repro.apps.base.App`) to a
    :class:`CompiledNES`.

    Either pass ``(program, topology, initial_state)`` explicitly, or a
    single app-like object carrying those attributes.  Keyword overrides
    are :class:`CompileOptions` fields::

        compiled = repro.compile_app(app, backend="thread",
                                     cache_dir="~/.cache/repro")
    """
    if hasattr(program_or_app, "program"):
        app = program_or_app
        if topology is not None or initial_state is not None:
            raise TypeError(
                "compile_app(app, ...) uses the app's own topology and "
                "initial_state; pass (program, topology, initial_state) "
                "explicitly to override them"
            )
        if (
            options is None
            and not option_overrides
            and hasattr(app, "pipeline")
        ):
            # Reuse the app's own pipeline: the compile work (and the
            # stage report) are shared with later app.ets/nes/compiled.
            return app.pipeline.compiled
        program = app.program
        topology = app.topology
        initial_state = app.initial_state
        if options is None:
            options = getattr(app, "options", None)
    else:
        program = program_or_app
        if topology is None or initial_state is None:
            raise TypeError(
                "compile_app needs (program, topology, initial_state) "
                "or a single app-like object"
            )
    if options is None:
        options = CompileOptions()
    if option_overrides:
        options = options.replace(**option_overrides)
    return Pipeline(program, topology, initial_state, options).compiled
