"""Executable operational semantics (Figure 7).

The six transition rules -- IN, OUT, SWITCH, LINK, CTRLRECV, CTRLSEND --
implemented over :class:`repro.runtime.model.NetworkState`, driven by a
seeded scheduler.  Executions record the induced network trace, so
Theorem 1 (every execution's trace is correct w.r.t. the NES) can be
checked empirically by the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..consistency.traces import NetworkTrace
from ..events.event import Event, EventSet
from ..netkat.packet import LocatedPacket, Location, Packet, PT, SW
from ..topology import Topology
from .compiler import CompiledNES
from .model import NetworkState, RuntimePacket, SwitchState, TraceRecorder

__all__ = ["RuntimeInvariantError", "Transition", "Runtime"]


class RuntimeInvariantError(Exception):
    """An internal invariant of the implementation was violated (e.g. a
    switch register no longer holds a valid event-set of the NES)."""


@dataclass(frozen=True)
class Transition:
    """One enabled transition of the operational semantics."""

    rule: str  # "SWITCH" | "LINK" | "OUT" | "CTRLRECV" | "CTRLSEND"
    args: Tuple

    def __repr__(self) -> str:
        return f"{self.rule}{self.args!r}"


class Runtime:
    """An executing network: compiled NES + global state + scheduler."""

    def __init__(
        self,
        compiled: CompiledNES,
        seed: int = 0,
        controller_assist: bool = False,
    ):
        self.compiled = compiled
        self.topology = compiled.topology
        self.state = NetworkState(compiled.topology.switches)
        self.recorder = TraceRecorder()
        self.random = random.Random(seed)
        self.controller_assist = controller_assist
        self.steps_taken = 0

    # -- IN: host injects a packet ------------------------------------------------

    def inject(self, host_name: str, fields: Mapping[str, int]) -> RuntimePacket:
        """The IN rule: admit a packet from a host at its edge port.

        The packet is stamped with the tag of the local switch's current
        event-set (``pkt[C <- g(E)]``) and an empty digest.
        """
        host = self.topology.host(host_name)
        location = host.attachment
        switch = self.state.switch(location.switch)
        tag = frozenset(switch.known_events)
        self._require_event_set(tag, f"IN at {location}")
        packet = Packet(dict(fields)).at(location)
        index = self.recorder.record(packet, location)
        runtime_packet = RuntimePacket(
            packet=packet, tag=tag, digest=frozenset(), trace_path=(index,)
        )
        switch.enqueue_in(location.port, runtime_packet)
        return runtime_packet

    # -- enabled-transition enumeration ----------------------------------------

    def enabled_transitions(self) -> List[Transition]:
        out: List[Transition] = []
        for switch_id, switch in self.state.switches.items():
            for port in switch.ports_with_input():
                out.append(Transition("SWITCH", (switch_id, port)))
            for port in switch.ports_with_output():
                location = Location(switch_id, port)
                if self.topology.link_targets(location):
                    out.append(Transition("LINK", (location,)))
                if self.topology.host_at(location) is not None:
                    out.append(Transition("OUT", (location,)))
        if self.state.controller_queue:
            for event in sorted(self.state.controller_queue, key=repr):
                out.append(Transition("CTRLRECV", (event,)))
        if self.controller_assist and self.state.controller:
            for switch_id, switch in self.state.switches.items():
                new = self.state.controller - switch.known_events
                if new:
                    out.append(Transition("CTRLSEND", (switch_id,)))
        return out

    def apply(self, transition: Transition) -> None:
        handler = {
            "SWITCH": self._step_switch,
            "LINK": self._step_link,
            "OUT": self._step_out,
            "CTRLRECV": self._step_ctrl_recv,
            "CTRLSEND": self._step_ctrl_send,
        }[transition.rule]
        handler(*transition.args)
        self.steps_taken += 1

    # -- SWITCH ------------------------------------------------------------------

    def _step_switch(self, switch_id: int, port: int) -> None:
        """Process one packet: learn digest, detect events, forward by pkt.C."""
        switch = self.state.switch(switch_id)
        packet = switch.in_queues[port].popleft()
        location = Location(switch_id, port)
        known = frozenset(switch.known_events)
        combined = known | packet.digest

        # Detect newly-enabled events matched by this arrival.  Enabling is
        # judged against the pre-arrival view (E ∪ pkt.digest, as in the
        # figure); consistency additionally accounts for events chosen in
        # this very step so the register never becomes inconsistent.
        structure = self.compiled.nes.structure
        detected: List[Event] = []
        for event in sorted(self.compiled.nes.events, key=repr):
            if event in combined:
                continue
            if not event.matches_packet(packet.packet, location):
                continue
            if not structure.enables(combined, event):
                continue
            if not structure.con(combined | frozenset(detected) | {event}):
                continue
            detected.append(event)

        new_events = frozenset(detected)
        new_known = combined | new_events
        self._require_event_set(new_known, f"SWITCH at {location}")
        switch.known_events = set(new_known)
        self.state.controller_queue |= set(new_events)

        # Forward using the packet's own configuration (per-packet
        # consistency: pkt.C was fixed at ingress).
        config = self.compiled.config_for_event_set(packet.tag)
        arrival = packet.packet.at(location)
        outputs = config.table(switch_id).apply(arrival)
        out_digest = packet.digest | new_known

        if not outputs:
            self.recorder.finish(packet.trace_path)
            self.state.dropped.append((location, packet))
            return
        for out_packet in sorted(outputs, key=repr):
            egress_port = out_packet[PT]
            egress = Location(switch_id, egress_port)
            index = self.recorder.record(out_packet, egress)
            child = RuntimePacket(
                packet=out_packet.at(egress),
                tag=packet.tag,
                digest=out_digest,
                trace_path=packet.trace_path + (index,),
            )
            switch.enqueue_out(egress_port, child)

    # -- LINK ----------------------------------------------------------------------

    def _step_link(self, src: Location) -> None:
        switch = self.state.switch(src.switch)
        packet = switch.out_queues[src.port].popleft()
        targets = sorted(
            self.topology.link_targets(src), key=lambda l: (l.switch, l.port)
        )
        if not targets:
            raise RuntimeInvariantError(f"LINK fired at {src} with no link")
        if len(targets) > 1:
            raise RuntimeInvariantError(
                f"port {src} has multiple outgoing links; the model assumes "
                "one link per port"
            )
        dst = targets[0]
        moved = packet.packet.at(dst)
        index = self.recorder.record(moved, dst)
        self.state.switch(dst.switch).enqueue_in(
            dst.port,
            RuntimePacket(moved, packet.tag, packet.digest, packet.trace_path + (index,)),
        )

    # -- OUT -----------------------------------------------------------------------

    def _step_out(self, location: Location) -> None:
        switch = self.state.switch(location.switch)
        packet = switch.out_queues[location.port].popleft()
        self.recorder.finish(packet.trace_path)
        self.state.delivered.append((location, packet))

    # -- controller ---------------------------------------------------------------

    def _step_ctrl_recv(self, event: Event) -> None:
        self.state.controller_queue.discard(event)
        self.state.controller.add(event)

    def _step_ctrl_send(self, switch_id: int) -> None:
        """Broadcast the controller's view to one switch (§4.1 optimization).

        The controller's events are merged in enabling order so the
        switch register stays a valid event-set.
        """
        switch = self.state.switch(switch_id)
        structure = self.compiled.nes.structure
        known = set(switch.known_events)
        remaining = set(self.state.controller) - known
        progress = True
        while progress and remaining:
            progress = False
            for event in sorted(remaining, key=repr):
                if structure.enables(frozenset(known), event) and structure.con(
                    frozenset(known) | {event}
                ):
                    known.add(event)
                    remaining.discard(event)
                    progress = True
        self._require_event_set(frozenset(known), f"CTRLSEND to switch {switch_id}")
        switch.known_events = known

    # -- schedulers ----------------------------------------------------------------

    def run_until_quiescent(
        self, max_steps: int = 100_000, policy: str = "random"
    ) -> int:
        """Fire transitions until no packets remain in flight.

        ``policy`` is "random" (seeded uniform choice -- explores
        interleavings) or "fifo" (first enabled transition -- fast and
        deterministic).  Controller transitions are included when
        enabled.  Returns the number of steps taken.
        """
        taken = 0
        while taken < max_steps:
            if self.state.quiescent():
                break  # only controller work remains; drain_controller() if needed
            transitions = self.enabled_transitions()
            if not transitions:
                break
            if policy == "random":
                choice = self.random.choice(transitions)
            else:
                choice = transitions[0]
            self.apply(choice)
            taken += 1
        else:
            raise RuntimeInvariantError(
                f"execution did not quiesce within {max_steps} steps"
            )
        return taken

    def drain_controller(self, max_steps: int = 10_000) -> None:
        """Run all pending controller transitions (CTRLRECV + CTRLSEND)."""
        for _ in range(max_steps):
            transitions = [
                t
                for t in self.enabled_transitions()
                if t.rule in ("CTRLRECV", "CTRLSEND")
            ]
            if not transitions:
                return
            self.apply(transitions[0])
        raise RuntimeInvariantError("controller draining did not terminate")

    # -- trace extraction ------------------------------------------------------------

    def network_trace(self) -> NetworkTrace:
        """The network trace of the execution so far (pending packets
        contribute their partial paths)."""
        pending = []
        for switch in self.state.switches.values():
            for queue in list(switch.in_queues.values()) + list(
                switch.out_queues.values()
            ):
                for packet in queue:
                    pending.append(packet.trace_path)
        return self.recorder.network_trace(iter(pending))

    # -- invariants -------------------------------------------------------------------

    def _require_event_set(self, events: EventSet, context: str) -> None:
        try:
            self.compiled.nes.state_of(events)
        except KeyError as exc:
            raise RuntimeInvariantError(
                f"{context}: register {set(events)} is not an event-set "
                "of the NES"
            ) from exc
