"""Runtime state: the ``(Q, R, S)`` triple of Figure 7.

Each switch is ``(n, qm_in, E, qm_out)``: an ID, input/output queue maps
(port -> packet queue), and the local event-set register ``E`` -- the
switch's view of which events have occurred.  Packets in flight carry
two pieces of metadata invisible to user policies:

- ``tag``: the event-set stamped at ingress; its ``g``-image is the
  configuration (``pkt.C``) that must process the packet for its whole
  lifetime (per-packet consistency), and
- ``digest``: the set of events the packet has heard about, used to
  gossip event occurrences between switches (the happens-before wire
  protocol).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..events.event import Event, EventSet
from ..netkat.packet import LocatedPacket, Location, Packet

__all__ = ["RuntimePacket", "SwitchState", "NetworkState", "TraceRecorder"]


@dataclass(frozen=True)
class RuntimePacket:
    """A packet in flight: payload + tag + digest + trace bookkeeping.

    ``trace_path`` records the indices of this packet's positions in the
    network trace being built (see :class:`TraceRecorder`); it threads
    the tree structure of multicast copies through the execution.
    """

    packet: Packet
    tag: EventSet
    digest: EventSet = frozenset()
    trace_path: Tuple[int, ...] = ()

    def with_digest(self, digest: EventSet) -> "RuntimePacket":
        return RuntimePacket(self.packet, self.tag, digest, self.trace_path)

    def with_packet(self, packet: Packet) -> "RuntimePacket":
        return RuntimePacket(packet, self.tag, self.digest, self.trace_path)

    def extend_path(self, index: int) -> "RuntimePacket":
        return RuntimePacket(
            self.packet, self.tag, self.digest, self.trace_path + (index,)
        )


class SwitchState:
    """One switch: ``(n, qm_in, E, qm_out)``."""

    def __init__(self, switch_id: int):
        self.switch_id = switch_id
        self.in_queues: Dict[int, Deque[RuntimePacket]] = {}
        self.out_queues: Dict[int, Deque[RuntimePacket]] = {}
        self.known_events: Set[Event] = set()

    def enqueue_in(self, port: int, packet: RuntimePacket) -> None:
        self.in_queues.setdefault(port, deque()).append(packet)

    def enqueue_out(self, port: int, packet: RuntimePacket) -> None:
        self.out_queues.setdefault(port, deque()).append(packet)

    def ports_with_input(self) -> List[int]:
        return sorted(p for p, q in self.in_queues.items() if q)

    def ports_with_output(self) -> List[int]:
        return sorted(p for p, q in self.out_queues.items() if q)

    def pending_packets(self) -> int:
        return sum(len(q) for q in self.in_queues.values()) + sum(
            len(q) for q in self.out_queues.values()
        )

    def __repr__(self) -> str:
        return (
            f"Switch({self.switch_id}, E={sorted(map(repr, self.known_events))}, "
            f"in={{{', '.join(f'{p}:{len(q)}' for p, q in self.in_queues.items() if q)}}}, "
            f"out={{{', '.join(f'{p}:{len(q)}' for p, q in self.out_queues.items() if q)}}})"
        )


class NetworkState:
    """The global state ``(Q, R, S)``."""

    def __init__(self, switch_ids: Iterator[int] | List[int] | FrozenSet[int]):
        self.controller_queue: Set[Event] = set()  # Q
        self.controller: Set[Event] = set()  # R
        self.switches: Dict[int, SwitchState] = {
            n: SwitchState(n) for n in sorted(switch_ids)
        }
        self.delivered: List[Tuple[Location, RuntimePacket]] = []
        self.dropped: List[Tuple[Location, RuntimePacket]] = []

    def switch(self, switch_id: int) -> SwitchState:
        return self.switches[switch_id]

    def quiescent(self) -> bool:
        """No packets in any queue (controller events may remain)."""
        return all(s.pending_packets() == 0 for s in self.switches.values())

    def total_pending(self) -> int:
        return sum(s.pending_packets() for s in self.switches.values())

    def __repr__(self) -> str:
        return (
            f"NetworkState(Q={sorted(map(repr, self.controller_queue))}, "
            f"R={sorted(map(repr, self.controller))}, "
            f"switches={list(self.switches.values())!r})"
        )


class TraceRecorder:
    """Builds the network trace corresponding to an execution.

    Every position a packet occupies (ingress, per-switch egress, link
    arrival) is appended as a located packet; each in-flight packet
    carries the index path of its positions so far, and finished paths
    (delivered, dropped, or still pending at harvest time) become the
    index sequences ``T``.
    """

    def __init__(self) -> None:
        self.positions: List[LocatedPacket] = []
        self.finished_paths: List[Tuple[int, ...]] = []

    def record(self, packet: Packet, location: Location) -> int:
        index = len(self.positions)
        self.positions.append(LocatedPacket(packet.at(location), location))
        return index

    def finish(self, path: Tuple[int, ...]) -> None:
        if path:
            self.finished_paths.append(path)

    def network_trace(self, pending_paths: Iterator[Tuple[int, ...]] = iter(())):
        """Produce the NetworkTrace (importing lazily to avoid cycles)."""
        from ..consistency.traces import NetworkTrace

        paths = list(self.finished_paths)
        paths.extend(p for p in pending_paths if p)
        return NetworkTrace(tuple(self.positions), frozenset(map(tuple, paths)))
