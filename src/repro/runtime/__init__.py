"""The implementation of event-driven programs (section 4)."""

from .compiler import TAG_FIELD, CompiledNES, LocalityError, compile_nes
from .model import NetworkState, RuntimePacket, SwitchState, TraceRecorder
from .semantics import Runtime, RuntimeInvariantError, Transition

__all__ = [
    "TAG_FIELD",
    "CompiledNES",
    "LocalityError",
    "compile_nes",
    "NetworkState",
    "RuntimePacket",
    "SwitchState",
    "TraceRecorder",
    "Runtime",
    "RuntimeInvariantError",
    "Transition",
]
