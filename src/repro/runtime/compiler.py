"""The implementation pipeline of section 4: NES -> deployable artifacts.

Five steps (section 1, "Implementing Network Programs"):

1. encode the event-sets of the NES as flat integer tags;
2. compile each configuration to per-switch flow tables;
3. guard each configuration's rules with its tag;
4. stamp incoming packets with the tag of the current event-set;
5. learn events from packet digests and forward them onward.

Steps 1-3 are realized here.  Steps 4-5 are the switch-local behavior of
the operational semantics (:mod:`repro.runtime.semantics`), which the
paper likewise folds into the runtime (the IN and SWITCH rules); their
rule-space cost is accounted for by :meth:`CompiledNES.stamp_rule_count`
so total rule counts include them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..events.event import Event, EventSet
from ..events.locality import is_locally_determined, locality_violations
from ..events.nes import NES
from ..netkat.compiler import Configuration, compile_policy
from ..netkat.fdd import FDDBuilder
from ..netkat.flowtable import FlowTable, Match, Rule
from ..stateful.ast import StateVector
from ..topology import Topology

__all__ = ["TAG_FIELD", "CompiledNES", "LocalityError", "compile_nes"]

# The packet metadata field carrying the configuration tag in deployed
# (guarded) tables; a single unused header field, as section 4.1 argues.
TAG_FIELD = "tag"


class LocalityError(Exception):
    """The NES is not locally determined, so it cannot be implemented
    without synchronization or buffering (Lemma 1)."""


class CompiledNES:
    """An NES compiled to tags, per-state configurations, and guarded tables."""

    def __init__(
        self,
        nes: NES,
        topology: Topology,
        builder: Optional[FDDBuilder] = None,
        knowledge_cache: bool = True,
    ):
        self.nes = nes
        self.topology = topology
        self._builder = builder or FDDBuilder()
        self._guarded_tables: Optional[Dict[int, FlowTable]] = None

        # Step 1: flat integer encodings.
        self.states: Tuple[StateVector, ...] = nes.configuration_states()
        self.config_ids: Dict[StateVector, int] = {
            state: i for i, state in enumerate(self.states)
        }
        self.event_sets: Tuple[EventSet, ...] = tuple(
            sorted(nes.event_sets(), key=lambda s: (len(s), sorted(map(repr, s))))
        )
        self.event_set_ids: Dict[EventSet, int] = {
            s: i for i, s in enumerate(self.event_sets)
        }
        # Digest bits reuse the event structure's interning (also sorted
        # by repr), so digests and the locality engine agree bit-for-bit.
        self.event_bits: Dict[Event, int] = dict(nes.structure.event_index)

        # Step 2: compile every configuration.
        self.configurations: Dict[StateVector, Configuration] = {
            state: compile_policy(
                nes.configuration_policy(state),
                topology,
                builder=self._builder,
                name=f"C{list(state)}",
                knowledge_cache=knowledge_cache,
            )
            for state in self.states
        }

    # -- tag and digest encodings ----------------------------------------------

    def tag_of_event_set(self, event_set: Iterable[Event]) -> int:
        """The configuration tag stamped on packets entering at this event-set."""
        return self.config_ids[self.nes.state_of(frozenset(event_set))]

    def encode_digest(self, events: Iterable[Event]) -> int:
        """Event-set as a bitmask -- the packet digest wire format."""
        return self.nes.structure.encode(events)

    def decode_digest(self, mask: int) -> EventSet:
        return self.nes.structure.decode(mask)

    # -- configuration access ---------------------------------------------------

    def config_for_state(self, state: StateVector) -> Configuration:
        return self.configurations[state]

    def config_for_event_set(self, event_set: Iterable[Event]) -> Configuration:
        return self.configurations[self.nes.state_of(frozenset(event_set))]

    # -- step 3: guarded merged tables ------------------------------------------

    def guarded_tables(self) -> Dict[int, FlowTable]:
        """One deployable table per switch: every configuration's rules,
        each guarded by its configuration tag.

        Priorities are partitioned per configuration; tags make the
        partitions disjoint, so relative priorities within each
        configuration are preserved.

        The merged tables are memoized (``forwarding_rule_count``, repr,
        and the runtime all re-derive them); a fresh dict over the
        immutable :class:`FlowTable` values is returned each call, so
        callers may mutate the mapping without corrupting the cache.  Use
        :meth:`invalidate_guarded_tables` after replacing a
        configuration in ``self.configurations``.
        """
        if self._guarded_tables is None:
            tables: Dict[int, List[Rule]] = {n: [] for n in self.topology.switches}
            for state in self.states:
                config_id = self.config_ids[state]
                config = self.configurations[state]
                for switch, table in config.tables.items():
                    for rule in table:
                        guarded_match = rule.match.extended(TAG_FIELD, config_id)
                        tables.setdefault(switch, []).append(
                            Rule(rule.priority, guarded_match, rule.actions)
                        )
            self._guarded_tables = {
                n: FlowTable(rules) for n, rules in tables.items()
            }
        return dict(self._guarded_tables)

    def invalidate_guarded_tables(self) -> None:
        """Drop the memoized merged tables (rebuilt on next access)."""
        self._guarded_tables = None

    def forwarding_rule_count(self) -> int:
        """Rules in the guarded merged tables (steps 1-3)."""
        return sum(len(t) for t in self.guarded_tables().values())

    def stamp_rule_count(self) -> int:
        """Rules implementing ingress stamping (step 4).

        One rule per host-facing port per configuration tag: "if the
        local register maps to tag j, set tag <- j on packets entering
        this port".
        """
        return len(self.topology.edge_locations()) * len(self.states)

    def total_rule_count(self) -> int:
        """The §5.1 metric: forwarding + stamping rules."""
        return self.forwarding_rule_count() + self.stamp_rule_count()

    # -- per-configuration rule view (input to the §5.3 optimizer) --------------

    def rules_by_configuration(self, switch: int) -> Dict[int, FrozenSet[Rule]]:
        """Unguarded rule sets per configuration ID at one switch."""
        out: Dict[int, FrozenSet[Rule]] = {}
        for state in self.states:
            config_id = self.config_ids[state]
            out[config_id] = frozenset(self.configurations[state].table(switch).rules)
        return out

    def __repr__(self) -> str:
        return (
            f"CompiledNES({len(self.states)} configurations, "
            f"{len(self.nes.events)} events, "
            f"{self.total_rule_count()} rules)"
        )


def compile_nes(
    nes: NES,
    topology: Topology,
    builder: Optional[FDDBuilder] = None,
    enforce_locality: bool = True,
    knowledge_cache: bool = True,
) -> CompiledNES:
    """Compile an NES, first checking the locally-determined condition.

    Implementations of non-locally-determined NESs must synchronize or
    buffer (Lemma 1), which this runtime does not do -- so by default
    compilation refuses them.
    """
    if enforce_locality:
        violations = locality_violations(nes)
        if violations:
            sample = next(iter(violations))
            raise LocalityError(
                "NES is not locally determined: the minimally-inconsistent "
                f"set {set(sample)} spans multiple switches "
                f"({len(violations)} violation(s) total)"
            )
    return CompiledNES(nes, topology, builder=builder, knowledge_cache=knowledge_cache)
