"""The implementation pipeline of section 4: NES -> deployable artifacts.

Five steps (section 1, "Implementing Network Programs"):

1. encode the event-sets of the NES as flat integer tags;
2. compile each configuration to per-switch flow tables;
3. guard each configuration's rules with its tag;
4. stamp incoming packets with the tag of the current event-set;
5. learn events from packet digests and forward them onward.

Steps 1-3 are realized here.  Steps 4-5 are the switch-local behavior of
the operational semantics (:mod:`repro.runtime.semantics`), which the
paper likewise folds into the runtime (the IN and SWITCH rules); their
rule-space cost is accounted for by :meth:`CompiledNES.stamp_rule_count`
so total rule counts include them.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from .. import faults
from ..events.event import Event, EventSet
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..events.locality import is_locally_determined, locality_violations
from ..events.nes import NES
from ..netkat.compiler import Configuration, compile_policy
from ..netkat.fdd import FDDBuilder
from ..netkat.flowtable import FlowTable, Match, Rule
from ..stateful.ast import StateVector
from ..topology import Topology

__all__ = ["TAG_FIELD", "CompiledNES", "LocalityError", "compile_nes"]

# The packet metadata field carrying the configuration tag in deployed
# (guarded) tables; a single unused header field, as section 4.1 argues.
TAG_FIELD = "tag"

# Sentinel distinguishing "caller passed knowledge_cache explicitly"
# (deprecated, folded into CompileOptions) from the default.
_UNSET = object()


def _default_options():
    # Imported lazily: repro.pipeline imports this module at load time.
    from ..pipeline import CompileOptions

    return CompileOptions()


def _pipeline_errors():
    # Imported lazily for the same reason.
    from ..pipeline import PipelineError, StageError

    return PipelineError, StageError


# Deterministic exponential backoff between per-configuration retry
# attempts: no jitter (chaos runs must replay), capped so an exhausted
# retry budget costs milliseconds, not seconds.
_BACKOFF_BASE_SECONDS = 0.001
_BACKOFF_CAP_SECONDS = 0.05


def _backoff_delay(attempt: int) -> float:
    return min(_BACKOFF_BASE_SECONDS * (2 ** attempt), _BACKOFF_CAP_SECONDS)


def _compile_configurations(
    nes: NES,
    topology: Topology,
    states: Tuple[StateVector, ...],
    builder: FDDBuilder,
    options,
    shard: bool,
    health: Optional[Dict[str, int]] = None,
    reuse: Optional[Mapping[StateVector, Configuration]] = None,
) -> Dict[StateVector, Configuration]:
    """Compile every configuration, optionally sharded across threads.

    The per-state compiles are independent (the ROADMAP scale axis), so
    the thread backend fans them out over a pool with one private
    :class:`FDDBuilder` per worker thread -- builders are not
    thread-safe, and compiled tables are a pure function of the policy
    and field order, never of builder memo warmth, so private builders
    keep the output byte-identical to the serial path.  Results are
    gathered in configuration-state order (``executor.map`` preserves
    input order), so iteration order is deterministic too.

    ``reuse`` maps states to already-compiled configurations that are
    adopted as-is (the incremental-recompilation seam:
    :meth:`repro.pipeline.Pipeline.update` passes the unaffected
    configurations of the pre-delta artifact).  Because tables are a
    pure function of (policy, topology, field order), a reused
    configuration is byte-identical to what a fresh compile would
    produce — the caller is responsible for only offering entries whose
    policy and topology are unchanged.  The result dict is built in
    ``states`` order regardless, so reuse never perturbs iteration (or
    pickle) order.

    Failure discipline (the fault-tolerance layer):

    - every per-configuration attempt passes the ``executor.worker``
      fault site and is retried up to ``options.compile_retries`` times
      with deterministic backoff (counted in ``health``);
    - ``options.deadline_seconds`` bounds the stage wall clock,
      checked between attempts (one configuration is never preempted);
    - a thread pool whose worker fails irrecoverably degrades to the
      serial path (counted as ``executor.fallback_serial``) — the
      output is byte-identical by construction, so degradation is
      invisible outside ``health``;
    - a failure that survives retry *and* degradation surfaces as a
      typed :class:`~repro.pipeline.StageError` with stage provenance,
      never as a bare worker exception.
    """
    PipelineError, StageError = _pipeline_errors()
    health = health if health is not None else {}

    def count(counter: str) -> None:
        obs_metrics.count_health(health, counter)

    reuse = reuse if reuse is not None else {}
    pending: Tuple[StateVector, ...] = tuple(
        state for state in states if state not in reuse
    )

    def assemble(fresh: Mapping[StateVector, Configuration]):
        # States order, whatever mix of reused/fresh produced the parts.
        return {
            state: reuse[state] if state in reuse else fresh[state]
            for state in states
        }

    retries = options.compile_retries
    deadline = (
        time.monotonic() + options.deadline_seconds
        if options.deadline_seconds is not None
        else None
    )

    def check_deadline() -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise StageError(
                "compile",
                f"deadline_seconds={options.deadline_seconds} exceeded "
                f"with {len(pending)} configuration(s) in flight",
            )

    def compile_with(b: FDDBuilder, state: StateVector) -> Configuration:
        attempt = 0
        while True:
            check_deadline()
            try:
                with obs_trace.span(
                    "compile.configuration",
                    configuration=f"C{list(state)}",
                    attempt=attempt,
                ):
                    faults.check("executor.worker")
                    return compile_policy(
                        nes.configuration_policy(state),
                        topology,
                        builder=b,
                        name=f"C{list(state)}",
                        knowledge_cache=options.knowledge_cache,
                        max_frontier=options.max_frontier,
                    )
            except PipelineError:
                raise  # typed failures (e.g. deadline) are not transient
            except Exception:
                if attempt >= retries:
                    raise
                count("executor.retries")
                with obs_trace.span("compile.backoff", attempt=attempt):
                    time.sleep(_backoff_delay(attempt))
                attempt += 1

    if shard and options.backend == "thread" and len(pending) > 1:
        try:
            local = threading.local()
            # ThreadPoolExecutor workers run in the pool thread's empty
            # context, so the submitting stage's span does not propagate
            # by itself; capture it here and re-attach per work item.
            trace_parent = obs_trace.current()

            def worker(state: StateVector) -> Configuration:
                worker_builder = getattr(local, "builder", None)
                if worker_builder is None:
                    worker_builder = options.make_builder()
                    local.builder = worker_builder
                with obs_trace.attach(trace_parent):
                    return compile_with(worker_builder, state)

            with ThreadPoolExecutor(max_workers=options.max_workers) as pool:
                configs = list(pool.map(worker, pending))
            return assemble(dict(zip(pending, configs)))
        except PipelineError:
            raise  # a deadline miss would only recur serially
        except Exception as exc:
            # The pool (or a worker, beyond its retry budget) failed
            # irrecoverably: degrade to the serial path, which produces
            # byte-identical tables.  Counted and warned, never silent.
            count("executor.fallback_serial")
            warnings.warn(
                f"thread backend failed ({exc!r}); degrading to the "
                "serial executor for this compile",
                RuntimeWarning,
                stacklevel=3,
            )

    out: Dict[StateVector, Configuration] = {}
    for state in pending:
        try:
            out[state] = compile_with(builder, state)
        except PipelineError:
            raise
        except Exception as exc:
            raise StageError(
                "compile",
                f"configuration C{list(state)} failed after "
                f"{retries + 1} attempt(s): {exc!r}",
            ) from exc
    return assemble(out)


class LocalityError(Exception):
    """The NES is not locally determined, so it cannot be implemented
    without synchronization or buffering (Lemma 1)."""


class CompiledNES:
    """An NES compiled to tags, per-state configurations, and guarded tables."""

    def __init__(
        self,
        nes: NES,
        topology: Topology,
        builder: Optional[FDDBuilder] = None,
        knowledge_cache=_UNSET,
        options=None,
        health: Optional[Dict[str, int]] = None,
        reuse_configurations: Optional[
            Mapping[StateVector, Configuration]
        ] = None,
    ):
        """Compile ``nes`` over ``topology`` under ``options``.

        ``options`` is a :class:`repro.pipeline.CompileOptions` (default
        constructed when omitted).  With ``options.backend == "thread"``
        the independent per-configuration compiles are sharded across a
        thread pool; passing an explicit ``builder`` forces the serial
        path, because a caller-owned builder cannot be shared across
        worker threads.  ETS-stage knobs carried by the options (such as
        ``symbolic_extract``) do not affect this stage -- the NES is
        already built -- but they ride along so ``compiled.options``
        records the full configuration the artifact was produced under
        (and the artifact cache keys on them).

        ``knowledge_cache=`` is deprecated; use
        ``CompileOptions(knowledge_cache=...)``.

        ``health`` is an optional counter dict (the pipeline passes its
        own) that the executor's retry/degradation bookkeeping
        increments; it is observed during construction only and never
        stored on the instance (artifacts stay health-free).

        ``reuse_configurations`` maps states to already-compiled
        configurations adopted without recompiling (see
        :func:`_compile_configurations`); entries for states this NES
        does not have are ignored.  Callers must only offer entries
        whose policy and topology are unchanged — tables are a pure
        function of those, so adopted entries are byte-identical to a
        fresh compile.
        """
        if knowledge_cache is not _UNSET:
            warnings.warn(
                "CompiledNES(knowledge_cache=...) is deprecated; pass "
                "repro.pipeline.CompileOptions(knowledge_cache=...) as "
                "options= instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if options is None:
            options = _default_options()
        if knowledge_cache is not _UNSET:
            options = options.replace(knowledge_cache=knowledge_cache)
        self.options = options
        self.nes = nes
        self.topology = topology
        self._builder = builder or options.make_builder()
        # Merged-table memo, keyed per tag field (one slot per options
        # variant a caller has asked for, never a single shared slot).
        self._guarded_tables: Dict[str, Dict[int, FlowTable]] = {}

        # Step 1: flat integer encodings.
        self.states: Tuple[StateVector, ...] = nes.configuration_states()
        self.config_ids: Dict[StateVector, int] = {
            state: i for i, state in enumerate(self.states)
        }
        self.event_sets: Tuple[EventSet, ...] = tuple(
            sorted(nes.event_sets(), key=lambda s: (len(s), sorted(map(repr, s))))
        )
        self.event_set_ids: Dict[EventSet, int] = {
            s: i for i, s in enumerate(self.event_sets)
        }
        # Digest bits reuse the event structure's interning (also sorted
        # by repr), so digests and the locality engine agree bit-for-bit.
        self.event_bits: Dict[Event, int] = dict(nes.structure.event_index)

        # Step 2: compile every configuration (sharded when the options
        # select the thread backend and no caller-owned builder pins us
        # to the serial path).
        self.configurations: Dict[StateVector, Configuration] = (
            _compile_configurations(
                nes, topology, self.states, self._builder, options,
                shard=builder is None, health=health,
                reuse=reuse_configurations,
            )
        )

    # -- tag and digest encodings ----------------------------------------------

    def tag_of_event_set(self, event_set: Iterable[Event]) -> int:
        """The configuration tag stamped on packets entering at this event-set."""
        return self.config_ids[self.nes.state_of(frozenset(event_set))]

    def encode_digest(self, events: Iterable[Event]) -> int:
        """Event-set as a bitmask -- the packet digest wire format."""
        return self.nes.structure.encode(events)

    def decode_digest(self, mask: int) -> EventSet:
        return self.nes.structure.decode(mask)

    # -- configuration access ---------------------------------------------------

    def config_for_state(self, state: StateVector) -> Configuration:
        return self.configurations[state]

    def config_for_event_set(self, event_set: Iterable[Event]) -> Configuration:
        return self.configurations[self.nes.state_of(frozenset(event_set))]

    # -- step 3: guarded merged tables ------------------------------------------

    def guarded_tables(self, tag_field: Optional[str] = None) -> Dict[int, FlowTable]:
        """One deployable table per switch: every configuration's rules,
        each guarded by its configuration tag in ``tag_field`` (default:
        ``options.tag_field``).

        Priorities are partitioned per configuration; tags make the
        partitions disjoint, so relative priorities within each
        configuration are preserved.

        The merged tables are memoized (``forwarding_rule_count``, repr,
        and the runtime all re-derive them) *per tag field*: a single
        memo slot would hand the tables of whichever variant was
        computed first to every later caller.  A fresh dict over the
        immutable :class:`FlowTable` values is returned each call, so
        callers may mutate the mapping without corrupting the cache.  Use
        :meth:`invalidate_guarded_tables` after replacing a
        configuration in ``self.configurations``.
        """
        field_name = tag_field if tag_field is not None else self.options.tag_field
        memo = self._guarded_tables.get(field_name)
        if memo is None:
            tables: Dict[int, List[Rule]] = {n: [] for n in self.topology.switches}
            for state in self.states:
                config_id = self.config_ids[state]
                config = self.configurations[state]
                for switch, table in config.tables.items():
                    for rule in table:
                        guarded_match = rule.match.guarded(field_name, config_id)
                        tables.setdefault(switch, []).append(
                            Rule(rule.priority, guarded_match, rule.actions)
                        )
            memo = {n: FlowTable(rules) for n, rules in tables.items()}
            self._guarded_tables[field_name] = memo
        return dict(memo)

    def invalidate_guarded_tables(self) -> None:
        """Drop every memoized merged-table variant (rebuilt on access)."""
        self._guarded_tables.clear()

    # -- persistence ------------------------------------------------------------

    def __getstate__(self):
        """Pickle without the merged-table memo or the builder.

        The pipeline's artifact cache persists compiled NESs; shipping
        the derived tables would bloat artifacts and could resurrect
        tables a caller had explicitly invalidated.  The builder is
        dropped too: its ``of_policy``/``of_predicate`` memos are keyed
        by ``id()`` of AST nodes from the storing process, which after
        unpickling are stale addresses a fresh object could collide
        with — a loaded artifact gets a fresh builder instead.
        """
        state = dict(self.__dict__)
        state["_guarded_tables"] = {}
        state["_builder"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._builder is None:
            self._builder = self.options.make_builder()

    def forwarding_rule_count(self) -> int:
        """Rules in the guarded merged tables (steps 1-3)."""
        return sum(len(t) for t in self.guarded_tables().values())

    def config_rule_count(self) -> int:
        """Forwarding rules summed per configuration, without forcing
        the guarded merge.

        The merge keeps exactly one rule per (configuration, rule), so
        this equals :meth:`forwarding_rule_count` — but stays cheap and
        total (the merge raises on a colliding tag field); repr and
        :meth:`Pipeline.report` use it to remain plain observers.
        """
        return sum(
            len(table)
            for config in self.configurations.values()
            for table in config.tables.values()
        )

    def stamp_rule_count(self) -> int:
        """Rules implementing ingress stamping (step 4).

        One rule per host-facing port per configuration tag: "if the
        local register maps to tag j, set tag <- j on packets entering
        this port".
        """
        return len(self.topology.edge_locations()) * len(self.states)

    def total_rule_count(self) -> int:
        """The §5.1 metric: forwarding + stamping rules."""
        return self.forwarding_rule_count() + self.stamp_rule_count()

    # -- per-configuration rule view (input to the §5.3 optimizer) --------------

    def rules_by_configuration(self, switch: int) -> Dict[int, FrozenSet[Rule]]:
        """Unguarded rule sets per configuration ID at one switch."""
        out: Dict[int, FrozenSet[Rule]] = {}
        for state in self.states:
            config_id = self.config_ids[state]
            out[config_id] = frozenset(self.configurations[state].table(switch).rules)
        return out

    def __repr__(self) -> str:
        return (
            f"CompiledNES({len(self.states)} configurations, "
            f"{len(self.nes.events)} events, "
            f"{self.config_rule_count() + self.stamp_rule_count()} rules)"
        )


def compile_nes(
    nes: NES,
    topology: Topology,
    builder: Optional[FDDBuilder] = None,
    enforce_locality=_UNSET,
    knowledge_cache=_UNSET,
    options=None,
    health: Optional[Dict[str, int]] = None,
    reuse_configurations: Optional[Mapping[StateVector, Configuration]] = None,
) -> CompiledNES:
    """Compile an NES, first checking the locally-determined condition.

    Implementations of non-locally-determined NESs must synchronize or
    buffer (Lemma 1), which this runtime does not do -- so by default
    compilation refuses them.  ``options`` is a
    :class:`repro.pipeline.CompileOptions`; ``enforce_locality=`` as a
    direct keyword still works, and ``knowledge_cache=`` is deprecated
    in favor of the options object.  ``reuse_configurations`` is the
    incremental-recompilation seam of :class:`CompiledNES`.
    """
    if options is None:
        options = _default_options()
    if knowledge_cache is not _UNSET:
        warnings.warn(
            "compile_nes(knowledge_cache=...) is deprecated; pass "
            "repro.pipeline.CompileOptions(knowledge_cache=...) as "
            "options= instead",
            DeprecationWarning,
            stacklevel=2,
        )
        options = options.replace(knowledge_cache=knowledge_cache)
    if enforce_locality is not _UNSET:
        options = options.replace(enforce_locality=enforce_locality)
    if options.enforce_locality:
        violations = locality_violations(nes)
        if violations:
            sample = next(iter(violations))
            raise LocalityError(
                "NES is not locally determined: the minimally-inconsistent "
                f"set {set(sample)} spans multiple switches "
                f"({len(violations)} violation(s) total)"
            )
    return CompiledNES(
        nes, topology, builder=builder, options=options, health=health,
        reuse_configurations=reuse_configurations,
    )
