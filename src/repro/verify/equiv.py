"""Semantic equivalence checks for policies and configurations.

FDDs are canonical for link-free NetKAT over a fixed field order --
hash-consing makes semantic equality pointer equality -- which gives a
decision procedure for the link-free fragment.  Configurations (which
include links) are compared by their per-switch tables' behavior on the
finite packet space the tables mention, plus the shared topology.

This is the "formal reasoning for Stateful NetKAT" seed the paper lists
as future work: projected configurations of stateful programs can be
compared state by state.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..netkat.ast import Policy, Predicate
from ..netkat.compiler import Configuration
from ..netkat.fdd import FDDBuilder
from ..netkat.flowtable import FlowTable
from ..netkat.packet import Packet
from ..stateful.ast import StateVector
from ..stateful.projection import project

__all__ = [
    "policies_equivalent",
    "predicates_equivalent",
    "tables_equivalent",
    "configurations_equivalent",
    "stateful_projections_equivalent",
]


def policies_equivalent(p: Policy, q: Policy, builder: Optional[FDDBuilder] = None) -> bool:
    """Decide ``p ≡ q`` for link-free policies via canonical FDDs."""
    builder = builder or FDDBuilder()
    return builder.of_policy(p) is builder.of_policy(q)


def predicates_equivalent(a: Predicate, b: Predicate, builder: Optional[FDDBuilder] = None) -> bool:
    """Decide ``a ≡ b`` for predicates via canonical FDDs."""
    builder = builder or FDDBuilder()
    return builder.of_predicate(a) is builder.of_predicate(b)


def _mentioned_values(tables: Iterable[FlowTable]) -> Dict[str, Set[int]]:
    """Field values any rule tests or writes, plus one fresh value each."""
    values: Dict[str, Set[int]] = {}
    for table in tables:
        for rule in table:
            for field, constraint in rule.match.entries():
                if isinstance(constraint, int):
                    values.setdefault(field, set()).add(constraint)
                else:  # prefix match: cover its concrete values
                    values.setdefault(field, set()).update(
                        constraint.covered_values()
                    )
            for mod in rule.actions:
                for field, value in mod:
                    values.setdefault(field, set()).add(value)
    for field, seen in values.items():
        seen.add(max(seen) + 1)  # a value no rule mentions
    return values


def tables_equivalent(t1: FlowTable, t2: FlowTable, max_probes: int = 200_000) -> bool:
    """Do two tables map every relevant packet to the same outputs?

    The probe space is the product of the field values either table
    mentions (plus one fresh value per field), which is sufficient to
    distinguish exact-match/priority tables.
    """
    values = _mentioned_values([t1, t2])
    if not values:
        return t1.apply(Packet({})) == t2.apply(Packet({}))
    fields = sorted(values)
    total = 1
    for field in fields:
        total *= len(values[field])
    if total > max_probes:
        raise ValueError(
            f"probe space of {total} packets exceeds max_probes={max_probes}"
        )
    for combo in product(*(sorted(values[f]) for f in fields)):
        packet = Packet(dict(zip(fields, combo)))
        if t1.apply(packet) != t2.apply(packet):
            return False
    return True


def configurations_equivalent(c1: Configuration, c2: Configuration) -> bool:
    """Do two compiled configurations behave identically per switch?"""
    if c1.topology.switches != c2.topology.switches:
        return False
    return all(
        tables_equivalent(c1.table(switch), c2.table(switch))
        for switch in c1.topology.switches
    )


def stateful_projections_equivalent(
    p: Policy, q: Policy, states: Iterable[StateVector]
) -> List[StateVector]:
    """Compare two stateful programs state by state.

    Returns the states at which the projected configurations *differ*
    (empty list = equivalent on all given states).  Projections are
    compared as compiled FDDs when link-free, otherwise by AST equality
    of the projection (conservative).
    """
    builder = FDDBuilder()
    differing: List[StateVector] = []
    from ..netkat.compiler import link_free, strip_dup

    for state in states:
        cp = _normalize(strip_dup(project(p, state)))
        cq = _normalize(strip_dup(project(q, state)))
        if link_free(cp) and link_free(cq):
            if not policies_equivalent(cp, cq, builder):
                differing.append(state)
        elif cp != cq:
            differing.append(state)
    return differing


def _normalize(p: Policy) -> Policy:
    """Rebuild a policy through the smart constructors.

    Projection and ``strip_dup`` preserve node identity on untouched
    subtrees, so trivially-simplifiable shapes (``id ; q``, ``drop + q``,
    ...) survive in their projections.  The AST-equality fallback below
    compares the normalized forms so identity-preserved and rebuilt
    projections of equivalent programs still compare equal.
    """
    from ..netkat.ast import (
        Conj,
        Disj,
        Filter,
        Neg,
        Seq,
        Star,
        Union,
        conj,
        disj,
        neg,
        seq,
        star,
        union,
    )

    def norm_pred(a: Predicate) -> Predicate:
        if isinstance(a, Neg):
            return neg(norm_pred(a.operand))
        if isinstance(a, Conj):
            return conj(norm_pred(a.left), norm_pred(a.right))
        if isinstance(a, Disj):
            return disj(norm_pred(a.left), norm_pred(a.right))
        return a

    if isinstance(p, Filter):
        return Filter(norm_pred(p.predicate))
    if isinstance(p, Union):
        return union(_normalize(p.left), _normalize(p.right))
    if isinstance(p, Seq):
        return seq(_normalize(p.left), _normalize(p.right))
    if isinstance(p, Star):
        return star(_normalize(p.operand))
    return p
