"""Verification extras: bounded model checking of the runtime against
Definition 6, and semantic equivalence checks (the paper's section 7
future-work items, realized for finite instances)."""

from .equiv import (
    configurations_equivalent,
    policies_equivalent,
    predicates_equivalent,
    stateful_projections_equivalent,
    tables_equivalent,
)
from .explore import ExplorationResult, explore_all_interleavings

__all__ = [
    "explore_all_interleavings",
    "ExplorationResult",
    "policies_equivalent",
    "predicates_equivalent",
    "tables_equivalent",
    "configurations_equivalent",
    "stateful_projections_equivalent",
]
