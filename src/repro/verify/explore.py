"""Bounded model checking of the implementation against Definition 6.

The paper proves Theorem 1 on paper and leaves "formal reasoning and
automated verification for Stateful NetKAT" as future work (section 7).
This module supplies the automated half for finite instances: given an
application and a workload, it explores *every* interleaving of the
Figure 7 operational semantics up to a depth bound and checks each
terminal network trace with the Definition 6 checker.

State spaces are pruned by memoizing canonical global states, so the
diamond explosion of independent transitions collapses.  This is the
strongest evidence the repository offers for implementation correctness:
the randomized Theorem 1 tests sample interleavings, while this explores
all of them (for small workloads).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..apps.base import App
from ..consistency.checker import NESChecker
from ..consistency.update import CorrectnessReport
from ..runtime.semantics import Runtime, Transition

__all__ = ["ExplorationResult", "explore_all_interleavings"]


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of an exhaustive exploration."""

    executions_explored: int
    states_visited: int
    truncated: int  # executions cut off by the depth bound
    violations: Tuple[Tuple[Tuple[str, ...], CorrectnessReport], ...]

    @property
    def all_correct(self) -> bool:
        return not self.violations


def _runtime_with_injections(
    app: App,
    injections: Sequence[Tuple[str, Mapping[str, int]]],
    seed: int = 0,
    runtime_factory=None,
) -> Runtime:
    rt = runtime_factory() if runtime_factory is not None else app.runtime(seed=seed)
    for host, fields in injections:
        rt.inject(host, fields)
    return rt


def _canonical_state(rt: Runtime) -> Tuple:
    """A hashable snapshot of the global runtime state.

    Two interleavings reaching the same snapshot have identical futures
    (the semantics is deterministic given a transition choice), so the
    snapshot is a sound memoization key.
    """
    switches = []
    for switch_id in sorted(rt.state.switches):
        switch = rt.state.switches[switch_id]
        in_queues = tuple(
            (port, tuple(repr(p) for p in queue))
            for port, queue in sorted(switch.in_queues.items())
            if queue
        )
        out_queues = tuple(
            (port, tuple(repr(p) for p in queue))
            for port, queue in sorted(switch.out_queues.items())
            if queue
        )
        switches.append(
            (
                switch_id,
                frozenset(switch.known_events),
                in_queues,
                out_queues,
            )
        )
    return (
        tuple(switches),
        frozenset(rt.state.controller_queue),
        frozenset(rt.state.controller),
        len(rt.state.delivered),
        len(rt.state.dropped),
        # The recorded trace must be part of the key: interleavings that
        # reach the same queue state via different processing orders have
        # different network traces (different happens-before relations),
        # and pruning them would hide violations from the checker.
        tuple(repr(lp) for lp in rt.recorder.positions),
        tuple(sorted(rt.recorder.finished_paths)),
    )


def explore_all_interleavings(
    app: App,
    injections: Sequence[Tuple[str, Mapping[str, int]]],
    max_depth: int = 64,
    max_executions: int = 100_000,
    include_controller: bool = False,
    runtime_factory=None,
) -> ExplorationResult:
    """Explore every schedule of the workload and check every trace.

    ``injections`` are issued up front, so the exploration covers all
    packet races.  Controller transitions are excluded by default (they
    only disseminate knowledge and blow up the interleaving space);
    include them to additionally verify CTRLSEND orderings.

    ``runtime_factory`` substitutes a custom runtime constructor -- the
    test suite uses it to check that *buggy* runtimes are caught.
    """
    checker = NESChecker(app.nes, app.topology)
    violations: List[Tuple[Tuple[str, ...], CorrectnessReport]] = []
    seen_terminal: Set[Tuple] = set()
    visited: Set[Tuple] = set()
    executions = 0
    truncated = 0

    def transitions_of(rt: Runtime) -> List[Transition]:
        enabled = rt.enabled_transitions()
        if not include_controller:
            enabled = [
                t for t in enabled if t.rule not in ("CTRLRECV", "CTRLSEND")
            ]
        return enabled

    def replay(schedule: Sequence[int]) -> Runtime:
        """Re-execute a schedule of transition indices from scratch."""
        rt = _runtime_with_injections(app, injections, runtime_factory=runtime_factory)
        for choice in schedule:
            rt.apply(transitions_of(rt)[choice])
        return rt

    def check_terminal(rt: Runtime, schedule: Tuple[int, ...]) -> None:
        nonlocal executions
        executions += 1
        key = _canonical_state(rt)
        if key in seen_terminal:
            return
        seen_terminal.add(key)
        trace = rt.network_trace()
        report = checker.check(trace)
        if not report:
            labels = tuple(str(i) for i in schedule)
            violations.append((labels, report))

    # Iterative deepening DFS over transition choices.  Each node replays
    # its schedule; with memoization on canonical states the tree stays
    # tractable for the workload sizes used in tests/benches.
    stack: List[Tuple[Tuple[int, ...]]] = [((),)]
    while stack:
        (schedule,) = stack.pop()
        if executions >= max_executions:
            break
        rt = replay(schedule)
        key = _canonical_state(rt)
        if key in visited:
            continue
        visited.add(key)
        enabled = transitions_of(rt)
        if not enabled:
            check_terminal(rt, schedule)
            continue
        if len(schedule) >= max_depth:
            truncated += 1
            continue
        for index in range(len(enabled)):
            stack.append(((schedule + (index,)),))

    return ExplorationResult(
        executions_explored=executions,
        states_visited=len(visited),
        truncated=truncated,
        violations=tuple(violations),
    )
