"""The synthetic ring application (section 5.2).

Hosts H1 and H2 sit on opposite sides of a ring of ``2 * diameter``
switches.  In the initial state, H1-to-H2 traffic is forwarded
clockwise; when a *signal* packet (field ``sig=1``) from H1 arrives at
H2's switch, the configuration flips and subsequent H1-to-H2 traffic is
forwarded counterclockwise.  Replies (H2 to H1) always travel
counterclockwise, so they gossip the event back along the clockwise
path.

This is the scalability workload of Figures 16(a) and 16(b): rule
counts, tagging overhead, and event-discovery time all grow with the
diameter.

Port conventions (see :func:`repro.topology.ring_topology`): at switch
``i``, port 1 goes clockwise, port 2 counterclockwise, port 3 to the
host (if any).
"""

from __future__ import annotations

from typing import List

from ..netkat.ast import Policy, assign, filter_, link, seq, test, union
from ..netkat.packet import Location
from ..stateful.ast import link_update, state_eq
from ..topology import ring_topology
from .base import App, HOSTS

__all__ = ["ring_app", "SIGNAL_FIELD"]

SIGNAL_FIELD = "sig"


def _clockwise_hops(start: int, count: int, ring_size: int) -> List[Policy]:
    """Hop policies from ``start`` going clockwise for ``count`` links."""
    hops: List[Policy] = []
    current = start
    for _ in range(count):
        nxt = (current % ring_size) + 1
        hops.append(seq(assign("pt", 1), link(Location(current, 1), Location(nxt, 2))))
        current = nxt
    return hops


def _counterclockwise_hops(start: int, count: int, ring_size: int) -> List[Policy]:
    """Hop policies from ``start`` going counterclockwise for ``count`` links."""
    hops: List[Policy] = []
    current = start
    for _ in range(count):
        prev = ring_size if current == 1 else current - 1
        hops.append(seq(assign("pt", 2), link(Location(current, 2), Location(prev, 1))))
        current = prev
    return hops


def ring_app(diameter: int) -> App:
    """Build the ring program for a given diameter (H1 at s1, H2 at s(d+1))."""
    if diameter < 1:
        raise ValueError("diameter must be at least 1")
    n = 2 * diameter
    dst_switch = diameter + 1
    h1, h2 = HOSTS["H1"], HOSTS["H2"]

    # Clockwise data path (state [0]): s1 -> s2 -> ... -> s(d+1).
    clockwise = _clockwise_hops(1, diameter, n)
    data_clockwise = seq(
        filter_(test("pt", 3) & test("ip_dst", h2) & state_eq([0])),
        *clockwise,
        assign("pt", 3),
    )

    # The signal path: same clockwise route, but the final hop records the
    # event (arrival of a sig=1 packet at H2's switch).
    signal_hops = _clockwise_hops(1, diameter - 1, n) if diameter > 1 else []
    last_src = diameter  # the switch before dst_switch, clockwise
    signal = seq(
        filter_(test("pt", 3) & test(SIGNAL_FIELD, 1) & state_eq([0])),
        *signal_hops,
        assign("pt", 1),
        link_update(Location(last_src, 1), Location(dst_switch, 2), [1]),
        assign("pt", 3),
    )

    # Counterclockwise data path (state [1]): s1 -> s(2d) -> ... -> s(d+1).
    counterclockwise = _counterclockwise_hops(1, diameter, n)
    data_counterclockwise = seq(
        filter_(test("pt", 3) & test("ip_dst", h2) & state_eq([1])),
        *counterclockwise,
        assign("pt", 3),
    )

    # Replies H2 -> H1 travel counterclockwise (s(d+1) -> s(d) -> ... -> s1)
    # in both states; on the way they carry the digest to the clockwise-path
    # switches.
    reply_hops = _counterclockwise_hops(dst_switch, diameter, n)
    replies = seq(
        filter_(test("pt", 3) & test("ip_dst", h1)),
        *reply_hops,
        assign("pt", 3),
    )

    program = union(data_clockwise, signal, data_counterclockwise, replies)
    return App(
        name=f"ring-{diameter}",
        program=program,
        topology=ring_topology(diameter),
        initial_state=(0,),
        description=(
            f"Ring of {n} switches; forward clockwise until a signal packet "
            "reaches H2's switch, then counterclockwise."
        ),
    )
