"""Port-knocking authentication (Figures 8(c) and 9(c)).

The untrusted host H4 wants to reach H3, but must first contact H1 and
then H2, in that order.  Each successful contact is an event that
advances the state machine; only in the final state does s4 install the
H4-to-H3 path.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_eq
from ..topology import star_topology
from .base import App, HOSTS

__all__ = ["authentication_app"]


def authentication_app() -> App:
    """Figure 9(c), transcribed:

    ``state=[0] & pt=2 & ip_dst=H1; pt<-1; (4:1)->(1:1)<state<-[1]>; pt<-2
    + state=[1] & pt=2 & ip_dst=H2; pt<-3; (4:3)->(2:1)<state<-[2]>; pt<-2
    + state=[2] & pt=2 & ip_dst=H3; pt<-4; (4:4)->(3:1); pt<-2
    + pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2``
    """
    h1, h2, h3 = HOSTS["H1"], HOSTS["H2"], HOSTS["H3"]
    knock1 = seq(
        filter_(state_eq([0]) & test("pt", 2) & test("ip_dst", h1)),
        assign("pt", 1),
        link_update("4:1", "1:1", [1]),
        assign("pt", 2),
    )
    knock2 = seq(
        filter_(state_eq([1]) & test("pt", 2) & test("ip_dst", h2)),
        assign("pt", 3),
        link_update("4:3", "2:1", [2]),
        assign("pt", 2),
    )
    access = seq(
        filter_(state_eq([2]) & test("pt", 2) & test("ip_dst", h3)),
        assign("pt", 4),
        link("4:4", "3:1"),
        assign("pt", 2),
    )
    replies = seq(
        filter_(test("pt", 2)),
        assign("pt", 1),
        union(link("1:1", "4:1"), link("2:1", "4:3"), link("3:1", "4:4")),
        assign("pt", 2),
    )
    return App(
        name="authentication",
        program=union(knock1, knock2, access, replies),
        topology=star_topology(),
        initial_state=(0,),
        description=(
            "H4 gains access to H3 only after probing H1 then H2 in order "
            "(port-knocking); replies from internal hosts always flow back."
        ),
    )
