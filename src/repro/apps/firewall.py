"""The stateful firewall (Figures 8(a) and 9(a)).

H1 may always send to H4; H4 may send to H1 only after H1 has contacted
H4 (the arrival of an H1-to-H4 packet at switch 4 is the triggering
event).  This is the paper's running example: a correct implementation
must flip s4's behavior *immediately* upon the event -- an uncoordinated
update drops H4's replies in the window before its delayed rule push.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_eq
from ..topology import firewall_topology
from .base import App, HOSTS

__all__ = ["firewall_app"]


def firewall_app() -> App:
    """Figure 9(a), transcribed:

    ``pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]>
    + state!=[0]; (1:1)->(4:1)); pt<-2
    + pt=2 & ip_dst=H1; state=[1]; pt<-1; (4:1)->(1:1); pt<-2``
    """
    h1, h4 = HOSTS["H1"], HOSTS["H4"]
    outgoing = seq(
        filter_(test("pt", 2) & test("ip_dst", h4)),
        assign("pt", 1),
        union(
            seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
            seq(filter_(~state_eq([0])), link("1:1", "4:1")),
        ),
        assign("pt", 2),
    )
    incoming = seq(
        filter_(test("pt", 2) & test("ip_dst", h1)),
        filter_(state_eq([1])),
        assign("pt", 1),
        link("4:1", "1:1"),
        assign("pt", 2),
    )
    return App(
        name="stateful-firewall",
        program=union(outgoing, incoming),
        topology=firewall_topology(),
        initial_state=(0,),
        description=(
            "Outgoing H1->H4 always allowed; incoming H4->H1 allowed only "
            "after the outside network has been contacted."
        ),
    )
