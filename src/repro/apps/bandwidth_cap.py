"""The bandwidth cap / uCap (Figures 8(d) and 9(d)).

Outgoing H1-to-H4 traffic is allowed, but each packet reaching the
provider (switch 4) advances a counter; once ``cap`` packets have been
seen, the incoming (reply) path is disabled.  The NES for this program
exercises event *renaming*: the same syntactic event ``(dst=H4, 4:1)``
occurs once per counter value.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_eq
from ..topology import firewall_topology
from .base import App, HOSTS

__all__ = ["bandwidth_cap_app", "DEFAULT_CAP"]

DEFAULT_CAP = 10


def bandwidth_cap_app(cap: int = DEFAULT_CAP) -> App:
    """Figure 9(d), transcribed (with the chain length parameterized):

    ``pt=2 & ip_dst=H4; pt<-1; (state=[0]; (1:1)->(4:1)<state<-[1]> +
    ... + state=[cap]; (1:1)->(4:1)<state<-[cap+1]> +
    state=[cap+1]; (1:1)->(4:1)); pt<-2
    + pt=2 & ip_dst=H1; state!=[cap+1]; pt<-1; (4:1)->(1:1); pt<-2``
    """
    if cap < 1:
        raise ValueError("the cap must be at least 1 packet")
    h1, h4 = HOSTS["H1"], HOSTS["H4"]
    counting_links = [
        seq(filter_(state_eq([i])), link_update("1:1", "4:1", [i + 1]))
        for i in range(cap + 1)
    ]
    final_link = seq(filter_(state_eq([cap + 1])), link("1:1", "4:1"))
    outgoing = seq(
        filter_(test("pt", 2) & test("ip_dst", h4)),
        assign("pt", 1),
        union(*counting_links, final_link),
        assign("pt", 2),
    )
    incoming = seq(
        filter_(test("pt", 2) & test("ip_dst", h1)),
        filter_(~state_eq([cap + 1])),
        assign("pt", 1),
        link("4:1", "1:1"),
        assign("pt", 2),
    )
    return App(
        name=f"bandwidth-cap-{cap}",
        program=union(outgoing, incoming),
        topology=firewall_topology(),
        initial_state=(0,),
        description=(
            f"Allow outgoing traffic, counting packets at the provider; "
            f"after {cap} packets the incoming path is disabled, so exactly "
            f"{cap} pings can complete."
        ),
    )
