"""Multi-host learning switch (the section 5.1 extension).

The paper notes the learning switch "only allows learning for a single
host (H1), but we could easily add learning for H2 by using a different
index in the vector-valued state field" -- this module does exactly
that: ``state(0)`` learns H1 and ``state(1)`` learns H2, by unioning two
instances of the Figure 9(b) pattern.

The resulting NES is the repository's only *diamond*: two compatible
events that may occur in either order, with all four event-sets
present.  It exercises multi-component state vectors, the
finite-completeness check on a true lub, and per-packet consistency
under concurrent independent updates.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_test
from ..topology import learning_topology
from .base import App, HOSTS

__all__ = ["learning_multi_app"]


def learning_multi_app() -> App:
    """Learn H1 via state(0) and H2 via state(1), independently."""
    h1, h2, h4 = HOSTS["H1"], HOSTS["H2"], HOSTS["H4"]

    # Traffic to H1: always point-to-point; flooded to H2 while H1 is
    # unlearned (state(0)=0).
    to_h1 = seq(
        filter_(test("pt", 2) & test("ip_dst", h1)),
        union(
            seq(assign("pt", 1), link("4:1", "1:1")),
            seq(filter_(state_test(0, 0)), assign("pt", 3), link("4:3", "2:1")),
        ),
        assign("pt", 2),
    )
    # Traffic to H2: symmetric, flooded to H1 while H2 is unlearned.
    to_h2 = seq(
        filter_(test("pt", 2) & test("ip_dst", h2)),
        union(
            seq(assign("pt", 3), link("4:3", "2:1")),
            seq(filter_(state_test(1, 0)), assign("pt", 1), link("4:1", "1:1")),
        ),
        assign("pt", 2),
    )
    # Replies toward H4 teach the switch: H1's reply sets state(0),
    # H2's reply sets state(1).
    from_h1 = seq(
        filter_(test("pt", 2) & test("ip_dst", h4) & test("ip_src", h1)),
        assign("pt", 1),
        link_update("1:1", "4:1", [(0, 1)]),
        assign("pt", 2),
    )
    from_h2 = seq(
        filter_(test("pt", 2) & test("ip_dst", h4) & test("ip_src", h2)),
        assign("pt", 1),
        link_update("2:1", "4:3", [(1, 1)]),
        assign("pt", 2),
    )
    return App(
        name="learning-switch-multi",
        program=union(to_h1, to_h2, from_h1, from_h2),
        topology=learning_topology(),
        initial_state=(0, 0),
        description=(
            "Flood traffic to unlearned hosts; replies from H1 and H2 "
            "teach their locations independently (a diamond NES)."
        ),
    )
