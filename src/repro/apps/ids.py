"""The intrusion detection system (Figures 8(e) and 9(e)).

H4 may initially reach all internal hosts.  Contacting H1 and then H2,
in that order, is treated as a scan signature; once both events have
occurred, access to H3 is cut off.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_eq
from ..topology import star_topology
from .base import App, HOSTS

__all__ = ["ids_app"]


def ids_app() -> App:
    """Figure 9(e), transcribed:

    ``pt=2 & ip_dst=H1; pt<-1; (state=[0]; (4:1)->(1:1)<state<-[1]> +
    state!=[0]; (4:1)->(1:1)); pt<-2
    + pt=2 & ip_dst=H2; pt<-3; (state=[1]; (4:3)->(2:1)<state<-[2]> +
    state!=[1]; (4:3)->(2:1)); pt<-2
    + pt=2 & ip_dst=H3; pt<-4; state!=[2]; (4:4)->(3:1); pt<-2
    + pt=2; pt<-1; ((1:1)->(4:1) + (2:1)->(4:3) + (3:1)->(4:4)); pt<-2``
    """
    h1, h2, h3 = HOSTS["H1"], HOSTS["H2"], HOSTS["H3"]
    to_h1 = seq(
        filter_(test("pt", 2) & test("ip_dst", h1)),
        assign("pt", 1),
        union(
            seq(filter_(state_eq([0])), link_update("4:1", "1:1", [1])),
            seq(filter_(~state_eq([0])), link("4:1", "1:1")),
        ),
        assign("pt", 2),
    )
    to_h2 = seq(
        filter_(test("pt", 2) & test("ip_dst", h2)),
        assign("pt", 3),
        union(
            seq(filter_(state_eq([1])), link_update("4:3", "2:1", [2])),
            seq(filter_(~state_eq([1])), link("4:3", "2:1")),
        ),
        assign("pt", 2),
    )
    to_h3 = seq(
        filter_(test("pt", 2) & test("ip_dst", h3)),
        assign("pt", 4),
        filter_(~state_eq([2])),
        link("4:4", "3:1"),
        assign("pt", 2),
    )
    replies = seq(
        filter_(test("pt", 2)),
        assign("pt", 1),
        union(link("1:1", "4:1"), link("2:1", "4:3"), link("3:1", "4:4")),
        assign("pt", 2),
    )
    return App(
        name="intrusion-detection",
        program=union(to_h1, to_h2, to_h3, replies),
        topology=star_topology(),
        initial_state=(0,),
        description=(
            "All traffic allowed until H4 contacts H1 and then H2 in that "
            "suspicious order; afterwards H4's access to H3 is blocked."
        ),
    )
