"""The learning switch (Figures 8(b) and 9(b)).

Traffic from H4 to H1 is flooded (sent to both H1 and H2) until H4
receives a packet from H1; at that point s4 "learns" H1's location and
stops flooding.  The triggering event is the arrival of an H1-to-H4
packet at 4:1.
"""

from __future__ import annotations

from ..netkat.ast import assign, filter_, link, seq, test, union
from ..stateful.ast import link_update, state_eq
from ..topology import learning_topology
from .base import App, HOSTS

__all__ = ["learning_switch_app"]


def learning_switch_app() -> App:
    """Figure 9(b), transcribed:

    ``pt=2 & ip_dst=H1; (pt<-1; (4:1)->(1:1) + state=[0]; pt<-3;
    (4:3)->(2:1)); pt<-2
    + pt=2 & ip_dst=H4; pt<-1; (1:1)->(4:1)<state<-[1]>; pt<-2
    + pt=2; pt<-1; (2:1)->(4:3); pt<-2``
    """
    h1, h4 = HOSTS["H1"], HOSTS["H4"]
    to_h1 = seq(
        filter_(test("pt", 2) & test("ip_dst", h1)),
        union(
            seq(assign("pt", 1), link("4:1", "1:1")),
            seq(filter_(state_eq([0])), assign("pt", 3), link("4:3", "2:1")),
        ),
        assign("pt", 2),
    )
    to_h4 = seq(
        filter_(test("pt", 2) & test("ip_dst", h4)),
        assign("pt", 1),
        link_update("1:1", "4:1", [1]),
        assign("pt", 2),
    )
    from_h2 = seq(
        filter_(test("pt", 2)),
        assign("pt", 1),
        link("2:1", "4:3"),
        assign("pt", 2),
    )
    return App(
        name="learning-switch",
        program=union(to_h1, to_h4, from_h2),
        topology=learning_topology(),
        initial_state=(0,),
        description=(
            "Flood H4->H1 traffic to both H1 and H2 until a reply from H1 "
            "teaches s4 where H1 lives; then forward point-to-point."
        ),
    )
