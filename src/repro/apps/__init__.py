"""The paper's case-study applications (section 5.1) and the ring
scalability workload (section 5.2), written in Stateful NetKAT."""

from .authentication import authentication_app
from .bandwidth_cap import DEFAULT_CAP, bandwidth_cap_app
from .base import App, HOSTS
from .firewall import firewall_app
from .ids import ids_app
from .learning_multi import learning_multi_app
from .learning_switch import learning_switch_app
from .ring import SIGNAL_FIELD, ring_app

__all__ = [
    "App",
    "HOSTS",
    "firewall_app",
    "learning_switch_app",
    "learning_multi_app",
    "authentication_app",
    "bandwidth_cap_app",
    "DEFAULT_CAP",
    "ids_app",
    "ring_app",
    "SIGNAL_FIELD",
]

ALL_CASE_STUDIES = (
    firewall_app,
    learning_switch_app,
    authentication_app,
    bandwidth_cap_app,
    ids_app,
)
