"""Common structure for the paper's case-study applications (section 5.1).

Each application bundles a Stateful NetKAT program, the topology of
Figure 8 it runs on, and an initial state vector; :meth:`App.build`
produces the ETS, NES, and compiled artifact on demand (cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Optional, Tuple

from ..events.ets_to_nes import nes_of_ets
from ..events.nes import NES
from ..netkat.ast import Policy
from ..runtime.compiler import CompiledNES, compile_nes
from ..runtime.semantics import Runtime
from ..stateful.ast import StateVector
from ..stateful.ets import ETS, build_ets
from ..topology import Topology

__all__ = ["App", "HOSTS"]

# Conventional numeric host addresses used by all case studies: the value
# carried in a packet's ip_dst/ip_src fields for host "Hk" is k.
HOSTS: Dict[str, int] = {"H1": 1, "H2": 2, "H3": 3, "H4": 4}


@dataclass(frozen=True)
class App:
    """A runnable case study: program + topology + initial state."""

    name: str
    program: Policy
    topology: Topology
    initial_state: StateVector
    description: str = ""

    @cached_property
    def ets(self) -> ETS:
        return build_ets(self.program, self.initial_state)

    @cached_property
    def nes(self) -> NES:
        return nes_of_ets(self.ets)

    @cached_property
    def compiled(self) -> CompiledNES:
        return compile_nes(self.nes, self.topology)

    def runtime(self, seed: int = 0, controller_assist: bool = False) -> Runtime:
        """A fresh runtime executing this application."""
        return Runtime(
            self.compiled, seed=seed, controller_assist=controller_assist
        )

    def host_address(self, name: str) -> int:
        return HOSTS[name]
