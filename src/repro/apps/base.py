"""Common structure for the paper's case-study applications (section 5.1).

Each application bundles a Stateful NetKAT program, the topology of
Figure 8 it runs on, an initial state vector, and the
:class:`~repro.pipeline.CompileOptions` it compiles under; the staged
artifacts (:attr:`App.ets`, :attr:`App.nes`, :attr:`App.compiled`) all
delegate to one cached :class:`~repro.pipeline.Pipeline`, so an app
constructed with ``options.cache_dir`` set skips the whole toolchain on
a warm artifact cache.  The default options build the ETS through the
symbolic all-states engine (``symbolic_extract=True``); construct an
app with ``options=CompileOptions(symbolic_extract=False)`` to route
through the per-state reference walks instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..events.nes import NES
from ..netkat.ast import Policy
from ..pipeline import CompileOptions, Pipeline, _topology_fingerprint
from ..runtime.compiler import CompiledNES
from ..runtime.semantics import Runtime
from ..stateful.ast import StateVector
from ..stateful.ets import ETS
from ..topology import Topology

__all__ = ["App", "HOSTS"]

# Conventional numeric host addresses used by all case studies: the value
# carried in a packet's ip_dst/ip_src fields for host "Hk" is k.
HOSTS: Dict[str, int] = {"H1": 1, "H2": 2, "H3": 3, "H4": 4}


@dataclass(frozen=True)
class App:
    """A runnable case study: program + topology + initial state."""

    name: str
    program: Policy
    topology: Topology
    initial_state: StateVector
    description: str = ""
    options: CompileOptions = CompileOptions()

    @property
    def pipeline(self) -> Pipeline:
        """The staged compilation pipeline for this app.

        Memoized **keyed on the pipeline's inputs**, not unconditionally:
        an app whose ``options`` (or other frozen fields) are replaced
        via ``dataclasses.replace``-style surgery, or whose topology is
        mutated in place, gets a fresh pipeline instead of stale staged
        artifacts.  Unchanged inputs keep returning the same pipeline
        object, so the staged work and the timing report stay shared.
        """
        key = (
            id(self.program),
            self.initial_state,
            self.options,
            _topology_fingerprint(self.topology),
        )
        memo = self.__dict__.get("_pipeline_memo")
        if memo is not None and memo[0] == key:
            return memo[1]
        pipeline = Pipeline(
            self.program, self.topology, self.initial_state, self.options
        )
        object.__setattr__(self, "_pipeline_memo", (key, pipeline))
        return pipeline

    @property
    def ets(self) -> ETS:
        return self.pipeline.ets

    @property
    def nes(self) -> NES:
        return self.pipeline.nes

    @property
    def compiled(self) -> CompiledNES:
        return self.pipeline.compiled

    def runtime(self, seed: int = 0, controller_assist: bool = False) -> Runtime:
        """A fresh runtime executing this application."""
        return Runtime(
            self.compiled, seed=seed, controller_assist=controller_assist
        )

    def host_address(self, name: str) -> int:
        return HOSTS[name]
