"""Network topologies: switches, hosts, ports and unidirectional links.

A topology is pure data shared by the compiler (to place rules), the
runtime semantics (to move packets across links) and the simulator (to
model latency and capacity).  Hosts are modeled as in the paper: a host
attaches to a switch port and can source/sink packets.

All links are unidirectional ``(src_location, dst_location)`` pairs;
:meth:`Topology.add_duplex_link` installs both directions at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .netkat.packet import Location

__all__ = ["Host", "Topology", "LinkSpec"]


@dataclass(frozen=True)
class Host:
    """A host attached to a switch port."""

    name: str
    attachment: Location

    def __str__(self) -> str:
        return f"{self.name}@{self.attachment}"


LinkSpec = Tuple[Location, Location]


class Topology:
    """A directed multigraph of switch ports plus host attachment points."""

    def __init__(self) -> None:
        self._switches: Set[int] = set()
        self._links: Dict[Location, Set[Location]] = {}
        self._reverse_links: Dict[Location, Set[Location]] = {}
        self._hosts: Dict[str, Host] = {}
        self._host_ports: Dict[Location, Host] = {}

    # -- construction -----------------------------------------------------

    def add_switch(self, switch: int) -> "Topology":
        self._switches.add(switch)
        return self

    def add_link(self, src: str | Location, dst: str | Location) -> "Topology":
        src_loc = src if isinstance(src, Location) else Location.parse(src)
        dst_loc = dst if isinstance(dst, Location) else Location.parse(dst)
        self._switches.add(src_loc.switch)
        self._switches.add(dst_loc.switch)
        self._links.setdefault(src_loc, set()).add(dst_loc)
        self._reverse_links.setdefault(dst_loc, set()).add(src_loc)
        return self

    def add_duplex_link(self, a: str | Location, b: str | Location) -> "Topology":
        self.add_link(a, b)
        self.add_link(b, a)
        return self

    def add_host(self, name: str, attachment: str | Location) -> "Topology":
        loc = (
            attachment
            if isinstance(attachment, Location)
            else Location.parse(attachment)
        )
        if name in self._hosts:
            raise ValueError(f"duplicate host name {name!r}")
        if loc in self._host_ports:
            raise ValueError(f"port {loc} already has a host attached")
        host = Host(name, loc)
        self._hosts[name] = host
        self._host_ports[loc] = host
        self._switches.add(loc.switch)
        return self

    # -- queries ------------------------------------------------------------

    @property
    def switches(self) -> FrozenSet[int]:
        return frozenset(self._switches)

    @property
    def hosts(self) -> Tuple[Host, ...]:
        return tuple(self._hosts[name] for name in sorted(self._hosts))

    def host(self, name: str) -> Host:
        return self._hosts[name]

    def host_at(self, location: Location) -> Optional[Host]:
        return self._host_ports.get(location)

    def links(self) -> Iterator[LinkSpec]:
        for src in sorted(self._links, key=lambda l: (l.switch, l.port)):
            for dst in sorted(self._links[src], key=lambda l: (l.switch, l.port)):
                yield (src, dst)

    def link_targets(self, src: Location) -> FrozenSet[Location]:
        return frozenset(self._links.get(src, ()))

    def link_sources(self, dst: Location) -> FrozenSet[Location]:
        return frozenset(self._reverse_links.get(dst, ()))

    def has_link(self, src: Location, dst: Location) -> bool:
        return dst in self._links.get(src, ())

    def ports_of(self, switch: int) -> FrozenSet[int]:
        """All ports of a switch mentioned by links or host attachments."""
        ports = set()
        for loc in self._links:
            if loc.switch == switch:
                ports.add(loc.port)
        for targets in self._links.values():
            for loc in targets:
                if loc.switch == switch:
                    ports.add(loc.port)
        for loc in self._host_ports:
            if loc.switch == switch:
                ports.add(loc.port)
        return frozenset(ports)

    def edge_locations(self) -> Tuple[Location, ...]:
        """All host attachment points (network ingress/egress ports)."""
        return tuple(sorted(self._host_ports, key=lambda l: (l.switch, l.port)))

    def __repr__(self) -> str:
        links = ", ".join(f"{s}->{d}" for s, d in self.links())
        hosts = ", ".join(str(h) for h in self.hosts)
        return f"Topology(switches={sorted(self._switches)}, links=[{links}], hosts=[{hosts}])"


# ---------------------------------------------------------------------------
# Topology builders for the paper's evaluation (Figure 8)
# ---------------------------------------------------------------------------


def firewall_topology() -> Topology:
    """Figure 8(a)/(d): H1 -- s1 -- s4 -- H4 (ports: 2 host-facing, 1 inter-switch)."""
    topo = Topology()
    topo.add_duplex_link("1:1", "4:1")
    topo.add_host("H1", "1:2")
    topo.add_host("H4", "4:2")
    return topo


def learning_topology() -> Topology:
    """Figure 8(b): H4 -- s4 with s4 -- s1 (H1) and s4 -- s2 (H2)."""
    topo = Topology()
    topo.add_duplex_link("1:1", "4:1")
    topo.add_duplex_link("2:1", "4:3")
    topo.add_host("H1", "1:2")
    topo.add_host("H2", "2:2")
    topo.add_host("H4", "4:2")
    return topo


def star_topology() -> Topology:
    """Figure 8(c)/(e): s4 hub connecting s1 (H1), s2 (H2), s3 (H3), and H4."""
    topo = Topology()
    topo.add_duplex_link("1:1", "4:1")
    topo.add_duplex_link("2:1", "4:3")
    topo.add_duplex_link("3:1", "4:4")
    topo.add_host("H1", "1:2")
    topo.add_host("H2", "2:2")
    topo.add_host("H3", "3:2")
    topo.add_host("H4", "4:2")
    return topo


def ring_topology(diameter: int) -> Topology:
    """Section 5.2: H1 and H2 on opposite sides of a ring of switches.

    ``diameter`` is the hop distance from H1's switch to H2's switch, so
    the ring has ``2 * diameter`` switches (minimum diameter 1).  Switch
    ``i`` connects clockwise to switch ``(i % n) + 1`` using port 1
    (clockwise out), port 2 (counterclockwise out / clockwise in); hosts
    attach at port 3.
    """
    if diameter < 1:
        raise ValueError("diameter must be at least 1")
    n = 2 * diameter
    topo = Topology()
    for i in range(1, n + 1):
        nxt = (i % n) + 1
        topo.add_duplex_link(Location(i, 1), Location(nxt, 2))
    topo.add_host("H1", Location(1, 3))
    topo.add_host("H2", Location(diameter + 1, 3))
    return topo
