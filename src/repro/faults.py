"""Deterministic, seeded fault injection for the compilation pipeline.

The pipeline, the artifact cache, and the per-configuration compile
executor each call :func:`check` at a named **site** on their failure
seams.  With no plan installed (the default, and the production state)
the call is a single global read and an immediate return — zero
overhead.  With a :class:`FaultPlan` installed, each hit of a site is
deterministically evaluated against the plan's per-site rule and may
raise :class:`FaultInjected`, which the instrumented layer then has to
survive: retry, degrade, or fail with a typed error.  The chaos suite
(``tests/test_faults.py``) is built on exactly that contract.

Sites (see :data:`SITES`):

- ``cache.load`` / ``cache.store`` — inside
  :meth:`~repro.pipeline.ArtifactCache.load` / ``store``; an injected
  fault models an unreadable or unwritable cache entry.
- ``executor.worker`` — at the top of every per-configuration compile
  attempt (serial and thread backends alike); models a crashing worker.
- ``stage.ets`` / ``stage.nes`` / ``stage.compile`` — at each
  :class:`~repro.pipeline.Pipeline` stage boundary; models a stage that
  cannot start.

Determinism: every random decision is drawn from a per-site
:class:`random.Random` seeded by SHA-256 of ``(plan seed, site)``, so a
plan replays the identical fault schedule per site regardless of the
order sites interleave, hash randomization, or thread scheduling of
*other* sites.  (Within one site hit under the thread backend, hit
numbering follows arrival order; use ``max_fires``/``skip`` rules, which
are order-insensitive, when a test needs exact cross-thread replay.)

Usage::

    from repro import faults

    plan = faults.FaultPlan({"executor.worker": faults.FaultRule(max_fires=1)})
    with faults.injected(plan):
        tables = Pipeline(program, topo, (0,), options).compiled
    assert plan.fires("executor.worker") == 1
"""

from __future__ import annotations

import hashlib
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "SITES",
    "FaultInjected",
    "FaultRule",
    "FaultPlan",
    "active",
    "check",
    "injected",
    "install",
    "uninstall",
]

# Every instrumented seam.  Plans naming any other site are rejected at
# construction, so a typo'd site fails loudly instead of never firing.
SITES: Tuple[str, ...] = (
    "cache.load",
    "cache.store",
    "executor.worker",
    "stage.ets",
    "stage.nes",
    "stage.compile",
)


class FaultInjected(Exception):
    """Raised at an instrumented site when the installed plan fires.

    Carries the site name and the 1-based hit number that fired, so a
    failure observed downstream can be traced to the exact injection.
    """

    def __init__(self, site: str, hit: int):
        super().__init__(f"injected fault at {site!r} (hit #{hit})")
        self.site = site
        self.hit = hit


@dataclass(frozen=True)
class FaultRule:
    """When one site fires.

    - ``probability``: chance that an eligible hit fires (1.0 = every
      eligible hit; draws come from the plan's per-site seeded stream).
    - ``max_fires``: stop firing after this many injections (``None`` =
      unbounded).  Bounded rules are how chaos tests model *transient*
      faults that a retry or a backend fallback must absorb.
    - ``skip``: let the first N hits through before becoming eligible
      (models a fault that appears mid-run, e.g. only on the warm load).
    """

    probability: float = 1.0
    max_fires: Optional[int] = None
    skip: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")


def _site_rng(seed: int, site: str) -> random.Random:
    """A per-site stream derived stably from (seed, site) — never from
    the process hash seed, so plans replay across interpreters."""
    digest = hashlib.sha256(f"{seed}:{site}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class FaultPlan:
    """A seeded schedule of faults over the named :data:`SITES`.

    ``rules`` maps site names to :class:`FaultRule` (a bare float is
    shorthand for ``FaultRule(probability=...)``).  Hit and fire counts
    are observable per site (:meth:`hits` / :meth:`fires`) so tests can
    assert the schedule actually exercised what they meant to exercise.
    Thread-safe: the executor's worker site is hit concurrently under
    the thread backend.
    """

    def __init__(
        self,
        rules: Mapping[str, Union[FaultRule, float]],
        seed: int = 0,
    ):
        unknown = sorted(set(rules) - set(SITES))
        if unknown:
            raise ValueError(
                f"unknown fault site(s) {unknown}; choose from {SITES}"
            )
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {
            site: rule if isinstance(rule, FaultRule) else FaultRule(float(rule))
            for site, rule in rules.items()
        }
        self._rngs = {site: _site_rng(seed, site) for site in self.rules}
        self._hits: Dict[str, int] = {site: 0 for site in SITES}
        self._fires: Dict[str, int] = {site: 0 for site in SITES}
        self._lock = threading.Lock()

    def check(self, site: str) -> None:
        """Record a hit of ``site``; raise :class:`FaultInjected` if the
        plan's rule says this hit fires."""
        rule = self.rules.get(site)
        with self._lock:
            self._hits[site] = hit = self._hits[site] + 1
            if rule is None or hit <= rule.skip:
                return
            if rule.max_fires is not None and self._fires[site] >= rule.max_fires:
                return
            if rule.probability < 1.0 and not (
                self._rngs[site].random() < rule.probability
            ):
                return
            self._fires[site] += 1
        raise FaultInjected(site, hit)

    def hits(self, site: str) -> int:
        """How many times ``site`` was reached (fired or not)."""
        with self._lock:
            return self._hits[site]

    def fires(self, site: str) -> int:
        """How many times ``site`` actually injected a fault."""
        with self._lock:
            return self._fires[site]

    def __repr__(self) -> str:
        fired = {s: n for s, n in self._fires.items() if n}
        return f"FaultPlan(seed={self.seed}, sites={sorted(self.rules)}, fired={fired})"


# ---------------------------------------------------------------------------
# The installed-plan registry
# ---------------------------------------------------------------------------

_active: Optional[FaultPlan] = None
_install_lock = threading.Lock()


def active() -> Optional[FaultPlan]:
    """The currently installed plan (``None`` in production)."""
    return _active


def install(plan: FaultPlan) -> None:
    """Install ``plan`` process-wide.  Exactly one plan may be active;
    installing over another is a test bug and raises."""
    global _active
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"install() wants a FaultPlan, got {type(plan).__name__}")
    with _install_lock:
        if _active is not None:
            raise RuntimeError(
                "a FaultPlan is already installed; uninstall() it first "
                "(plans do not nest)"
            )
        _active = plan


def uninstall() -> None:
    """Remove the installed plan (idempotent)."""
    global _active
    with _install_lock:
        _active = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def check(site: str) -> None:
    """The hook the instrumented layers call.

    With no plan installed this is one global read and a return — the
    zero-overhead production path.  With a plan installed it delegates
    to :meth:`FaultPlan.check`, which may raise :class:`FaultInjected`.
    """
    plan = _active
    if plan is not None:
        plan.check(site)
