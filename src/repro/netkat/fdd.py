"""Forwarding decision diagrams (FDDs).

An FDD is a binary decision diagram whose internal nodes test packet
fields against constants (``f = n``) and whose leaves hold *action sets*:
sets of partial field assignments.  FDDs are the intermediate
representation of the NetKAT compiler, following the architecture of
"A Fast Compiler for NetKAT" (Smolka et al., ICFP'15).

Invariants:

- Along every root-to-leaf path, tests appear in strictly increasing
  order (by field rank, then field name, then value).
- A node's ``hi`` child never re-tests the node's field (the value is
  known there); the ``lo`` child may test the same field with a larger
  value.
- No node has identical children.

Nodes are hash-consed, and the binary operations are memoized, so
structurally equal FDDs are pointer-equal.

FDDs represent *link-free* policies (tests, assignments, union, sequence,
star).  Links are handled one level up, by the path compiler in
:mod:`repro.netkat.compiler`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
)

__all__ = [
    "Mod",
    "ActionSet",
    "FDD",
    "Leaf",
    "Branch",
    "FieldOrder",
    "FDDBuilder",
    "DEFAULT_FIELD_ORDER",
]

# A Mod is a partial map from fields to values, stored as a sorted tuple so
# it is hashable.  The empty Mod is the identity action.
Mod = Tuple[Tuple[str, int], ...]
ActionSet = FrozenSet[Mod]

IDENTITY_MOD: Mod = ()

# Default precedence for branch ordering; fields not listed rank after
# listed ones, alphabetically.  Putting sw/pt first keeps per-switch table
# extraction cheap.
DEFAULT_FIELD_ORDER: Tuple[str, ...] = ("sw", "pt")


def mod_of(assignments: Dict[str, int]) -> Mod:
    """Build a Mod from a dict of assignments."""
    return tuple(sorted(assignments.items()))


def mod_get(mod: Mod, field: str) -> Optional[int]:
    """Look up a field in a Mod, or None if unassigned."""
    for name, value in mod:
        if name == field:
            return value
    return None


def mod_compose(first: Mod, second: Mod) -> Mod:
    """Sequential composition of assignments: ``second`` overrides ``first``."""
    merged = dict(first)
    merged.update(second)
    return tuple(sorted(merged.items()))


class FDD:
    """Base class for FDD nodes.  Instances are created by FDDBuilder only."""

    __slots__ = ("_id",)

    def is_leaf(self) -> bool:
        return isinstance(self, Leaf)


class Leaf(FDD):
    """A leaf holding an action set (empty set = drop)."""

    __slots__ = ("actions",)

    def __init__(self, actions: ActionSet, node_id: int):
        object.__setattr__(self, "actions", actions)
        object.__setattr__(self, "_id", node_id)

    def __repr__(self) -> str:
        if not self.actions:
            return "drop"
        parts = []
        for mod in sorted(self.actions):
            if not mod:
                parts.append("id")
            else:
                parts.append(",".join(f"{f}<-{v}" for f, v in mod))
        return "{" + " | ".join(parts) + "}"


class Branch(FDD):
    """An internal node testing ``field = value``."""

    __slots__ = ("field", "value", "hi", "lo")

    def __init__(self, field: str, value: int, hi: FDD, lo: FDD, node_id: int):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "_id", node_id)

    def __repr__(self) -> str:
        return f"({self.field}={self.value} ? {self.hi!r} : {self.lo!r})"


class FieldOrder:
    """A total order on (field, value) tests."""

    def __init__(self, precedence: Sequence[str] = DEFAULT_FIELD_ORDER):
        self._rank = {name: i for i, name in enumerate(precedence)}
        self._fallback = len(self._rank)

    def field_rank(self, field: str) -> Tuple[int, str]:
        return (self._rank.get(field, self._fallback), field)

    def test_key(self, field: str, value: int) -> Tuple[int, str, int]:
        rank, name = self.field_rank(field)
        return (rank, name, value)

    def compare(self, t1: Tuple[str, int], t2: Tuple[str, int]) -> int:
        k1 = self.test_key(*t1)
        k2 = self.test_key(*t2)
        if k1 < k2:
            return -1
        if k1 > k2:
            return 1
        return 0


# Sentinel marking the deprecated FDDBuilder keyword arguments; the
# supported spelling is CompileOptions(...).make_builder().
_DEPRECATED_KWARG = object()


class FDDBuilder:
    """Factory and algebra for FDDs.

    One builder instance owns a hash-cons table and memo caches; all FDDs
    combined together must come from the same builder.  Builders are
    **not** thread-safe; the pipeline's thread backend gives each worker
    thread a private builder.
    """

    def __init__(
        self,
        order: Optional[FieldOrder] = None,
        ordered_insert=_DEPRECATED_KWARG,
        ast_memo=_DEPRECATED_KWARG,
    ):
        if ordered_insert is not _DEPRECATED_KWARG or ast_memo is not _DEPRECATED_KWARG:
            warnings.warn(
                "FDDBuilder(ordered_insert=..., ast_memo=...) is deprecated; "
                "use repro.pipeline.CompileOptions(ordered_insert=..., "
                "ast_memo=...).make_builder() instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.order = order or FieldOrder()
        self.ordered_insert = (
            True if ordered_insert is _DEPRECATED_KWARG else ordered_insert
        )
        self.ast_memo = True if ast_memo is _DEPRECATED_KWARG else ast_memo
        self._leaf_cache: Dict[ActionSet, Leaf] = {}
        self._branch_cache: Dict[Tuple[str, int, int, int], Branch] = {}
        self._next_id = 0
        self._memo_union: Dict[Tuple[int, int], FDD] = {}
        self._memo_seq: Dict[Tuple[int, int], FDD] = {}
        self._memo_mask: Dict[Tuple[int, int], FDD] = {}
        self._memo_seq_mod: Dict[Tuple[Mod, int], FDD] = {}
        self._memo_negate: Dict[int, FDD] = {}
        self._memo_ite: Dict[Tuple[str, int, int, int], FDD] = {}
        # AST-compilation memos, keyed on node identity.  The value keeps
        # the AST node alive so its id cannot be recycled while the memo
        # can still serve it.  Configurations projected from one stateful
        # program share subtree objects, so these hit across the per-state
        # compiles of a CompiledNES.  Like the hash-consing caches above
        # they grow for the builder's lifetime; a long-lived builder fed
        # many unrelated programs can call clear_ast_memos() between them.
        self._memo_of_policy: Dict[int, Tuple[object, FDD]] = {}
        self._memo_of_predicate: Dict[int, Tuple[object, FDD]] = {}
        self.drop = self.leaf(frozenset())
        self.id = self.leaf(frozenset((IDENTITY_MOD,)))

    @classmethod
    def from_options(cls, options) -> "FDDBuilder":
        """A builder configured by a ``CompileOptions``-like object
        (anything with ``field_order``, ``ordered_insert``, ``ast_memo``).

        This is the supported way to get a non-default builder; the
        ``ordered_insert=``/``ast_memo=`` constructor keywords are
        deprecated.
        """
        builder = cls(order=FieldOrder(options.field_order))
        builder.ordered_insert = options.ordered_insert
        builder.ast_memo = options.ast_memo
        return builder

    # -- node constructors ---------------------------------------------------

    def leaf(self, actions: ActionSet) -> Leaf:
        cached = self._leaf_cache.get(actions)
        if cached is not None:
            return cached
        node = Leaf(actions, self._next_id)
        self._next_id += 1
        self._leaf_cache[actions] = node
        return node

    def branch(self, field: str, value: int, hi: FDD, lo: FDD) -> FDD:
        if hi is lo:
            return hi
        key = (field, value, hi._id, lo._id)
        cached = self._branch_cache.get(key)
        if cached is not None:
            return cached
        node = Branch(field, value, hi, lo, self._next_id)
        self._next_id += 1
        self._branch_cache[key] = node
        return node

    # -- restriction helpers ---------------------------------------------------

    def assume_true(self, d: FDD, field: str, value: int) -> FDD:
        """Restrict ``d`` under the assumption ``field == value``.

        Only sound when (field, value) orders before every test in ``d``
        or equals tests on the same field at the top of ``d``.
        """
        while isinstance(d, Branch) and d.field == field:
            if d.value == value:
                d = d.hi
            else:
                d = d.lo
        return d

    def assume_false(self, d: FDD, field: str, value: int) -> FDD:
        """Restrict ``d`` under the assumption ``field != value``."""
        if not isinstance(d, Branch) or d.field != field:
            return d
        if d.value == value:
            return self.assume_false(d.lo, field, value)
        hi = d.hi  # field == d.value (!= value), so the assumption holds
        lo = self.assume_false(d.lo, field, value)
        return self.branch(d.field, d.value, hi, lo)

    def _root_test(self, d: FDD) -> Optional[Tuple[str, int]]:
        if isinstance(d, Branch):
            return (d.field, d.value)
        return None

    def _apply(
        self,
        op: Callable[[ActionSet, ActionSet], ActionSet],
        memo: Dict[Tuple[int, int], FDD],
        d1: FDD,
        d2: FDD,
    ) -> FDD:
        key = (d1._id, d2._id)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if isinstance(d1, Leaf) and isinstance(d2, Leaf):
            result: FDD = self.leaf(op(d1.actions, d2.actions))
        else:
            t1 = self._root_test(d1)
            t2 = self._root_test(d2)
            if t1 is None:
                t = t2
            elif t2 is None:
                t = t1
            else:
                t = t1 if self.order.compare(t1, t2) <= 0 else t2
            assert t is not None
            field, value = t
            hi = self._apply(
                op,
                memo,
                self.assume_true(d1, field, value),
                self.assume_true(d2, field, value),
            )
            lo = self._apply(
                op,
                memo,
                self.assume_false(d1, field, value),
                self.assume_false(d2, field, value),
            )
            result = self.branch(field, value, hi, lo)
        memo[key] = result
        return result

    # -- algebra -----------------------------------------------------------

    def union(self, d1: FDD, d2: FDD) -> FDD:
        """Parallel composition: pointwise union of action sets."""
        if d1 is self.drop:
            return d2
        if d2 is self.drop:
            return d1
        if d1 is d2:
            return d1
        if d1._id > d2._id:  # canonical argument order for the memo table
            d1, d2 = d2, d1
        return self._apply(lambda a, b: a | b, self._memo_union, d1, d2)

    def mask(self, guard: FDD, d: FDD) -> FDD:
        """Behave as ``d`` where ``guard`` passes, drop elsewhere.

        ``guard`` must be a predicate FDD (leaves are the id or drop
        action set).
        """
        return self._apply(
            lambda g, a: a if g else frozenset(), self._memo_mask, guard, d
        )

    def seq_mod(self, mod: Mod, d: FDD) -> FDD:
        """Compose a single modification with an FDD: ``mod ; d``.

        Tests in ``d`` on fields assigned by ``mod`` are decided; leaf
        actions are composed after ``mod``.
        """
        key = (mod, d._id)
        cached = self._memo_seq_mod.get(key)
        if cached is not None:
            return cached
        if isinstance(d, Leaf):
            result: FDD = self.leaf(
                frozenset(mod_compose(mod, a) for a in d.actions)
            )
        else:
            assigned = mod_get(mod, d.field)
            if assigned is not None:
                if assigned == d.value:
                    result = self.seq_mod(mod, d.hi)
                else:
                    result = self.seq_mod(mod, d.lo)
            else:
                hi = self.seq_mod(mod, d.hi)
                lo = self.seq_mod(mod, d.lo)
                result = self._ite_test(d.field, d.value, hi, lo)
        self._memo_seq_mod[key] = result
        return result

    def _ite_test(self, field: str, value: int, hi: FDD, lo: FDD) -> FDD:
        """Build "if field==value then hi else lo" re-establishing ordering.

        ``hi``/``lo`` may contain tests ordering before (field, value), so
        a plain branch() would violate the path-ordering invariant.  The
        default strategy splices the test in with one ordered-insert walk;
        ``ordered_insert=False`` keeps the original mask/union route (two
        guard FDDs plus two applies plus a union) as a reference
        implementation for differential tests.
        """
        if hi is lo:
            return hi
        if self.ordered_insert:
            return self.ite_test(field, value, hi, lo)
        guard = self.branch(field, value, self.id, self.drop)
        n_guard = self.branch(field, value, self.drop, self.id)
        return self.union(self.mask(guard, hi), self.mask(n_guard, lo))

    def ite_test(self, field: str, value: int, hi: FDD, lo: FDD) -> FDD:
        """Ordered insert: one simultaneous walk of ``hi``/``lo`` that sinks
        the test ``field == value`` to its ordered position.

        Tests on ``field`` itself never interleave with tests on other
        fields (the order key is lexicographic on (rank, name, value)), so
        whenever (field, value) orders at or before both roots, every test
        on ``field`` inside ``hi``/``lo`` sits in the root chain and
        ``assume_true``/``assume_false`` decide them all.
        """
        if hi is lo:
            return hi
        key = (field, value, hi._id, lo._id)
        cached = self._memo_ite.get(key)
        if cached is not None:
            return cached
        test_key = self.order.test_key
        k_test = test_key(field, value)
        k_min = None
        for root in (self._root_test(hi), self._root_test(lo)):
            if root is not None:
                k = test_key(*root)
                if k_min is None or k < k_min:
                    k_min = k
        if k_min is None or k_test <= k_min:
            # (field, value) belongs at the root; the children are fully
            # decided on field by the assumptions.
            result = self.branch(
                field,
                value,
                self.assume_true(hi, field, value),
                self.assume_false(lo, field, value),
            )
        else:
            _, e, w = k_min
            if e == field:
                # w < value: under field == w the outer test is false, so
                # only the lo side survives there.
                result = self.branch(
                    e,
                    w,
                    self.assume_true(lo, e, w),
                    self.ite_test(
                        field,
                        value,
                        self.assume_false(hi, e, w),
                        self.assume_false(lo, e, w),
                    ),
                )
            else:
                result = self.branch(
                    e,
                    w,
                    self.ite_test(
                        field,
                        value,
                        self.assume_true(hi, e, w),
                        self.assume_true(lo, e, w),
                    ),
                    self.ite_test(
                        field,
                        value,
                        self.assume_false(hi, e, w),
                        self.assume_false(lo, e, w),
                    ),
                )
        self._memo_ite[key] = result
        return result

    def seq(self, d1: FDD, d2: FDD) -> FDD:
        """Sequential composition ``d1 ; d2``."""
        key = (d1._id, d2._id)
        cached = self._memo_seq.get(key)
        if cached is not None:
            return cached
        if isinstance(d1, Leaf):
            result = self.drop
            for mod in d1.actions:
                result = self.union(result, self.seq_mod(mod, d2))
        else:
            hi = self.seq(d1.hi, d2)
            lo = self.seq(d1.lo, d2)
            result = self._ite_test(d1.field, d1.value, hi, lo)
        self._memo_seq[key] = result
        return result

    def star(self, d: FDD, fuel: int = 200) -> FDD:
        """Kleene star by fixpoint iteration: ``id + d;id + d;d;id + ...``."""
        acc = self.id
        for _ in range(fuel):
            nxt = self.union(self.id, self.seq(d, acc))
            if nxt is acc:
                return acc
            acc = nxt
        raise RuntimeError(f"FDD star did not converge within {fuel} iterations")

    def cofactor(self, d: FDD, field: str, value: int) -> FDD:
        """Specialize ``d`` under ``field == value``, removing its tests.

        Sound for any position of ``field`` in the order because the
        result is rebuilt with the ordering-preserving branch constructor
        (tests on ``field`` simply disappear).
        """
        if isinstance(d, Leaf):
            return d
        if d.field == field:
            if d.value == value:
                return self.cofactor(d.hi, field, value)
            return self.cofactor(d.lo, field, value)
        hi = self.cofactor(d.hi, field, value)
        lo = self.cofactor(d.lo, field, value)
        return self.branch(d.field, d.value, hi, lo)

    def negate(self, d: FDD) -> FDD:
        """Complement of a predicate FDD (id leaves <-> drop leaves)."""
        memo = self._memo_negate

        def walk(node: FDD) -> FDD:
            cached = memo.get(node._id)
            if cached is not None:
                return cached
            if isinstance(node, Leaf):
                if node.actions == self.id.actions:
                    result: FDD = self.drop
                elif not node.actions:
                    result = self.id
                else:
                    raise ValueError("negate() applied to a non-predicate FDD")
            else:
                result = self.branch(
                    node.field, node.value, walk(node.hi), walk(node.lo)
                )
            memo[node._id] = result
            return result

        return walk(d)

    # -- compilation from AST --------------------------------------------------

    def clear_ast_memos(self) -> None:
        """Release the id-keyed AST memos (and the AST trees they pin).

        The compiled FDD nodes themselves stay interned; only the
        policy/predicate-tree associations are dropped, so subsequent
        compiles of the same objects re-walk the AST once.
        """
        self._memo_of_policy.clear()
        self._memo_of_predicate.clear()

    def of_predicate(self, a: Predicate) -> FDD:
        """Compile a predicate to a 0/1-valued FDD."""
        if self.ast_memo:
            cached = self._memo_of_predicate.get(id(a))
            if cached is not None:
                return cached[1]
        if isinstance(a, PTrue):
            result = self.id
        elif isinstance(a, PFalse):
            result = self.drop
        elif isinstance(a, Test):
            result = self.branch(a.field, a.value, self.id, self.drop)
        elif isinstance(a, Neg):
            result = self.negate(self.of_predicate(a.operand))
        elif isinstance(a, Conj):
            result = self.seq(
                self.of_predicate(a.left), self.of_predicate(a.right)
            )
        elif isinstance(a, Disj):
            left = self.of_predicate(a.left)
            right = self.of_predicate(a.right)
            # Predicate union must stay 0/1-valued: a|b = ~(~a & ~b).
            result = self.negate(self.seq(self.negate(left), self.negate(right)))
        else:
            raise TypeError(f"not a predicate: {a!r}")
        if self.ast_memo:
            self._memo_of_predicate[id(a)] = (a, result)
        return result

    def of_policy(self, p: Policy) -> FDD:
        """Compile a link-free policy to an FDD.

        ``dup`` and links are rejected here: dup is a history operation
        with no flow-table meaning, and links are split out by the path
        compiler before FDDs are built.
        """
        if self.ast_memo:
            cached = self._memo_of_policy.get(id(p))
            if cached is not None:
                return cached[1]
        if isinstance(p, Filter):
            result = self.of_predicate(p.predicate)
        elif isinstance(p, Assign):
            result = self.leaf(frozenset((mod_of({p.field: p.value}),)))
        elif isinstance(p, Union):
            result = self.union(self.of_policy(p.left), self.of_policy(p.right))
        elif isinstance(p, Seq):
            result = self.seq(self.of_policy(p.left), self.of_policy(p.right))
        elif isinstance(p, Star):
            result = self.star(self.of_policy(p.operand))
        elif isinstance(p, Dup):
            raise ValueError("dup has no FDD form; strip it before compiling")
        elif isinstance(p, Link):
            raise ValueError(
                f"link {p!r} reached the FDD compiler; links must be "
                "split out by repro.netkat.compiler first"
            )
        else:
            raise TypeError(f"not a policy: {p!r}")
        if self.ast_memo:
            self._memo_of_policy[id(p)] = (p, result)
        return result

    # -- evaluation and extraction ---------------------------------------------

    def eval(self, d: FDD, packet) -> FrozenSet:
        """Evaluate an FDD on a packet, returning the set of output packets."""
        node = d
        while isinstance(node, Branch):
            if packet.get(node.field) == node.value:
                node = node.hi
            else:
                node = node.lo
        out = set()
        for mod in node.actions:
            result = packet
            for field, value in mod:
                result = result.set(field, value)
            out.add(result)
        return frozenset(out)

    def paths(self, d: FDD) -> Iterator[Tuple[Tuple[Tuple[str, int, bool], ...], ActionSet]]:
        """Enumerate (constraints, actions) pairs; constraint bools mean eq/neq.

        The hi-first order means earlier paths shadow later ones when the
        negative constraints are dropped -- exactly the priority semantics
        of flow tables.
        """

        def walk(node: FDD, acc: List[Tuple[str, int, bool]]):
            if isinstance(node, Leaf):
                yield (tuple(acc), node.actions)
                return
            acc.append((node.field, node.value, True))
            yield from walk(node.hi, acc)
            acc.pop()
            acc.append((node.field, node.value, False))
            yield from walk(node.lo, acc)
            acc.pop()

        yield from walk(d, [])

    def size(self, d: FDD) -> int:
        """Number of distinct nodes in ``d``."""
        seen = set()

        def walk(node: FDD) -> None:
            if node._id in seen:
                return
            seen.add(node._id)
            if isinstance(node, Branch):
                walk(node.hi)
                walk(node.lo)

        walk(d)
        return len(seen)
