"""The path compiler: NetKAT policies with links -> per-switch flow tables.

The paper's configurations (Figure 9, projected to a single state by
``⟦p⟧~k``) describe *end-to-end paths*: link-free processing segments
alternating with physical link crossings.  This module splits such a
policy at its links and compiles each hop into rules for the switch where
the hop executes, yielding a :class:`Configuration`:

1. normalize the policy into *alternations* -- sequences
   ``q0 ; L1 ; q1 ; ... ; Ln ; qn`` with link-free ``qi``;
2. symbolically execute each alternation hop by hop, carrying the
   *knowledge* (field constraints established by earlier hops, translated
   through modifications) forward across links;
3. build one FDD per switch (unioning all hops that execute there, which
   realizes NetKAT's multicast union semantics) and extract prioritized
   rules.

The resulting configuration is exactly the relation ``C`` of section 2:
switch steps come from the tables, link steps from the topology.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    FALSE,
    Filter,
    ID,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    TRUE,
    Union,
    at_location,
    conj,
    neg,
    seq as seq_policy,
    test,
)
from .fdd import FDD, FDDBuilder, Leaf, Mod
from .flowtable import FlowTable, Match, Rule, table_of_fdd
from .packet import Location, LocatedPacket, Packet, PT, SW
from ..topology import Topology

__all__ = [
    "CompileError",
    "Alternation",
    "alternations",
    "link_free",
    "strip_dup",
    "Knowledge",
    "Configuration",
    "compile_policy",
    "knowledge_fdd",
]


class CompileError(Exception):
    """Raised when a policy falls outside the compilable fragment."""


def link_free(p: Policy) -> bool:
    """True when the policy contains no link constructors."""
    if isinstance(p, Link):
        return False
    if isinstance(p, (Union, Seq)):
        return link_free(p.left) and link_free(p.right)
    if isinstance(p, Star):
        return link_free(p.operand)
    return True


def strip_dup(p: Policy) -> Policy:
    """Replace ``dup`` by the identity (dup only affects histories).

    Identity-preserving: dup-free subtrees come back as the same object,
    so the builder's id-keyed ``of_policy`` memo keeps hitting on the
    subtrees that per-state projections share.
    """
    if isinstance(p, Dup):
        return ID
    if isinstance(p, Union):
        left = strip_dup(p.left)
        right = strip_dup(p.right)
        return p if left is p.left and right is p.right else Union(left, right)
    if isinstance(p, Seq):
        left = strip_dup(p.left)
        right = strip_dup(p.right)
        return (
            p
            if left is p.left and right is p.right
            else seq_policy(left, right)
        )
    if isinstance(p, Star):
        inner = strip_dup(p.operand)
        if inner is p.operand:
            return p
        return ID if inner is ID else Star(inner)
    return p


@dataclass(frozen=True)
class Alternation:
    """One union branch of a policy: ``q0 ; L1 ; q1 ; ... ; Ln ; qn``."""

    segments: Tuple[Policy, ...]
    links: Tuple[Link, ...]

    def __post_init__(self) -> None:
        if len(self.segments) != len(self.links) + 1:
            raise ValueError("an alternation needs one more segment than links")


def alternations(p: Policy) -> List[Alternation]:
    """Distribute unions and split sequences at link crossings.

    Kleene stars are only supported over link-free bodies; a star whose
    body crosses links would describe unboundedly long paths and is
    rejected (the paper's programs never need it).
    """
    if isinstance(p, Link):
        return [Alternation((ID, ID), (p,))]
    if isinstance(p, Union):
        return alternations(p.left) + alternations(p.right)
    if isinstance(p, Seq):
        out: List[Alternation] = []
        for a in alternations(p.left):
            for b in alternations(p.right):
                glue = seq_policy(a.segments[-1], b.segments[0])
                segments = a.segments[:-1] + (glue,) + b.segments[1:]
                out.append(Alternation(segments, a.links + b.links))
        return out
    if isinstance(p, Star):
        if not link_free(p.operand):
            raise CompileError(
                f"cannot compile {p!r}: Kleene star over a policy that "
                "crosses links is outside the compilable fragment"
            )
        return [Alternation((p,), ())]
    # Filters, assignments, dup -- link-free atoms.
    return [Alternation((p,), ())]


@dataclass(frozen=True)
class Knowledge:
    """Field constraints known to hold of the packet arriving at a hop.

    ``pos`` maps fields to their known values; ``neg`` maps fields to
    sets of excluded values.  Knowledge is carried across links so that
    downstream switches re-match the constraints that selected this path
    (unmodified fields keep their values across hops).
    """

    pos: Tuple[Tuple[str, int], ...] = ()
    neg: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()

    @staticmethod
    def empty() -> "Knowledge":
        return Knowledge()

    def predicate(self) -> Predicate:
        """The conjunction of all known constraints."""
        terms: List[Predicate] = [test(f, v) for f, v in self.pos]
        for f, excluded in self.neg:
            for v in excluded:
                terms.append(neg(test(f, v)))
        return conj(*terms)

    @staticmethod
    def after_hop(
        constraints: Sequence[Tuple[str, int, bool]],
        mod: Mod,
        dst: Location,
    ) -> "Knowledge":
        """Knowledge about the packet after this hop's mods and a link to ``dst``.

        ``constraints`` are the FDD path literals on the hop's arrival
        packet (which already include the incoming knowledge, because the
        hop FDD was built under it).
        """
        pos: Dict[str, int] = {}
        neg: Dict[str, Set[int]] = {}
        for f, v, is_eq in constraints:
            if is_eq:
                pos[f] = v
                neg.pop(f, None)
            elif f not in pos:
                neg.setdefault(f, set()).add(v)
        for f, v in mod:
            pos[f] = v
            neg.pop(f, None)
        pos[SW] = dst.switch
        pos[PT] = dst.port
        neg.pop(SW, None)
        neg.pop(PT, None)
        return Knowledge(
            pos=tuple(sorted(pos.items())),
            neg=tuple(sorted((f, tuple(sorted(vs))) for f, vs in neg.items() if vs)),
        )


class Configuration:
    """A compiled network configuration: per-switch tables over a topology.

    This realizes the relation ``C`` of section 2 -- switch-internal
    forwarding steps plus link steps -- and is the unit manipulated by
    event-driven updates.
    """

    def __init__(
        self,
        tables: Dict[int, FlowTable],
        topology: Topology,
        name: str = "",
    ):
        self._tables = dict(tables)
        for switch in topology.switches:
            self._tables.setdefault(switch, FlowTable())
        self.topology = topology
        self.name = name

    @property
    def tables(self) -> Dict[int, FlowTable]:
        return dict(self._tables)

    def table(self, switch: int) -> FlowTable:
        return self._tables.get(switch, FlowTable())

    def rule_count(self) -> int:
        return sum(len(t) for t in self._tables.values())

    # -- the step relation C -------------------------------------------------

    def switch_step(self, lp: LocatedPacket) -> FrozenSet[LocatedPacket]:
        """Forward within a switch: table lookup, outputs at egress ports."""
        packet = lp.packet.at(lp.location)
        table = self._tables.get(lp.location.switch)
        if table is None:
            return frozenset()
        outputs = set()
        for out in table.apply(packet):
            egress = Location(lp.location.switch, out[PT])
            outputs.add(LocatedPacket(out, egress))
        # A switch step must move the packet to a different port; a rule
        # that leaves the packet exactly in place is a no-op, not a step.
        return frozenset(o for o in outputs if o != lp.normalized())

    def link_step(self, lp: LocatedPacket) -> FrozenSet[LocatedPacket]:
        """Cross a physical link, keeping all non-location fields."""
        outputs = set()
        for dst in self.topology.link_targets(lp.location):
            moved = lp.packet.at(dst)
            outputs.add(LocatedPacket(moved, dst))
        return frozenset(outputs)

    def step(self, lp: LocatedPacket) -> FrozenSet[LocatedPacket]:
        """One step of the relation C (switch forwarding or link crossing)."""
        return self.switch_step(lp) | self.link_step(lp)

    def relates(self, lp: LocatedPacket, lp2: LocatedPacket) -> bool:
        return lp2 in self.step(lp)

    def __repr__(self) -> str:
        label = self.name or "unnamed"
        return f"Configuration({label}, {self.rule_count()} rules)"


def _sw_decomposition(
    builder: FDDBuilder, d: FDD
) -> Tuple[Dict[int, FDD], FDD]:
    """Split an FDD by its root-level ``sw`` tests.

    Returns (per-switch specializations, residual for untested switches).
    ``sw`` is first in the field order, so all sw tests sit at the root.
    """
    per_switch: Dict[int, FDD] = {}
    node = d
    seen: List[int] = []
    while not isinstance(node, Leaf) and node.field == SW:
        value = node.value
        specialized = builder.cofactor(d, SW, value)
        per_switch[value] = specialized
        seen.append(value)
        node = node.lo
    residual = node
    return per_switch, residual


def _prune_table(table: FlowTable) -> FlowTable:
    """Drop rules that cannot affect behavior.

    A drop rule is kept only when some lower-priority rule with actions
    overlaps its match (the drop shadows it); trailing drops merely
    restate the table's default.

    Lower-priority action rules are indexed by their exact-match fields,
    so each drop rule only examines the action rules that could possibly
    overlap on its most selective field (instead of rescanning the whole
    table suffix, which made pruning quadratic).
    """
    rules = list(table.rules)
    action_positions: List[int] = [i for i, r in enumerate(rules) if r.actions]
    # field -> value -> positions of action rules pinning field to value;
    # field -> positions of action rules not constraining field (those
    # overlap regardless of the drop rule's value).  All lists ascend.
    by_field_value: Dict[Tuple[str, int], List[int]] = {}
    field_positions: Dict[str, List[int]] = {}
    for pos in action_positions:
        for f, c in rules[pos].match.entries():
            if isinstance(c, int):
                by_field_value.setdefault((f, c), []).append(pos)
                field_positions.setdefault(f, []).append(pos)

    lacking_cache: Dict[str, List[int]] = {}

    def lacking(f: str) -> List[int]:
        cached = lacking_cache.get(f)
        if cached is None:
            with_field = set(field_positions.get(f, ()))
            cached = [p for p in action_positions if p not in with_field]
            lacking_cache[f] = cached
        return cached

    def candidates(rule: Rule) -> List[int]:
        best: Optional[Tuple[str, int]] = None
        best_count = None
        for f, c in rule.match.entries():
            if not isinstance(c, int):
                continue
            count = len(by_field_value.get((f, c), ())) + len(lacking(f))
            if best_count is None or count < best_count:
                best, best_count = (f, c), count
        if best is None:
            return action_positions
        return by_field_value.get(best, []) + lacking(best[0])

    kept: List[Rule] = []
    for i, rule in enumerate(rules):
        if rule.actions:
            kept.append(rule)
            continue
        shadows = any(
            pos > i and _matches_overlap(rule.match, rules[pos].match)
            for pos in candidates(rule)
        )
        if shadows:
            kept.append(rule)
    return FlowTable(kept)


def _matches_overlap(m1: Match, m2: Match) -> bool:
    """Can some packet satisfy both matches? (conservative for prefixes)."""
    for f, c1 in m1.entries():
        c2 = m2.get(f)
        if c2 is None:
            continue
        if isinstance(c1, int) and isinstance(c2, int) and c1 != c2:
            return False
    return True


_at_location_predicates: Dict[Location, Predicate] = {}


def _at_location_interned(location: Location) -> Predicate:
    """A canonical ``at_location`` predicate AST per location.

    ``compile_policy`` builds one reach-link guard per hop per call; the
    builder's id-keyed ``of_predicate`` memo would pin a fresh throwaway
    AST per compile, so the predicate objects are interned here (bounded
    by the distinct locations ever compiled) and every compile hits the
    same memo entry.
    """
    a = _at_location_predicates.get(location)
    if a is None:
        a = at_location(location)
        _at_location_predicates[location] = a
    return a


# Per-builder knowledge-FDD caches.  The cache lives in this module
# (the only place that knows Knowledge's (pos, neg) canonical key) and
# is keyed weakly so a discarded builder releases its cache with it.
# The outer mapping is shared across the pipeline's worker threads
# (each with a private builder), so entry creation takes a lock; the
# inner per-builder dicts are only ever touched by their builder's
# owning thread.
_knowledge_caches: "weakref.WeakKeyDictionary[FDDBuilder, Dict[Tuple, FDD]]" = (
    weakref.WeakKeyDictionary()
)
_knowledge_caches_lock = threading.Lock()


def knowledge_fdd(builder: FDDBuilder, knowledge: Knowledge) -> FDD:
    """The predicate FDD of a :class:`Knowledge`, cached per builder.

    ``compile_policy`` re-derives the same knowledge predicates for every
    frontier state of every hop (and the runtime compiles every
    configuration against one shared builder), so the FDDs are memoized
    per builder keyed by the canonical ``(pos, neg)`` tuple.
    """
    cache = _knowledge_caches.get(builder)
    if cache is None:
        with _knowledge_caches_lock:
            cache = _knowledge_caches.get(builder)
            if cache is None:
                cache = {}
                _knowledge_caches[builder] = cache
    key = (knowledge.pos, knowledge.neg)
    d = cache.get(key)
    if d is None:
        d = builder.of_predicate(knowledge.predicate())
        cache[key] = d
    return d


def compile_policy(
    policy: Policy,
    topology: Topology,
    builder: Optional[FDDBuilder] = None,
    name: str = "",
    guard: Optional[Predicate] = None,
    max_frontier: int = 4096,
    knowledge_cache: bool = True,
) -> Configuration:
    """Compile a configuration policy to per-switch flow tables.

    ``guard`` is an extra predicate conjoined at the start of every path
    (the runtime uses it to guard rules by configuration tag, section 4).
    ``knowledge_cache=False`` recompiles every knowledge predicate from
    the AST (the pre-cache behavior, kept for differential tests).
    """
    builder = builder or FDDBuilder()
    per_switch_fdd: Dict[int, FDD] = {n: builder.drop for n in topology.switches}

    prepared = strip_dup(policy)
    if guard is not None:
        prepared = seq_policy(Filter(guard), prepared)

    for alt in alternations(prepared):
        frontier: List[Knowledge] = [Knowledge.empty()]
        for hop_index, segment in enumerate(alt.segments):
            is_final = hop_index == len(alt.links)
            # The hop body is knowledge-independent: compile it once and
            # sequence each frontier state's knowledge FDD in front of it.
            hop_fdd = builder.of_policy(segment)
            if not is_final:
                link_ = alt.links[hop_index]
                reach_link = builder.of_predicate(_at_location_interned(link_.src))
                hop_fdd = builder.seq(hop_fdd, reach_link)
            next_frontier: Set[Knowledge] = set()
            for knowledge in frontier:
                if knowledge_cache:
                    k_fdd = knowledge_fdd(builder, knowledge)
                else:
                    # Reference path: recompile the predicate from a fresh
                    # AST each time, bypassing the id-keyed memo so the
                    # throwaway tree is not pinned in the builder.
                    saved_ast_memo = builder.ast_memo
                    builder.ast_memo = False
                    try:
                        k_fdd = builder.of_predicate(knowledge.predicate())
                    finally:
                        builder.ast_memo = saved_ast_memo
                d = builder.seq(k_fdd, hop_fdd)
                if d is builder.drop:
                    continue
                switch_fdds, residual = _sw_decomposition(builder, d)
                for switch, fdd_n in switch_fdds.items():
                    if switch in per_switch_fdd:
                        per_switch_fdd[switch] = builder.union(
                            per_switch_fdd[switch], fdd_n
                        )
                if not (isinstance(residual, Leaf) and not residual.actions):
                    # Paths that never pin ``sw`` apply at every switch.
                    for switch in per_switch_fdd:
                        per_switch_fdd[switch] = builder.union(
                            per_switch_fdd[switch],
                            builder.cofactor(residual, SW, switch),
                        )
                if is_final:
                    continue
                for constraints, actions in builder.paths(d):
                    for mod in actions:
                        next_frontier.add(
                            Knowledge.after_hop(constraints, mod, link_.dst)
                        )
                if len(next_frontier) > max_frontier:
                    raise CompileError(
                        f"symbolic frontier exceeded {max_frontier} states; "
                        "the policy path structure is too large"
                    )
            if not is_final:
                frontier = sorted(next_frontier, key=lambda k: (k.pos, k.neg))
                if not frontier:
                    break  # no packet reaches the next hop on this branch

    tables = {
        switch: _prune_table(table_of_fdd(builder, fdd_n))
        for switch, fdd_n in per_switch_fdd.items()
    }
    return Configuration(tables, topology, name=name)
