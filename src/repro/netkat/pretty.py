"""Pretty-printer for NetKAT and Stateful NetKAT.

Produces the paper's concrete syntax (ASCII rendition), round-tripping
with :mod:`repro.netkat.parser`:

    pt=2 & ip_dst=4; pt<-1; (1:1)->(4:1)<state(0)<-1>; pt<-2

One precedence scale shared with the parser (loosest first)::

    union(0) < seq(1) < disj(2) < conj(3) < neg(4) < star(5) < atom(6)

Binary operators are left-associative: right operands print at one level
tighter, so ``p + (q + r)`` keeps its parentheses.
"""

from __future__ import annotations

from typing import Tuple

from .ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
)

__all__ = ["pretty_predicate", "pretty_policy"]

_UNION, _SEQ, _DISJ, _CONJ, _NEG, _STAR, _ATOM = range(7)


def pretty_policy(p: Policy, parent_level: int = _UNION) -> str:
    """Render a policy, parenthesizing where the parent binds tighter."""
    text, level = _policy_parts(p)
    if level < parent_level:
        return f"({text})"
    return text


def pretty_predicate(a: Predicate, parent_level: int = _UNION) -> str:
    """Render a predicate (same syntax and precedence scale)."""
    text, level = _predicate_parts(a)
    if level < parent_level:
        return f"({text})"
    return text


def _predicate_parts(a: Predicate) -> Tuple[str, int]:
    from ..stateful.ast import StateTest

    if isinstance(a, PTrue):
        return "true", _ATOM
    if isinstance(a, PFalse):
        return "false", _ATOM
    if isinstance(a, Test):
        return f"{a.field}={a.value}", _ATOM
    if isinstance(a, StateTest):
        return f"state({a.component})={a.value}", _ATOM
    if isinstance(a, Neg):
        return f"!{pretty_predicate(a.operand, _STAR)}", _NEG
    if isinstance(a, Conj):
        left = pretty_predicate(a.left, _CONJ)
        right = pretty_predicate(a.right, _CONJ + 1)
        return f"{left} & {right}", _CONJ
    if isinstance(a, Disj):
        left = pretty_predicate(a.left, _DISJ)
        right = pretty_predicate(a.right, _DISJ + 1)
        return f"{left} | {right}", _DISJ
    raise TypeError(f"not a predicate: {a!r}")


def _policy_parts(p: Policy) -> Tuple[str, int]:
    from ..stateful.ast import LinkUpdate

    if isinstance(p, Filter):
        if isinstance(p.predicate, PTrue):
            return "id", _ATOM
        if isinstance(p.predicate, PFalse):
            return "drop", _ATOM
        return _predicate_parts(p.predicate)
    if isinstance(p, Assign):
        return f"{p.field}<-{p.value}", _ATOM
    if isinstance(p, Dup):
        return "dup", _ATOM
    if isinstance(p, Link):
        return f"({p.src})->({p.dst})", _ATOM
    if isinstance(p, LinkUpdate):
        updates = ", ".join(f"state({m})<-{n}" for m, n in p.updates)
        return f"({p.src})->({p.dst})<{updates}>", _ATOM
    if isinstance(p, Union):
        left = pretty_policy(p.left, _UNION)
        right = pretty_policy(p.right, _UNION + 1)
        return f"{left} + {right}", _UNION
    if isinstance(p, Seq):
        left = pretty_policy(p.left, _SEQ)
        right = pretty_policy(p.right, _SEQ + 1)
        return f"{left}; {right}", _SEQ
    if isinstance(p, Star):
        # Chained stars are fine postfix: (p*)* prints as p** and parses
        # back by repeated application.
        inner = pretty_policy(p.operand, _STAR)
        return f"{inner}*", _STAR
    raise TypeError(f"not a policy: {p!r}")
