"""NetKAT abstract syntax.

Predicates (the Boolean/KAT "tests")::

    a, b ::= true | false | f = n | ¬a | a ∧ b | a ∨ b

Policies::

    p, q ::= a | f <- n | p + q | p ; q | p* | dup | (n:m) -> (n':m')

Links are sugar for ``sw=n ∧ pt=m ; dup ; sw<-n' ; pt<-m'`` but we keep
them as first-class constructors because the compiler and the Stateful
NetKAT event-extraction both treat links specially.

All nodes are immutable and hashable, so they can be memoized by the FDD
compiler.  Smart constructors perform cheap local simplifications
(identity/annihilator laws) to keep programmatically-built policies small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Tuple

from .packet import Location, PT, SW

__all__ = [
    "Predicate",
    "PTrue",
    "PFalse",
    "Test",
    "Neg",
    "Conj",
    "Disj",
    "Policy",
    "Filter",
    "Assign",
    "Union",
    "Seq",
    "Star",
    "Dup",
    "Link",
    "TRUE",
    "FALSE",
    "ID",
    "DROP",
    "test",
    "neg",
    "conj",
    "disj",
    "filter_",
    "assign",
    "union",
    "seq",
    "star",
    "link",
    "at_location",
    "policy_fields",
    "policy_links",
    "policy_size",
]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for NetKAT predicates."""

    # Operator sugar so programs read close to the paper's notation.
    def __and__(self, other: "Predicate") -> "Predicate":
        return conj(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return disj(self, other)

    def __invert__(self) -> "Predicate":
        return neg(self)


@dataclass(frozen=True)
class PTrue(Predicate):
    """The predicate ``true`` (policy identity)."""


    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True)
class PFalse(Predicate):
    """The predicate ``false`` (policy drop)."""


    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Test(Predicate):
    """The field test ``f = n``."""

    field: str
    value: int


    def __repr__(self) -> str:
        return f"{self.field}={self.value}"


@dataclass(frozen=True)
class Neg(Predicate):
    """Negation ``¬a``."""

    operand: Predicate


    def __repr__(self) -> str:
        return f"~({self.operand!r})"


@dataclass(frozen=True)
class Conj(Predicate):
    """Conjunction ``a ∧ b``."""

    left: Predicate
    right: Predicate


    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


@dataclass(frozen=True)
class Disj(Predicate):
    """Disjunction ``a ∨ b``."""

    left: Predicate
    right: Predicate


    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


TRUE = PTrue()
FALSE = PFalse()


def test(field_name: str, value: int) -> Predicate:
    """Build the test ``field = value``."""
    return Test(field_name, value)


def neg(a: Predicate) -> Predicate:
    """Build ``¬a`` with double-negation and constant elimination."""
    if isinstance(a, PTrue):
        return FALSE
    if isinstance(a, PFalse):
        return TRUE
    if isinstance(a, Neg):
        return a.operand
    return Neg(a)


def conj(*operands: Predicate) -> Predicate:
    """Build the conjunction of ``operands`` with unit/zero laws applied."""
    result: Predicate = TRUE
    for a in operands:
        if isinstance(a, PFalse) or isinstance(result, PFalse):
            return FALSE
        if isinstance(a, PTrue):
            continue
        if isinstance(result, PTrue):
            result = a
        else:
            result = Conj(result, a)
    return result


def disj(*operands: Predicate) -> Predicate:
    """Build the disjunction of ``operands`` with unit/zero laws applied."""
    result: Predicate = FALSE
    for a in operands:
        if isinstance(a, PTrue) or isinstance(result, PTrue):
            return TRUE
        if isinstance(a, PFalse):
            continue
        if isinstance(result, PFalse):
            result = a
        else:
            result = Disj(result, a)
    return result


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


class Policy:
    """Base class for NetKAT policies."""

    def __add__(self, other: "Policy") -> "Policy":
        return union(self, other)

    def __rshift__(self, other: "Policy") -> "Policy":
        """``p >> q`` is sequential composition ``p ; q``."""
        return seq(self, other)


@dataclass(frozen=True)
class Filter(Policy):
    """A predicate used as a policy (pass packets satisfying it)."""

    predicate: Predicate


    def __repr__(self) -> str:
        return f"filter({self.predicate!r})"


@dataclass(frozen=True)
class Assign(Policy):
    """The field assignment ``f <- n``."""

    field: str
    value: int


    def __repr__(self) -> str:
        return f"{self.field}<-{self.value}"


@dataclass(frozen=True)
class Union(Policy):
    """Parallel composition ``p + q``."""

    left: Policy
    right: Policy


    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


@dataclass(frozen=True)
class Seq(Policy):
    """Sequential composition ``p ; q``."""

    left: Policy
    right: Policy


    def __repr__(self) -> str:
        return f"({self.left!r} ; {self.right!r})"


@dataclass(frozen=True)
class Star(Policy):
    """Kleene iteration ``p*``."""

    operand: Policy


    def __repr__(self) -> str:
        return f"({self.operand!r})*"


@dataclass(frozen=True)
class Dup(Policy):
    """``dup`` -- record the current packet in the history."""


    def __repr__(self) -> str:
        return "dup"


@dataclass(frozen=True)
class Link(Policy):
    """A physical link ``(n1:m1) -> (n2:m2)``.

    Semantically: test the packet is at ``src``, then move it to ``dst``
    (recording a ``dup`` so histories reflect the hop).
    """

    src: Location
    dst: Location


    def __repr__(self) -> str:
        return f"({self.src})->({self.dst})"


ID: Policy = Filter(TRUE)
DROP: Policy = Filter(FALSE)


def filter_(predicate: Predicate) -> Policy:
    """Lift a predicate into a policy."""
    return Filter(predicate)


def assign(field_name: str, value: int) -> Policy:
    """Build the assignment ``field <- value``."""
    return Assign(field_name, value)


def union(*operands: Policy) -> Policy:
    """Build ``p1 + p2 + ...`` with drop elimination."""
    result: Policy = DROP
    for p in operands:
        if _is_drop(p):
            continue
        if _is_drop(result):
            result = p
        else:
            result = Union(result, p)
    return result


def seq(*operands: Policy) -> Policy:
    """Build ``p1 ; p2 ; ...`` with identity/drop elimination."""
    result: Policy = ID
    for p in operands:
        if _is_drop(result):
            return DROP
        if _is_drop(p):
            return DROP
        if _is_id(p):
            continue
        if _is_id(result):
            result = p
        else:
            result = Seq(result, p)
    return result


def star(p: Policy) -> Policy:
    """Build ``p*`` (with ``drop* = id`` and ``id* = id``)."""
    if _is_drop(p) or _is_id(p):
        return ID
    return Star(p)


def link(src: str | Location, dst: str | Location) -> Policy:
    """Build the link policy ``(src) -> (dst)``; accepts "n:m" strings."""
    src_loc = src if isinstance(src, Location) else Location.parse(src)
    dst_loc = dst if isinstance(dst, Location) else Location.parse(dst)
    return Link(src_loc, dst_loc)


def at_location(location: Location) -> Predicate:
    """The predicate ``sw=n ∧ pt=m`` for a location."""
    return conj(Test(SW, location.switch), Test(PT, location.port))


def _is_drop(p: Policy) -> bool:
    return isinstance(p, Filter) and isinstance(p.predicate, PFalse)


def _is_id(p: Policy) -> bool:
    return isinstance(p, Filter) and isinstance(p.predicate, PTrue)


# ---------------------------------------------------------------------------
# Structural queries
# ---------------------------------------------------------------------------


def predicate_fields(a: Predicate) -> FrozenSet[str]:
    """The set of field names tested by a predicate."""
    if isinstance(a, (PTrue, PFalse)):
        return frozenset()
    if isinstance(a, Test):
        return frozenset((a.field,))
    if isinstance(a, Neg):
        return predicate_fields(a.operand)
    if isinstance(a, (Conj, Disj)):
        return predicate_fields(a.left) | predicate_fields(a.right)
    raise TypeError(f"not a predicate: {a!r}")


def policy_fields(p: Policy) -> FrozenSet[str]:
    """All field names tested or assigned by a policy (including sw/pt)."""
    if isinstance(p, Filter):
        return predicate_fields(p.predicate)
    if isinstance(p, Assign):
        return frozenset((p.field,))
    if isinstance(p, (Union, Seq)):
        return policy_fields(p.left) | policy_fields(p.right)
    if isinstance(p, Star):
        return policy_fields(p.operand)
    if isinstance(p, Dup):
        return frozenset()
    if isinstance(p, Link):
        return frozenset((SW, PT))
    raise TypeError(f"not a policy: {p!r}")


def policy_links(p: Policy) -> Tuple[Link, ...]:
    """All link constructors appearing in a policy, in syntax order."""
    out = []

    def walk(q: Policy) -> None:
        if isinstance(q, Link):
            out.append(q)
        elif isinstance(q, (Union, Seq)):
            walk(q.left)
            walk(q.right)
        elif isinstance(q, Star):
            walk(q.operand)

    walk(p)
    return tuple(out)


def policy_size(p: Policy) -> int:
    """Number of AST nodes (predicates count as one node per connective)."""

    def pred_size(a: Predicate) -> int:
        if isinstance(a, (PTrue, PFalse, Test)):
            return 1
        if isinstance(a, Neg):
            return 1 + pred_size(a.operand)
        if isinstance(a, (Conj, Disj)):
            return 1 + pred_size(a.left) + pred_size(a.right)
        raise TypeError(f"not a predicate: {a!r}")

    if isinstance(p, Filter):
        return 1 + pred_size(p.predicate)
    if isinstance(p, (Assign, Dup, Link)):
        return 1
    if isinstance(p, (Union, Seq)):
        return 1 + policy_size(p.left) + policy_size(p.right)
    if isinstance(p, Star):
        return 1 + policy_size(p.operand)
    raise TypeError(f"not a policy: {p!r}")
