"""Prioritized match/action flow tables.

A :class:`FlowTable` is the compilation target: an ordered list of
:class:`Rule` objects.  A rule matches a packet when every field
constraint is satisfied; the highest-priority matching rule fires and its
action set determines the output packets (empty set = drop).

Matches are exact-value on numeric fields, with one extension used by the
section 5.3 optimization: a :class:`PrefixMatch` matches the high-order
bits of a field (the "wildcarded low-order bits" guard trick for
configuration IDs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from .fdd import ActionSet, FDD, FDDBuilder, Leaf, Mod
from .packet import Packet

__all__ = [
    "PrefixMatch",
    "Match",
    "Rule",
    "FlowTable",
    "TagFieldError",
    "table_of_fdd",
]


class TagFieldError(ValueError):
    """The configured tag field collides with a real match field (the
    section 4.1 construction needs a header field the program does not
    use)."""


@dataclass(frozen=True, order=True)
class PrefixMatch:
    """Match the top bits of a ``width``-bit field value.

    ``PrefixMatch(value=0b10, wildcard_bits=1, width=3)`` matches any
    3-bit value of the form ``10*`` i.e. {0b100, 0b101}.  ``value`` holds
    the prefix bits right-aligned (the wildcarded low bits removed).
    """

    value: int
    wildcard_bits: int
    width: int

    def __post_init__(self) -> None:
        if self.wildcard_bits < 0 or self.wildcard_bits > self.width:
            raise ValueError("wildcard_bits out of range")
        prefix_bits = self.width - self.wildcard_bits
        if self.value < 0 or (self.value >> prefix_bits) != 0:
            raise ValueError(
                f"prefix {self.value:#b} does not fit in {prefix_bits} bits"
            )

    def matches(self, value: int) -> bool:
        return (value >> self.wildcard_bits) == self.value

    def covered_values(self) -> Iterator[int]:
        base = self.value << self.wildcard_bits
        for low in range(1 << self.wildcard_bits):
            yield base | low

    def __str__(self) -> str:
        bits = format(self.value, f"0{self.width - self.wildcard_bits}b")
        return bits + "*" * self.wildcard_bits


Constraint = Union[int, PrefixMatch]


class Match:
    """A conjunction of per-field constraints (empty = match-all)."""

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Dict[str, Constraint] | Iterable[Tuple[str, Constraint]] = ()):
        items = dict(entries)
        object.__setattr__(self, "_entries", tuple(sorted(items.items(), key=lambda kv: kv[0])))
        object.__setattr__(self, "_hash", hash(self._entries))

    def __getstate__(self):
        # The cached hash is PYTHONHASHSEED-dependent; recompute it in
        # the loading process instead of pickling it.
        return self._entries

    def __setstate__(self, entries):
        object.__setattr__(self, "_entries", entries)
        object.__setattr__(self, "_hash", hash(entries))

    def matches(self, packet: Packet) -> bool:
        for field, constraint in self._entries:
            value = packet.get(field)
            if value is None:
                return False
            if isinstance(constraint, PrefixMatch):
                if not constraint.matches(value):
                    return False
            elif value != constraint:
                return False
        return True

    def entries(self) -> Tuple[Tuple[str, Constraint], ...]:
        return self._entries

    def fields(self) -> FrozenSet[str]:
        return frozenset(field for field, _ in self._entries)

    def get(self, field: str) -> Optional[Constraint]:
        for name, constraint in self._entries:
            if name == field:
                return constraint
        return None

    def extended(self, field: str, constraint: Constraint) -> "Match":
        updated = dict(self._entries)
        updated[field] = constraint
        return Match(updated)

    def guarded(self, field: str, constraint: Constraint) -> "Match":
        """Like :meth:`extended`, but for tag guards: ``field`` must be
        unused by this match (section 4.1 assumes an unused header
        field), because extending would silently *overwrite* the real
        constraint with the guard."""
        if self.get(field) is not None:
            raise TagFieldError(
                f"tag field {field!r} collides with a match field of "
                f"{self!r}; pick a field the program does not use "
                "(CompileOptions.tag_field)"
            )
        return self.extended(field, constraint)

    def without(self, field: str) -> "Match":
        return Match({f: c for f, c in self._entries if f != field})

    def specificity(self) -> int:
        """Number of constrained fields (used for priority assignment)."""
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self._entries:
            return "Match(*)"
        inner = ", ".join(f"{f}={c}" for f, c in self._entries)
        return f"Match({inner})"


@dataclass(frozen=True)
class Rule:
    """A prioritized flow-table rule.

    ``actions`` is a set of modifications; each modification yields one
    output packet (multicast), and the modified ``pt`` field names the
    egress port.  An empty action set drops the packet.
    """

    priority: int
    match: Match
    actions: ActionSet

    def applies_to(self, packet: Packet) -> bool:
        return self.match.matches(packet)

    def apply(self, packet: Packet) -> FrozenSet[Packet]:
        out = set()
        for mod in self.actions:
            result = packet
            for field, value in mod:
                result = result.set(field, value)
            out.add(result)
        return frozenset(out)

    def is_drop(self) -> bool:
        return not self.actions

    def __repr__(self) -> str:
        if self.actions:
            acts = " | ".join(
                ",".join(f"{f}<-{v}" for f, v in mod) or "id"
                for mod in sorted(self.actions)
            )
        else:
            acts = "drop"
        return f"[{self.priority}] {self.match!r} -> {acts}"


class FlowTable:
    """An ordered collection of rules with highest-priority-wins semantics."""

    def __init__(self, rules: Iterable[Rule] = ()):
        self._rules: List[Rule] = sorted(rules, key=lambda r: -r.priority)

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def lookup(self, packet: Packet) -> Optional[Rule]:
        """The highest-priority rule matching ``packet``, or None."""
        for rule in self._rules:
            if rule.applies_to(packet):
                return rule
        return None

    def apply(self, packet: Packet) -> FrozenSet[Packet]:
        """Process a packet: empty set when no rule matches (default drop)."""
        rule = self.lookup(packet)
        if rule is None:
            return frozenset()
        return rule.apply(packet)

    def merged_with(self, other: "FlowTable") -> "FlowTable":
        return FlowTable(tuple(self._rules) + tuple(other.rules))

    def __repr__(self) -> str:
        body = "\n".join(f"  {rule!r}" for rule in self._rules)
        return f"FlowTable(\n{body}\n)"


def table_of_fdd(builder: FDDBuilder, d: FDD, base_priority: int = 0) -> FlowTable:
    """Convert an FDD to an equivalent flow table.

    The FDD's hi-first path order becomes descending rule priority; the
    negative (lo-edge) constraints are then implied by shadowing, so each
    rule only carries the positive constraints of its path.
    """
    rules: List[Rule] = []
    entries = list(builder.paths(d))
    priority = base_priority + len(entries)
    for constraints, actions in entries:
        positive = {
            field: value for field, value, is_eq in constraints if is_eq
        }
        rules.append(Rule(priority, Match(positive), actions))
        priority -= 1
    return FlowTable(rules)
