"""Packets, locations, and located packets.

A packet is an immutable record of numeric fields (section 2 of the paper).
Two fields are special and always present:

- ``sw`` -- the switch the packet currently occupies, and
- ``pt`` -- the port at that switch.

The pair ``sw:pt`` is the packet's *location*.  The runtime additionally
attaches two metadata fields that are invisible to user policies: a
configuration tag and an event digest (section 4.1); those live on
:class:`repro.runtime.model.TaggedPacket`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Location",
    "Packet",
    "LocatedPacket",
    "History",
    "SW",
    "PT",
]

# Canonical names for the two location fields.
SW = "sw"
PT = "pt"


@dataclass(frozen=True, order=True, slots=True)
class Location:
    """A switch-port pair ``n:m``."""

    switch: int
    port: int

    def __str__(self) -> str:
        return f"{self.switch}:{self.port}"

    @staticmethod
    def parse(text: str) -> "Location":
        """Parse ``"n:m"`` into a :class:`Location`."""
        switch_text, _, port_text = text.partition(":")
        if not port_text:
            raise ValueError(f"malformed location {text!r}; expected 'sw:pt'")
        return Location(int(switch_text), int(port_text))


class Packet:
    """An immutable packet: a finite map from field names to numeric values.

    Packets compare and hash by value, so they can be stored in sets --
    the denotational semantics of NetKAT works with sets of packets.
    """

    __slots__ = ("_fields", "_hash", "_swpt")

    def __init__(self, fields: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        items = dict(fields)
        for name, value in items.items():
            if not isinstance(name, str):
                raise TypeError(f"field names must be strings, got {name!r}")
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(
                    f"field {name!r} must have an int value, got {value!r}"
                )
        object.__setattr__(self, "_fields", tuple(sorted(items.items())))
        object.__setattr__(self, "_hash", hash(self._fields))
        object.__setattr__(
            self, "_swpt", (items.get(SW), items.get(PT))
        )

    def __getstate__(self):
        # The cached hash is PYTHONHASHSEED-dependent; recompute it in
        # the loading process instead of pickling it.
        return self._fields

    def __setstate__(self, fields):
        object.__setattr__(self, "_fields", fields)
        object.__setattr__(self, "_hash", hash(fields))
        object.__setattr__(self, "_swpt", (dict(fields).get(SW), dict(fields).get(PT)))

    # -- mapping interface -------------------------------------------------

    def __getitem__(self, field: str) -> int:
        for name, value in self._fields:
            if name == field:
                return value
        raise KeyError(field)

    def get(self, field: str, default: Optional[int] = None) -> Optional[int]:
        for name, value in self._fields:
            if name == field:
                return value
        return default

    def __contains__(self, field: str) -> bool:
        return any(name == field for name, _ in self._fields)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._fields)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._fields)

    def fields(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._fields)

    # -- functional update --------------------------------------------------

    def set(self, field: str, value: int) -> "Packet":
        """Return a copy with ``field`` set to ``value`` (``pkt[f <- n]``)."""
        updated = dict(self._fields)
        updated[field] = value
        return Packet(updated)

    def without(self, field: str) -> "Packet":
        """Return a copy with ``field`` removed (used by `(exists f: phi)`)."""
        updated = {k: v for k, v in self._fields if k != field}
        return Packet(updated)

    # -- location helpers ---------------------------------------------------

    @property
    def switch(self) -> int:
        return self[SW]

    @property
    def port(self) -> int:
        return self[PT]

    @property
    def location(self) -> Location:
        return Location(self[SW], self[PT])

    def at(self, location: Location) -> "Packet":
        """Return a copy relocated to ``location`` (self when already there)."""
        sw, pt = self._swpt
        if sw == location.switch and pt == location.port:
            return self
        return self.set(SW, location.switch).set(PT, location.port)

    def is_at(self, switch: int, port: int) -> bool:
        """Location test without a field scan (the simulator hot path)."""
        swpt = self._swpt
        return swpt[0] == switch and swpt[1] == port

    # -- dunder boilerplate ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self._fields)
        return f"Packet({inner})"


@dataclass(frozen=True)
class LocatedPacket:
    """A packet together with its location, ``lp = (pkt, sw, pt)``.

    The paper treats the location as separate from the packet record; we
    keep the packet's ``sw``/``pt`` fields synchronized with ``location``
    so either view can be used.
    """

    packet: Packet
    location: Location

    @staticmethod
    def of(packet: Packet) -> "LocatedPacket":
        """Build a located packet from a packet carrying sw/pt fields."""
        return LocatedPacket(packet, packet.location)

    def normalized(self) -> "LocatedPacket":
        """Force the packet's sw/pt fields to agree with ``location``."""
        return LocatedPacket(self.packet.at(self.location), self.location)

    def __str__(self) -> str:
        return f"({self.packet!r} @ {self.location})"


class History:
    """A non-empty packet history: most recent packet first.

    Histories give semantics to ``dup``; ordinary forwarding only ever
    inspects or rewrites the head packet.
    """

    __slots__ = ("_packets",)

    def __init__(self, packets: Iterable[Packet]):
        self._packets = tuple(packets)
        if not self._packets:
            raise ValueError("a history must contain at least one packet")

    @staticmethod
    def of(packet: Packet) -> "History":
        return History((packet,))

    @property
    def head(self) -> Packet:
        return self._packets[0]

    @property
    def rest(self) -> Tuple[Packet, ...]:
        return self._packets[1:]

    def with_head(self, packet: Packet) -> "History":
        """Replace the head packet."""
        return History((packet,) + self._packets[1:])

    def dup(self) -> "History":
        """Record the current head in the history (semantics of ``dup``)."""
        return History((self.head,) + self._packets)

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._packets == other._packets

    def __hash__(self) -> int:
        return hash(self._packets)

    def __repr__(self) -> str:
        return f"History({list(self._packets)!r})"
