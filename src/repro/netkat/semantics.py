"""Denotational semantics of NetKAT.

A policy denotes a function from histories to sets of histories
(Anderson et al., POPL'14).  This evaluator is deliberately simple and
direct -- it is the ground truth against which the FDD compiler
(:mod:`repro.netkat.fdd`) is validated by the test suite.

For convenience we also expose a packet-level wrapper (:func:`eval_packet`)
that ignores histories, and a configuration view (:func:`step_relation`)
that presents a policy as the relation ``C`` on located packets used in
section 2 of the paper.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Set

from .ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
)
from .packet import History, LocatedPacket, Packet, PT, SW

__all__ = [
    "eval_predicate",
    "eval_policy",
    "eval_packet",
    "step_relation",
    "STAR_FUEL",
]

# Upper bound on Kleene-star fixpoint iterations.  Field domains in tests are
# tiny, so convergence is fast; the bound exists to turn accidental
# divergence (a bug) into a loud error instead of a hang.
STAR_FUEL = 1000


def eval_predicate(a: Predicate, packet: Packet) -> bool:
    """Does ``packet`` satisfy predicate ``a``?

    A test on a field the packet lacks is false (the packet does not
    satisfy ``f = n`` if it has no ``f``).
    """
    if isinstance(a, PTrue):
        return True
    if isinstance(a, PFalse):
        return False
    if isinstance(a, Test):
        return packet.get(a.field) == a.value
    if isinstance(a, Neg):
        return not eval_predicate(a.operand, packet)
    if isinstance(a, Conj):
        return eval_predicate(a.left, packet) and eval_predicate(a.right, packet)
    if isinstance(a, Disj):
        return eval_predicate(a.left, packet) or eval_predicate(a.right, packet)
    raise TypeError(f"not a predicate: {a!r}")


def eval_policy(p: Policy, history: History) -> FrozenSet[History]:
    """The denotation ``[[p]] : History -> P(History)``."""
    if isinstance(p, Filter):
        if eval_predicate(p.predicate, history.head):
            return frozenset((history,))
        return frozenset()
    if isinstance(p, Assign):
        return frozenset((history.with_head(history.head.set(p.field, p.value)),))
    if isinstance(p, Union):
        return eval_policy(p.left, history) | eval_policy(p.right, history)
    if isinstance(p, Seq):
        out: Set[History] = set()
        for mid in eval_policy(p.left, history):
            out |= eval_policy(p.right, mid)
        return frozenset(out)
    if isinstance(p, Star):
        return _eval_star(p, history)
    if isinstance(p, Dup):
        return frozenset((history.dup(),))
    if isinstance(p, Link):
        head = history.head
        if head.get(SW) == p.src.switch and head.get(PT) == p.src.port:
            moved = head.set(SW, p.dst.switch).set(PT, p.dst.port)
            return frozenset((history.dup().with_head(moved),))
        return frozenset()
    raise TypeError(f"not a policy: {p!r}")


def _eval_star(p: Star, history: History) -> FrozenSet[History]:
    """Least fixpoint: ``[[p*]] h = U_i [[p]]^i h``."""
    reached: Set[History] = {history}
    frontier: Set[History] = {history}
    for _ in range(STAR_FUEL):
        next_frontier: Set[History] = set()
        for h in frontier:
            for h2 in eval_policy(p.operand, h):
                if h2 not in reached:
                    reached.add(h2)
                    next_frontier.add(h2)
        if not next_frontier:
            return frozenset(reached)
        frontier = next_frontier
    raise RuntimeError(
        f"p* did not converge within {STAR_FUEL} iterations; "
        "is the iterated policy generating unboundedly many packets?"
    )


def eval_packet(p: Policy, packet: Packet) -> FrozenSet[Packet]:
    """Packet-level evaluation: run ``p`` and return the head packets."""
    return frozenset(h.head for h in eval_policy(p, History.of(packet)))


def step_relation(p: Policy) -> Callable[[LocatedPacket], FrozenSet[LocatedPacket]]:
    """View a policy as the configuration relation ``C`` on located packets.

    ``C(lp, lp')`` holds iff ``lp'`` is in the returned set for ``lp``.
    Output packets that are unchanged *and* unmoved are still reported;
    the caller decides whether self-loops are meaningful.
    """

    def apply(lp: LocatedPacket) -> FrozenSet[LocatedPacket]:
        packet = lp.packet.at(lp.location)
        return frozenset(
            LocatedPacket.of(out) for out in eval_packet(p, packet)
        )

    return apply


def reachable_packets(
    p: Policy, initial: Iterable[Packet], max_steps: int = 64
) -> FrozenSet[Packet]:
    """All packets reachable from ``initial`` by iterating policy ``p``.

    Used by tests to compute the packets a configuration can produce from
    host-injected traffic.
    """
    reached: Set[Packet] = set(initial)
    frontier = set(reached)
    for _ in range(max_steps):
        next_frontier: Set[Packet] = set()
        for pkt in frontier:
            for out in eval_packet(p, pkt):
                if out not in reached:
                    reached.add(out)
                    next_frontier.add(out)
        if not next_frontier:
            break
        frontier = next_frontier
    return frozenset(reached)
