"""A concrete-syntax parser for NetKAT and Stateful NetKAT.

Grammar (operator precedence, loosest first)::

    policy := policy '+' policy          (union)
            | policy ';' policy          (sequence)
            | policy '|' policy          (predicate disjunction)
            | policy '&' policy          (predicate conjunction)
            | policy '*'                 (Kleene star)
            | '!' policy                 (predicate negation)
            | atom

    atom   := 'id' | 'drop' | 'true' | 'false' | 'dup'
            | IDENT '=' NUM              (field test)
            | IDENT '<-' NUM             (field assignment)
            | 'state' '(' NUM ')' '=' NUM    (state test)
            | '(' NUM ':' NUM ')' '->' '(' NUM ':' NUM ')'
              [ '<' updates '>' ]        (link / state-updating link)
            | '(' policy ')'

    updates := 'state' '(' NUM ')' '<-' NUM (',' updates)?

As in NetKAT, ``&``/``|``/``!`` apply only to predicates; applying them
to a forwarding policy is a parse error.  Round-trips with
:mod:`repro.netkat.pretty`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..stateful.ast import LinkUpdate, StateTest
from .ast import (
    DROP,
    Dup,
    FALSE,
    Filter,
    ID,
    Link,
    Policy,
    Predicate,
    TRUE,
    conj,
    disj,
    neg,
    seq,
    star,
    union,
)
from .ast import Assign, Test
from .packet import Location

__all__ = ["ParseError", "parse_policy", "parse_predicate"]


class ParseError(Exception):
    """Syntax error, with position information."""

    def __init__(self, message: str, position: int, text: str):
        snippet = text[max(0, position - 20) : position + 20]
        super().__init__(f"{message} at offset {position}: ...{snippet!r}...")
        self.position = position


_TOKEN_SPEC = [
    ("WS", r"\s+"),
    ("COMMENT", r"#[^\n]*"),
    ("ARROW", r"->"),
    ("ASSIGN", r"<-"),
    ("NUM", r"\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("PLUS", r"\+"),
    ("SEMI", r";"),
    ("STAR", r"\*"),
    ("BANG", r"!"),
    ("AMP", r"&"),
    ("PIPE", r"\|"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("EQ", r"="),
    ("COLON", r":"),
    ("LT", r"<"),
    ("GT", r">"),
    ("COMMA", r","),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup
        assert kind is not None
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} ({token.text!r})",
                token.position,
                self.text,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.position, self.text)

    # -- precedence-climbing policy grammar ---------------------------------------

    def parse_policy(self) -> Policy:
        return self._parse_union()

    def _parse_union(self) -> Policy:
        parts = [self._parse_seq()]
        while self.peek().kind == "PLUS":
            self.advance()
            parts.append(self._parse_seq())
        return union(*parts) if len(parts) > 1 else parts[0]

    def _parse_seq(self) -> Policy:
        parts = [self._parse_disj()]
        while self.peek().kind == "SEMI":
            self.advance()
            parts.append(self._parse_disj())
        return seq(*parts) if len(parts) > 1 else parts[0]

    def _parse_disj(self) -> Policy:
        left = self._parse_conj()
        if self.peek().kind != "PIPE":
            return left
        operands = [self._as_predicate(left, "|")]
        while self.peek().kind == "PIPE":
            self.advance()
            operands.append(self._as_predicate(self._parse_conj(), "|"))
        return Filter(disj(*operands))

    def _parse_conj(self) -> Policy:
        left = self._parse_star()
        if self.peek().kind != "AMP":
            return left
        operands = [self._as_predicate(left, "&")]
        while self.peek().kind == "AMP":
            self.advance()
            operands.append(self._as_predicate(self._parse_star(), "&"))
        return Filter(conj(*operands))

    def _parse_star(self) -> Policy:
        inner = self._parse_atom()
        while self.peek().kind == "STAR":
            self.advance()
            inner = star(inner)
        return inner

    def _as_predicate(self, p: Policy, operator: str) -> Predicate:
        if isinstance(p, Filter):
            return p.predicate
        raise self.error(
            f"operator {operator!r} applies to predicates, but found a "
            f"forwarding policy {p!r}"
        )

    # -- atoms ------------------------------------------------------------------

    def _parse_atom(self) -> Policy:
        token = self.peek()
        if token.kind == "BANG":
            self.advance()
            operand = self._parse_star()
            return Filter(neg(self._as_predicate(operand, "!")))
        if token.kind == "IDENT":
            return self._parse_ident_atom()
        if token.kind == "LPAREN":
            return self._parse_paren_atom()
        raise self.error(f"expected an atom, found {token.kind}")

    def _parse_ident_atom(self) -> Policy:
        name = self.advance().text
        if name == "id" or name == "true":
            return ID if name == "id" else Filter(TRUE)
        if name == "drop" or name == "false":
            return DROP if name == "drop" else Filter(FALSE)
        if name == "dup":
            return Dup()
        if name == "state":
            self.expect("LPAREN")
            component = int(self.expect("NUM").text)
            self.expect("RPAREN")
            self.expect("EQ")
            value = int(self.expect("NUM").text)
            return Filter(StateTest(component, value))
        nxt = self.peek()
        if nxt.kind == "EQ":
            self.advance()
            value = int(self.expect("NUM").text)
            return Filter(Test(name, value))
        if nxt.kind == "ASSIGN":
            self.advance()
            value = int(self.expect("NUM").text)
            return Assign(name, value)
        raise self.error(f"expected '=' or '<-' after field {name!r}")

    def _parse_paren_atom(self) -> Policy:
        # Either a location "(n:m)" beginning a link, or a grouped policy.
        if self.peek(1).kind == "NUM" and self.peek(2).kind == "COLON":
            return self._parse_link()
        self.expect("LPAREN")
        inner = self.parse_policy()
        self.expect("RPAREN")
        return inner

    def _parse_location(self) -> Location:
        self.expect("LPAREN")
        switch = int(self.expect("NUM").text)
        self.expect("COLON")
        port = int(self.expect("NUM").text)
        self.expect("RPAREN")
        return Location(switch, port)

    def _parse_link(self) -> Policy:
        src = self._parse_location()
        self.expect("ARROW")
        dst = self._parse_location()
        if self.peek().kind != "LT":
            return Link(src, dst)
        self.advance()
        updates: List[Tuple[int, int]] = []
        while True:
            keyword = self.expect("IDENT")
            if keyword.text != "state":
                raise ParseError(
                    f"expected 'state' in link update, found {keyword.text!r}",
                    keyword.position,
                    self.text,
                )
            self.expect("LPAREN")
            component = int(self.expect("NUM").text)
            self.expect("RPAREN")
            self.expect("ASSIGN")
            value = int(self.expect("NUM").text)
            updates.append((component, value))
            if self.peek().kind == "COMMA":
                self.advance()
                continue
            break
        self.expect("GT")
        return LinkUpdate(src, dst, tuple(updates))


def parse_policy(text: str) -> Policy:
    """Parse a (Stateful) NetKAT policy from concrete syntax."""
    parser = _Parser(text)
    policy = parser.parse_policy()
    parser.expect("EOF")
    return policy


def parse_predicate(text: str) -> Predicate:
    """Parse a predicate (a policy that must denote a test)."""
    policy = parse_policy(text)
    if isinstance(policy, Filter):
        return policy.predicate
    raise ParseError(
        f"expected a predicate but parsed the forwarding policy {policy!r}",
        0,
        text,
    )
