"""NetKAT: syntax, semantics, and a flow-table compiler.

This subpackage is the static-language substrate of the reproduction: it
implements the NetKAT fragment the paper builds on (Anderson et al.,
POPL'14) with an FDD-based compiler in the style of "A Fast Compiler for
NetKAT" (Smolka et al., ICFP'15).
"""

from .ast import (
    Assign,
    Conj,
    Disj,
    DROP,
    Dup,
    FALSE,
    Filter,
    ID,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    TRUE,
    Union,
    assign,
    at_location,
    conj,
    disj,
    filter_,
    link,
    neg,
    policy_fields,
    policy_links,
    policy_size,
    seq,
    star,
    test,
    union,
)
from .compiler import (
    Alternation,
    CompileError,
    Configuration,
    alternations,
    compile_policy,
    link_free,
    strip_dup,
)
from .fdd import FDD, FDDBuilder, FieldOrder
from .flowtable import FlowTable, Match, PrefixMatch, Rule, table_of_fdd
from .packet import History, LocatedPacket, Location, Packet, PT, SW
from .parser import ParseError, parse_policy, parse_predicate
from .pretty import pretty_policy, pretty_predicate
from .semantics import eval_packet, eval_policy, eval_predicate, step_relation

__all__ = [
    # packets
    "Packet",
    "LocatedPacket",
    "Location",
    "History",
    "SW",
    "PT",
    # ast
    "Predicate",
    "Policy",
    "Test",
    "Neg",
    "Conj",
    "Disj",
    "PTrue",
    "PFalse",
    "Filter",
    "Assign",
    "Union",
    "Seq",
    "Star",
    "Dup",
    "Link",
    "TRUE",
    "FALSE",
    "ID",
    "DROP",
    "test",
    "neg",
    "conj",
    "disj",
    "filter_",
    "assign",
    "union",
    "seq",
    "star",
    "link",
    "at_location",
    "policy_fields",
    "policy_links",
    "policy_size",
    # semantics
    "eval_predicate",
    "eval_policy",
    "eval_packet",
    "step_relation",
    # fdd + tables
    "FDD",
    "FDDBuilder",
    "FieldOrder",
    "FlowTable",
    "Match",
    "PrefixMatch",
    "Rule",
    "table_of_fdd",
    # compiler
    "CompileError",
    "ParseError",
    "parse_policy",
    "parse_predicate",
    "pretty_policy",
    "pretty_predicate",
    "Configuration",
    "Alternation",
    "alternations",
    "compile_policy",
    "link_free",
    "strip_dup",
]
