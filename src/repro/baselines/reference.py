"""The static reference switch: one fixed configuration, no tags.

This models the unmodified OpenFlow 1.0 reference switch used as the
bandwidth baseline in Figure 16(a): packets carry no tag or digest
overhead and switches do no event bookkeeping.
"""

from __future__ import annotations

from typing import List, Tuple

from ..netkat.compiler import Configuration
from ..netkat.flowtable import FlowTable
from ..netkat.packet import Location, PT
from ..network.simulator import Frame, SimNetwork

__all__ = ["ReferenceLogic", "BASE_HEADER_BYTES"]

# Shared with the correct logic so overhead comparisons are fair.
BASE_HEADER_BYTES = 54


class ReferenceLogic:
    """Plain static forwarding with a fixed configuration."""

    def __init__(self, configuration: Configuration):
        self.configuration = configuration

    def header_bytes(self, frame: Frame) -> int:
        return BASE_HEADER_BYTES

    def on_ingress(self, net: SimNetwork, location: Location, frame: Frame) -> Frame:
        return frame.with_location(location)

    def process(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        table = self.configuration.table(location.switch)
        outputs = table.apply(frame.packet.at(location))
        return [
            (
                out_packet[PT],
                Frame(
                    packet=out_packet,
                    payload_bytes=frame.payload_bytes,
                    tag=None,
                    digest=frozenset(),
                    flow=frame.flow,
                    ident=frame.ident,
                    injected_at=frame.injected_at,
                ),
            )
            for out_packet in sorted(outputs, key=repr)
        ]
