"""The uncoordinated update baseline (section 5.1).

Events are reported to the controller, which transitions its own copy of
the ETS and -- after a configurable delay -- pushes the new
configuration's rules to the switches one at a time, in an unpredictable
(seeded) order.  Packets carry no tags; each switch forwards with
whatever table it currently has installed, so during the update window
different switches run different configurations and application
invariants break (dropped replies, over-flooding, cap overshoot, ...).

The paper simulates this strategy the same way and notes that delays of
several seconds are realistic for controller-driven updates ([17]
reports up to 10 s for a single switch update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..events.event import Event, EventSet
from ..netkat.flowtable import FlowTable
from ..netkat.packet import Location, PT
from ..runtime.compiler import CompiledNES
from ..stateful.ast import StateVector
from .reference import BASE_HEADER_BYTES
from ..network.simulator import Frame, SimNetwork

__all__ = ["UncoordinatedLogic"]


class UncoordinatedLogic:
    """Controller-driven updates with no consistency coordination."""

    def __init__(
        self,
        compiled: CompiledNES,
        update_delay: float = 2.0,
        push_gap: float = 0.02,
        event_notify_latency: float = 0.01,
    ):
        self.compiled = compiled
        self.update_delay = update_delay
        self.push_gap = push_gap
        self.event_notify_latency = event_notify_latency
        initial = compiled.nes.initial_state
        self.installed: Dict[int, FlowTable] = dict(
            compiled.config_for_state(initial).tables
        )
        # The controller's view: collected (renamed) events and resulting
        # ETS state, mirroring what the correct runtime tracks in-network.
        self.controller_events: Set[Event] = set()
        self.controller_state: StateVector = initial
        self.pushes_in_flight = 0
        self.update_completed_at: Optional[float] = None

    # -- SwitchLogic interface ---------------------------------------------------

    def header_bytes(self, frame: Frame) -> int:
        return BASE_HEADER_BYTES

    def on_ingress(self, net: SimNetwork, location: Location, frame: Frame) -> Frame:
        return Frame(
            packet=frame.packet.at(location),
            payload_bytes=frame.payload_bytes,
            tag=None,
            digest=frozenset(),
            flow=frame.flow,
            ident=frame.ident,
            injected_at=frame.injected_at,
        )

    def process(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        # Event detection: matching arrivals are punted to the controller
        # (the switch itself keeps no event state).
        for event in sorted(self.compiled.nes.events, key=repr):
            if event.base().matches_packet(frame.packet, location):
                self._notify_controller(net, event.base())
                break

        table = self.installed.get(location.switch, FlowTable())
        outputs = table.apply(frame.packet.at(location))
        results: List[Tuple[int, Frame]] = []
        for out_packet in sorted(outputs, key=repr):
            results.append(
                (
                    out_packet[PT],
                    Frame(
                        packet=out_packet,
                        payload_bytes=frame.payload_bytes,
                        tag=None,
                        digest=frozenset(),
                        flow=frame.flow,
                        ident=frame.ident,
                        injected_at=frame.injected_at,
                    ),
                )
            )
        return results

    # -- controller ------------------------------------------------------------------

    def _notify_controller(self, net: SimNetwork, base_event: Event) -> None:
        def receive() -> None:
            occurrence = sum(
                1 for e in self.controller_events if e.base() == base_event
            )
            renamed = base_event.renamed(occurrence)
            extended = frozenset(self.controller_events) | {renamed}
            try:
                new_state = self.compiled.nes.state_of(extended)
            except KeyError:
                return  # not an enabled transition; ignore the report
            if not self.compiled.nes.enables(
                frozenset(self.controller_events), renamed
            ):
                return
            self.controller_events.add(renamed)
            self.controller_state = new_state
            self._schedule_pushes(net, new_state)

        net.sim.schedule(self.event_notify_latency, receive)

    def _schedule_pushes(self, net: SimNetwork, state: StateVector) -> None:
        """After the delay, install the new tables switch by switch in a
        random order (the "unpredictable order" of section 5.1)."""
        config = self.compiled.config_for_state(state)
        switches = sorted(config.tables)
        net.sim.random.shuffle(switches)
        for i, switch_id in enumerate(switches):
            table = config.table(switch_id)
            self.pushes_in_flight += 1

            def install(sw: int = switch_id, tbl: FlowTable = table) -> None:
                self.installed[sw] = tbl
                self.pushes_in_flight -= 1
                if self.pushes_in_flight == 0:
                    self.update_completed_at = net.sim.now

            net.sim.schedule(self.update_delay + i * self.push_gap, install)
