"""Baseline strategies: uncoordinated updates, two-phase per-packet
consistent updates (Reitblatt et al.), and the static reference."""

from .reference import BASE_HEADER_BYTES, ReferenceLogic
from .two_phase import VERSION_FIELD, TwoPhaseLogic
from .uncoordinated import UncoordinatedLogic

__all__ = [
    "ReferenceLogic",
    "UncoordinatedLogic",
    "TwoPhaseLogic",
    "VERSION_FIELD",
    "BASE_HEADER_BYTES",
]
