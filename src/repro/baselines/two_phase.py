"""Two-phase per-packet consistent updates (Reitblatt et al. [33]).

The classic *consistent update*: every packet is processed entirely by
one configuration (version).  Packets are stamped with a version number
at ingress; both versions' rules are installed (guarded by version);
the controller flips the ingress stamping to the new version once the
internal rules are ready.

This baseline is deliberately *stronger* than the uncoordinated one --
no packet ever sees a mixed configuration -- and still fails the
paper's applications: per-packet consistency says nothing about *when*
the flip happens relative to the triggering event, so the stateful
firewall drops replies that arrive between the event and the (round
trip delayed) version flip.  That gap is exactly what event-driven
consistent updates close (sections 1-2 of the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..events.event import Event
from ..netkat.packet import Location, PT
from ..runtime.compiler import CompiledNES
from ..network.simulator import Frame, SimNetwork
from ..stateful.ast import StateVector
from .reference import BASE_HEADER_BYTES

__all__ = ["TwoPhaseLogic", "VERSION_FIELD"]

# The version stamp travels in a dedicated header field (one VLAN-style
# tag, exactly as in the consistent-updates paper).
VERSION_FIELD = "version"


class TwoPhaseLogic:
    """Versioned forwarding with controller-driven version flips.

    All configurations are pre-installed (version-guarded); an event
    notification makes the controller advance its ETS copy and -- after
    ``flip_delay`` -- flip every ingress switch's stamping version, one
    switch at a time.
    """

    def __init__(
        self,
        compiled: CompiledNES,
        flip_delay: float = 0.5,
        flip_gap: float = 0.01,
        event_notify_latency: float = 0.01,
    ):
        self.compiled = compiled
        self.flip_delay = flip_delay
        self.flip_gap = flip_gap
        self.event_notify_latency = event_notify_latency
        initial = compiled.nes.initial_state
        self.initial_version = compiled.config_ids[initial]
        # Per-switch ingress stamping version (phase-one state).
        self.stamp_version: Dict[int, int] = {
            switch: self.initial_version for switch in compiled.topology.switches
        }
        self.controller_events: Set[Event] = set()
        self.controller_state: StateVector = initial
        self.flips_completed_at: Optional[float] = None

    # -- SwitchLogic interface ---------------------------------------------------

    def header_bytes(self, frame: Frame) -> int:
        return BASE_HEADER_BYTES + 1  # the version tag

    def on_ingress(self, net: SimNetwork, location: Location, frame: Frame) -> Frame:
        version = self.stamp_version[location.switch]
        return Frame(
            packet=frame.packet.at(location).set(VERSION_FIELD, version),
            payload_bytes=frame.payload_bytes,
            tag=None,
            digest=frozenset(),
            flow=frame.flow,
            ident=frame.ident,
            injected_at=frame.injected_at,
        )

    def process(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        # Event detection is punted to the controller, as in the
        # uncoordinated baseline (versioning adds consistency, not
        # event-locality).
        for event in sorted(self.compiled.nes.events, key=repr):
            if event.base().matches_packet(frame.packet, location):
                self._notify_controller(net, event.base())
                break

        version = frame.packet.get(VERSION_FIELD, self.initial_version)
        state = self._state_of_version(version)
        config = self.compiled.config_for_state(state)
        # The version field is metadata: forwarding rules never test it,
        # so strip it for the lookup and restore it on outputs.
        lookup_packet = frame.packet.without(VERSION_FIELD).at(location)
        outputs = config.table(location.switch).apply(lookup_packet)
        results: List[Tuple[int, Frame]] = []
        for out_packet in sorted(outputs, key=repr):
            results.append(
                (
                    out_packet[PT],
                    Frame(
                        packet=out_packet.set(VERSION_FIELD, version),
                        payload_bytes=frame.payload_bytes,
                        tag=None,
                        digest=frozenset(),
                        flow=frame.flow,
                        ident=frame.ident,
                        injected_at=frame.injected_at,
                    ),
                )
            )
        return results

    def _state_of_version(self, version: int) -> StateVector:
        for state, config_id in self.compiled.config_ids.items():
            if config_id == version:
                return state
        return self.compiled.nes.initial_state

    # -- controller --------------------------------------------------------------

    def _notify_controller(self, net: SimNetwork, base_event: Event) -> None:
        def receive() -> None:
            occurrence = sum(
                1 for e in self.controller_events if e.base() == base_event
            )
            renamed = base_event.renamed(occurrence)
            extended = frozenset(self.controller_events) | {renamed}
            try:
                new_state = self.compiled.nes.state_of(extended)
            except KeyError:
                return
            if not self.compiled.nes.enables(
                frozenset(self.controller_events), renamed
            ):
                return
            self.controller_events.add(renamed)
            self.controller_state = new_state
            self._schedule_flips(net, new_state)

        net.sim.schedule(self.event_notify_latency, receive)

    def _schedule_flips(self, net: SimNetwork, state: StateVector) -> None:
        """Phase two: flip ingress stamping to the new version."""
        version = self.compiled.config_ids[state]
        switches = sorted(self.compiled.topology.switches)
        net.sim.random.shuffle(switches)
        remaining = len(switches)

        for i, switch_id in enumerate(switches):

            def flip(sw: int = switch_id) -> None:
                nonlocal remaining
                # A later update may have superseded this one; only move
                # the version forward.
                if self.stamp_version[sw] < version:
                    self.stamp_version[sw] = version
                remaining -= 1
                if remaining == 0:
                    self.flips_completed_at = net.sim.now

            net.sim.schedule(self.flip_delay + i * self.flip_gap, flip)
