"""repro: a from-scratch reproduction of "Event-Driven Network
Programming" (McClurg, Hojjat, Foster, Cerny; PLDI 2016).

Layers, bottom to top:

- :mod:`repro.netkat` -- NetKAT (syntax, semantics, FDD compiler, tables)
- :mod:`repro.topology` -- switches, ports, links, hosts
- :mod:`repro.stateful` -- Stateful NetKAT, projection, event extraction
- :mod:`repro.events` -- event structures, NESs, ETS->NES, locality
- :mod:`repro.consistency` -- network traces, happens-before, the
  event-driven consistent update checkers (Definitions 2 and 6)
- :mod:`repro.runtime` -- the tag/digest implementation (Figure 7)
- :mod:`repro.network` -- the discrete-event simulator and traffic
- :mod:`repro.baselines` -- uncoordinated updates, static reference
- :mod:`repro.optimize` -- the rule-sharing trie heuristic (section 5.3)
- :mod:`repro.apps` -- the five case studies and the ring workload
- :mod:`repro.pipeline` -- the staged compilation façade over all of it
- :mod:`repro.faults` -- deterministic seeded fault injection for
  chaos-testing the pipeline, cache, and executor failure seams

Quickstart -- compile through the staged pipeline, then run it::

    import repro
    from repro.apps import firewall_app
    from repro.consistency import check_trace_against_nes

    app = firewall_app()
    compiled = repro.compile_app(app)        # ETS -> NES -> flow tables
    print(app.pipeline.report())             # per-stage timings + stats

    rt = app.runtime(seed=0)
    rt.inject("H1", {"ip_dst": 4, "ip_src": 1})
    rt.run_until_quiescent()
    report = check_trace_against_nes(rt.network_trace(), app.nes, app.topology)
    assert report.correct

Every compiler knob lives on :class:`repro.CompileOptions`; a
:class:`repro.Pipeline` built with ``CompileOptions(backend="thread")``
shards the per-configuration compiles, and one built with
``CompileOptions(cache_dir=...)`` persists compiled artifacts so a
repeated construction skips the toolchain entirely::

    opts = repro.CompileOptions(backend="thread", cache_dir=".repro-cache")
    pipeline = repro.Pipeline(app.program, app.topology, app.initial_state, opts)
    tables = pipeline.compiled.guarded_tables()
"""

# Defined before the submodule imports: repro.service reads it at import
# time (its HTTP Server header and /version body carry it).
__version__ = "0.1.0"

from . import apps, baselines, consistency, events, faults, netkat, network, optimize, pipeline, runtime, service, stateful, verify
from .formula import EQ, Formula, Literal, NE
from .pipeline import (
    ArtifactIntegrityError,
    CompileOptions,
    Delta,
    Pipeline,
    PipelineError,
    StageError,
    compile_app,
)
from .sim_options import SimOptions
from .topology import Host, Topology

__all__ = [
    "netkat",
    "stateful",
    "events",
    "consistency",
    "runtime",
    "network",
    "baselines",
    "optimize",
    "apps",
    "verify",
    "pipeline",
    "faults",
    "service",
    "Pipeline",
    "CompileOptions",
    "SimOptions",
    "Delta",
    "compile_app",
    "PipelineError",
    "StageError",
    "ArtifactIntegrityError",
    "Topology",
    "Host",
    "Formula",
    "Literal",
    "EQ",
    "NE",
    "__version__",
]
