"""Event-edge extraction ``⟬p⟭~k`` (Figure 6).

Walking the program for a fixed state vector ``~k``, this collects the
conjunction ``phi`` of header-field tests seen along each control path
and records an *event edge* ``(~k, (phi, s2, p2), ~k[m -> n])`` at every
state-updating link.  The result is the pair ``(D, P)``: the set of
event edges, and the set of updated path formulas.

Faithful to the figure:

- ``sw``/``pt`` tests (and assignments) do not refine ``phi`` -- the
  event's location comes from the link destination, not the formula;
- a field assignment ``f <- n`` replaces knowledge about ``f``
  (``(exists f: phi) AND f=n``);
- state tests are resolved against ``~k``;
- negation is pushed to literals (``L not (v = n)M = L v != nM``);
- ``a AND b`` extracts like ``a ; b`` and ``a OR b`` like ``a + b``;
- ``p*`` is the join of the iterates ``F_p^j``, computed to fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from ..events.event import Event
from ..netkat.ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
)
from ..netkat.packet import PT, SW
from .ast import LinkUpdate, StateTest, StateVector, vector_update
from ..formula import EQ, Formula, Literal, NE

__all__ = ["EventEdge", "ExtractResult", "extract", "STAR_EXTRACT_FUEL"]

STAR_EXTRACT_FUEL = 100


@dataclass(frozen=True)
class EventEdge:
    """An ETS edge: state ``src`` transitions to ``dst`` on ``event``."""

    src: StateVector
    event: Event
    dst: StateVector

    def __repr__(self) -> str:
        return f"{list(self.src)} --{self.event!r}--> {list(self.dst)}"


@dataclass(frozen=True)
class ExtractResult:
    """The pair ``(D, P)`` of Figure 6."""

    edges: FrozenSet[EventEdge]
    formulas: FrozenSet[Formula]

    @staticmethod
    def of(phi: Optional[Formula]) -> "ExtractResult":
        if phi is None:
            return ExtractResult(frozenset(), frozenset())
        return ExtractResult(frozenset(), frozenset((phi,)))

    def join(self, other: "ExtractResult") -> "ExtractResult":
        """Pointwise union (the figure's ⊔)."""
        if not self.edges and not self.formulas:
            return other
        if not other.edges and not other.formulas:
            return self
        return ExtractResult(
            self.edges | other.edges, self.formulas | other.formulas
        )


_EMPTY = ExtractResult(frozenset(), frozenset())


def extract(
    p: Policy,
    state: StateVector,
    phi: Optional[Formula] = None,
    _memo: Optional[dict] = None,
) -> ExtractResult:
    """Compute ``⟬p⟭~k phi``.

    Results are memoized per top-level call on ``(id(subterm), phi)`` --
    the state is fixed for the whole walk, and the star fixpoint
    re-extracts its body for formulas already seen in earlier iterates.
    Keying on object identity is safe here because every subterm stays
    reachable from ``p`` for the memo's lifetime.
    """
    if phi is None:
        phi = Formula.true()
    if _memo is None:
        _memo = {}
    key = (id(p), phi)
    result = _memo.get(key)
    if result is not None:
        return result
    # Dispatch ordered by observed frequency on the seed apps.
    if isinstance(p, Seq):
        result = _kleisli(p.left, p.right, state, phi, _memo)
    elif isinstance(p, Filter):
        result = _extract_predicate(p.predicate, state, phi, positive=True)
    elif isinstance(p, Union):
        result = extract(p.left, state, phi, _memo).join(
            extract(p.right, state, phi, _memo)
        )
    elif isinstance(p, Assign):
        if p.field in (SW, PT):
            result = ExtractResult.of(phi)
        else:
            updated = phi.without_field(p.field).conjoin(
                Literal(p.field, EQ, p.value)
            )
            result = ExtractResult.of(updated)
    elif isinstance(p, LinkUpdate):
        event = Event(phi, p.dst)
        edge = EventEdge(state, event, vector_update(state, p.updates))
        result = ExtractResult(frozenset((edge,)), frozenset((phi,)))
    elif isinstance(p, Link):
        result = ExtractResult.of(phi)
    elif isinstance(p, Star):
        result = _extract_star(p.operand, state, phi, _memo)
    elif isinstance(p, Dup):
        result = ExtractResult.of(phi)
    else:
        raise TypeError(f"not a stateful policy: {p!r}")
    _memo[key] = result
    return result


def _kleisli(
    left: Policy, right: Policy, state: StateVector, phi: Formula, memo: dict
) -> ExtractResult:
    """``(⟬left⟭ ‚ ⟬right⟭) phi`` -- thread each left formula through right."""
    first = extract(left, state, phi, memo)
    if not first.formulas:
        # Nothing to thread (e.g. a state guard resolved false).
        return first
    if len(first.formulas) == 1:
        (psi,) = first.formulas
        threaded = extract(right, state, psi, memo)
        if not first.edges:
            return threaded
        return ExtractResult(first.edges | threaded.edges, threaded.formulas)
    edges = set(first.edges)
    formulas: Set[Formula] = set()
    for psi in first.formulas:
        threaded = extract(right, state, psi, memo)
        edges.update(threaded.edges)
        formulas.update(threaded.formulas)
    return ExtractResult(frozenset(edges), frozenset(formulas))


def _extract_star(
    body: Policy, state: StateVector, phi: Formula, memo: dict
) -> ExtractResult:
    """``⟬p*⟭ phi = ⊔_j F_p^j(phi, ~k)`` iterated to fixpoint."""
    # F^0 = ({}, {phi}); F^(j+1) = ⟬p⟭ ‚ F^j.
    total = ExtractResult.of(phi)
    frontier_formulas: FrozenSet[Formula] = frozenset((phi,))
    for _ in range(STAR_EXTRACT_FUEL):
        step_edges: Set[EventEdge] = set()
        step_formulas: Set[Formula] = set()
        for psi in frontier_formulas:
            unfolded = extract(body, state, psi, memo)
            step_edges.update(unfolded.edges)
            step_formulas.update(unfolded.formulas)
        step = ExtractResult(frozenset(step_edges), frozenset(step_formulas))
        new_total = total.join(step)
        new_frontier = step.formulas - total.formulas
        if new_total == total and not new_frontier:
            return total
        total = new_total
        frontier_formulas = step.formulas
        if not frontier_formulas:
            return total
    raise RuntimeError(
        f"event extraction for p* did not converge in {STAR_EXTRACT_FUEL} steps"
    )


def _extract_predicate(
    a: Predicate, state: StateVector, phi: Formula, positive: bool
) -> ExtractResult:
    """Extract from a test, with negation pushed down to literals."""
    if isinstance(a, PTrue):
        return ExtractResult.of(phi) if positive else _EMPTY
    if isinstance(a, PFalse):
        return _EMPTY if positive else ExtractResult.of(phi)
    if isinstance(a, Test):
        if a.field in (SW, PT):
            # Location tests never refine the event guard (Figure 6).
            return ExtractResult.of(phi)
        op = EQ if positive else NE
        return ExtractResult.of(phi.conjoin(Literal(a.field, op, a.value)))
    if isinstance(a, StateTest):
        holds = state[a.component] == a.value
        if not positive:
            holds = not holds
        return ExtractResult.of(phi) if holds else _EMPTY
    if isinstance(a, Neg):
        return _extract_predicate(a.operand, state, phi, not positive)
    if isinstance(a, Conj):
        if positive:
            return _pred_seq(a.left, a.right, state, phi, True, True)
        # not (a and b) = (not a) or (not b)
        return _extract_predicate(a.left, state, phi, False).join(
            _extract_predicate(a.right, state, phi, False)
        )
    if isinstance(a, Disj):
        if positive:
            return _extract_predicate(a.left, state, phi, True).join(
                _extract_predicate(a.right, state, phi, True)
            )
        # not (a or b) = (not a) and (not b)
        return _pred_seq(a.left, a.right, state, phi, False, False)
    raise TypeError(f"not a predicate: {a!r}")


def _pred_seq(
    left: Predicate,
    right: Predicate,
    state: StateVector,
    phi: Formula,
    left_positive: bool,
    right_positive: bool,
) -> ExtractResult:
    """Conjunction as sequencing: thread left's formulas through right."""
    first = _extract_predicate(left, state, phi, left_positive)
    edges = set(first.edges)
    formulas: Set[Formula] = set()
    for psi in first.formulas:
        threaded = _extract_predicate(right, state, psi, right_positive)
        edges.update(threaded.edges)
        formulas.update(threaded.formulas)
    return ExtractResult(frozenset(edges), frozenset(formulas))
