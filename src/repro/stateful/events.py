"""Event-edge extraction ``⟬p⟭~k`` (Figure 6).

Walking the program for a fixed state vector ``~k``, this collects the
conjunction ``phi`` of header-field tests seen along each control path
and records an *event edge* ``(~k, (phi, s2, p2), ~k[m -> n])`` at every
state-updating link.  The result is the pair ``(D, P)``: the set of
event edges, and the set of updated path formulas.

Faithful to the figure:

- ``sw``/``pt`` tests (and assignments) do not refine ``phi`` -- the
  event's location comes from the link destination, not the formula;
- a field assignment ``f <- n`` replaces knowledge about ``f``
  (``(exists f: phi) AND f=n``);
- state tests are resolved against ``~k``;
- negation is pushed to literals (``L not (v = n)M = L v != nM``);
- ``a AND b`` extracts like ``a ; b`` and ``a OR b`` like ``a + b``;
- ``p*`` is the join of the iterates ``F_p^j``, computed to fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from ..events.event import Event
from ..netkat.ast import (
    Assign,
    Conj,
    Disj,
    Dup,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    Test,
    Union,
)
from ..netkat.packet import PT, SW
from .ast import LinkUpdate, StateTest, StateVector, vector_update
from ..formula import EQ, Formula, Literal, NE

__all__ = ["EventEdge", "ExtractResult", "extract", "STAR_EXTRACT_FUEL"]

STAR_EXTRACT_FUEL = 100


@dataclass(frozen=True)
class EventEdge:
    """An ETS edge: state ``src`` transitions to ``dst`` on ``event``."""

    src: StateVector
    event: Event
    dst: StateVector

    def __repr__(self) -> str:
        return f"{list(self.src)} --{self.event!r}--> {list(self.dst)}"


@dataclass(frozen=True)
class ExtractResult:
    """The pair ``(D, P)`` of Figure 6."""

    edges: FrozenSet[EventEdge]
    formulas: FrozenSet[Formula]

    @staticmethod
    def of(phi: Optional[Formula]) -> "ExtractResult":
        if phi is None:
            return ExtractResult(frozenset(), frozenset())
        return ExtractResult(frozenset(), frozenset((phi,)))

    def join(self, other: "ExtractResult") -> "ExtractResult":
        """Pointwise union (the figure's ⊔)."""
        return ExtractResult(
            self.edges | other.edges, self.formulas | other.formulas
        )


_EMPTY = ExtractResult(frozenset(), frozenset())


def extract(p: Policy, state: StateVector, phi: Optional[Formula] = None) -> ExtractResult:
    """Compute ``⟬p⟭~k phi``."""
    if phi is None:
        phi = Formula.true()
    if isinstance(p, Filter):
        return _extract_predicate(p.predicate, state, phi, positive=True)
    if isinstance(p, Assign):
        if p.field in (SW, PT):
            return ExtractResult.of(phi)
        updated = phi.without_field(p.field).conjoin(Literal(p.field, EQ, p.value))
        return ExtractResult.of(updated)
    if isinstance(p, Union):
        return extract(p.left, state, phi).join(extract(p.right, state, phi))
    if isinstance(p, Seq):
        return _kleisli(p.left, p.right, state, phi)
    if isinstance(p, Star):
        return _extract_star(p.operand, state, phi)
    if isinstance(p, Dup):
        return ExtractResult.of(phi)
    if isinstance(p, LinkUpdate):
        event = Event(phi, p.dst)
        edge = EventEdge(state, event, vector_update(state, p.updates))
        return ExtractResult(frozenset((edge,)), frozenset((phi,)))
    if isinstance(p, Link):
        return ExtractResult.of(phi)
    raise TypeError(f"not a stateful policy: {p!r}")


def _kleisli(left: Policy, right: Policy, state: StateVector, phi: Formula) -> ExtractResult:
    """``(⟬left⟭ ‚ ⟬right⟭) phi`` -- thread each left formula through right."""
    first = extract(left, state, phi)
    result = ExtractResult(first.edges, frozenset())
    for psi in first.formulas:
        result = result.join(extract(right, state, psi))
    return result


def _extract_star(body: Policy, state: StateVector, phi: Formula) -> ExtractResult:
    """``⟬p*⟭ phi = ⊔_j F_p^j(phi, ~k)`` iterated to fixpoint."""
    # F^0 = ({}, {phi}); F^(j+1) = ⟬p⟭ ‚ F^j.
    total = ExtractResult.of(phi)
    frontier_formulas: FrozenSet[Formula] = frozenset((phi,))
    for _ in range(STAR_EXTRACT_FUEL):
        step = _EMPTY
        for psi in frontier_formulas:
            step = step.join(extract(body, state, psi))
        new_total = total.join(step)
        new_frontier = step.formulas - total.formulas
        if new_total == total and not new_frontier:
            return total
        total = new_total
        frontier_formulas = step.formulas
        if not frontier_formulas:
            return total
    raise RuntimeError(
        f"event extraction for p* did not converge in {STAR_EXTRACT_FUEL} steps"
    )


def _extract_predicate(
    a: Predicate, state: StateVector, phi: Formula, positive: bool
) -> ExtractResult:
    """Extract from a test, with negation pushed down to literals."""
    if isinstance(a, PTrue):
        return ExtractResult.of(phi) if positive else _EMPTY
    if isinstance(a, PFalse):
        return _EMPTY if positive else ExtractResult.of(phi)
    if isinstance(a, Test):
        if a.field in (SW, PT):
            # Location tests never refine the event guard (Figure 6).
            return ExtractResult.of(phi)
        op = EQ if positive else NE
        return ExtractResult.of(phi.conjoin(Literal(a.field, op, a.value)))
    if isinstance(a, StateTest):
        holds = state[a.component] == a.value
        if not positive:
            holds = not holds
        return ExtractResult.of(phi) if holds else _EMPTY
    if isinstance(a, Neg):
        return _extract_predicate(a.operand, state, phi, not positive)
    if isinstance(a, Conj):
        if positive:
            return _pred_seq(a.left, a.right, state, phi, True, True)
        # not (a and b) = (not a) or (not b)
        return _extract_predicate(a.left, state, phi, False).join(
            _extract_predicate(a.right, state, phi, False)
        )
    if isinstance(a, Disj):
        if positive:
            return _extract_predicate(a.left, state, phi, True).join(
                _extract_predicate(a.right, state, phi, True)
            )
        # not (a or b) = (not a) and (not b)
        return _pred_seq(a.left, a.right, state, phi, False, False)
    raise TypeError(f"not a predicate: {a!r}")


def _pred_seq(
    left: Predicate,
    right: Predicate,
    state: StateVector,
    phi: Formula,
    left_positive: bool,
    right_positive: bool,
) -> ExtractResult:
    """Conjunction as sequencing: thread left's formulas through right."""
    first = _extract_predicate(left, state, phi, left_positive)
    result = ExtractResult(first.edges, frozenset())
    for psi in first.formulas:
        result = result.join(_extract_predicate(right, state, psi, right_positive))
    return result
