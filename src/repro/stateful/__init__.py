"""Stateful NetKAT: the paper's programming language (section 3.2).

Programs mix plain NetKAT with tests and link-triggered updates of a
global state vector.  Projection recovers the per-state configurations;
event extraction recovers the ETS edges.
"""

from .ast import (
    LinkUpdate,
    StateTest,
    StateVector,
    link_update,
    state_eq,
    state_test,
    uses_state,
    vector_update,
)
from .ets import ETS, build_ets
from .events import EventEdge, ExtractResult, extract
from .formula import EQ, Formula, Literal, NE
from .projection import project, project_predicate
from .symbolic import (
    GuardedEdge,
    StateGuard,
    StateLiteral,
    SymbolicExtract,
    SymbolicProgram,
    symbolic_extract,
    symbolic_project,
)

__all__ = [
    "StateVector",
    "StateTest",
    "LinkUpdate",
    "state_test",
    "state_eq",
    "link_update",
    "vector_update",
    "uses_state",
    "Formula",
    "Literal",
    "EQ",
    "NE",
    "extract",
    "ExtractResult",
    "EventEdge",
    "ETS",
    "build_ets",
    "project",
    "project_predicate",
    "StateGuard",
    "StateLiteral",
    "GuardedEdge",
    "SymbolicExtract",
    "SymbolicProgram",
    "symbolic_extract",
    "symbolic_project",
]
