"""Re-export of :mod:`repro.formula` under its historical location.

The formula machinery is shared by the stateful language (event
extraction) and the events package (guards on events), so it lives at
the package root; this alias keeps ``repro.stateful.formula`` imports
working.
"""

from ..formula import EQ, Formula, Literal, NE

__all__ = ["Formula", "Literal", "EQ", "NE"]
