"""Stateful NetKAT abstract syntax (Figure 4).

Stateful NetKAT extends NetKAT with a global vector-valued variable
``state``:

- the test ``state(m) = n`` (:class:`StateTest`), and
- the guarded link ``(n1:m1) -> (n2:m2) <state(m) <- n>``
  (:class:`LinkUpdate`) which forwards across a link *and* records a
  state transition triggered by the packet's arrival at the link's
  destination.

Everything else (tests, assignments, union, sequence, star, links) is
shared with :mod:`repro.netkat.ast`; the constructors here return plain
NetKAT nodes extended with the two stateful forms, so the whole stateful
program is one AST.

State vectors are tuples of ints.  The helpers :func:`state_eq` /
:func:`link_update` support the paper's ``state=[0]`` / ``state<-[1]``
whole-vector sugar used throughout Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from ..netkat.ast import Conj, Policy, Predicate, conj
from ..netkat.packet import Location

__all__ = [
    "StateVector",
    "StateTest",
    "LinkUpdate",
    "state_test",
    "state_eq",
    "link_update",
    "vector_update",
    "uses_state",
]

StateVector = Tuple[int, ...]


@dataclass(frozen=True)
class StateTest(Predicate):
    """The test ``state(component) = value``."""

    component: int
    value: int

    def __repr__(self) -> str:
        return f"state({self.component})={self.value}"


@dataclass(frozen=True)
class LinkUpdate(Policy):
    """A link that also performs state updates: ``(src)->(dst)<state(m)<-n>``.

    ``updates`` is a tuple of (component, value) pairs applied to the
    global state when the event fires (the paper's Figure 4 allows one
    component; Figure 9's ``state<-[2]`` whole-vector form needs several,
    so we generalize).
    """

    src: Location
    dst: Location
    updates: Tuple[Tuple[int, int], ...]

    def __repr__(self) -> str:
        ups = ",".join(f"state({m})<-{n}" for m, n in self.updates)
        return f"({self.src})->({self.dst})<{ups}>"


def state_test(component: int, value: int) -> Predicate:
    """The single-component test ``state(component) = value``."""
    return StateTest(component, value)


def state_eq(vector: Sequence[int]) -> Predicate:
    """Whole-vector sugar: ``state = [v0, v1, ...]``."""
    return conj(*(StateTest(i, v) for i, v in enumerate(vector)))


def link_update(
    src: str | Location,
    dst: str | Location,
    updates: Iterable[Tuple[int, int]] | Sequence[int],
) -> Policy:
    """Build a state-updating link.

    ``updates`` is either an iterable of (component, value) pairs or a
    full vector of values (the ``state <- [..]`` sugar).
    """
    src_loc = src if isinstance(src, Location) else Location.parse(src)
    dst_loc = dst if isinstance(dst, Location) else Location.parse(dst)
    update_list = list(updates)
    if update_list and not isinstance(update_list[0], tuple):
        pairs = tuple(enumerate(update_list))  # whole-vector form
    else:
        pairs = tuple(update_list)
    return LinkUpdate(src_loc, dst_loc, pairs)


def vector_update(vector: StateVector, updates: Iterable[Tuple[int, int]]) -> StateVector:
    """Apply component updates to a state vector: ``k[m -> n]``."""
    out = list(vector)
    for component, value in updates:
        if component < 0 or component >= len(out):
            raise IndexError(
                f"state component {component} out of range for vector {vector}"
            )
        out[component] = value
    return tuple(out)


def uses_state(node: Policy | Predicate) -> bool:
    """Does this (sub)program mention the global state at all?"""
    from ..netkat.ast import Disj, Filter, Neg, Seq, Star, Union

    if isinstance(node, (StateTest, LinkUpdate)):
        return True
    if isinstance(node, Filter):
        return uses_state(node.predicate)
    if isinstance(node, Neg):
        return uses_state(node.operand)
    if isinstance(node, (Conj, Disj, Union, Seq)):
        return uses_state(node.left) or uses_state(node.right)
    if isinstance(node, Star):
        return uses_state(node.operand)
    return False
