"""Stateful NetKAT abstract syntax (Figure 4).

Stateful NetKAT extends NetKAT with a global vector-valued variable
``state``:

- the test ``state(m) = n`` (:class:`StateTest`), and
- the guarded link ``(n1:m1) -> (n2:m2) <state(m) <- n>``
  (:class:`LinkUpdate`) which forwards across a link *and* records a
  state transition triggered by the packet's arrival at the link's
  destination.

Everything else (tests, assignments, union, sequence, star, links) is
shared with :mod:`repro.netkat.ast`; the constructors here return plain
NetKAT nodes extended with the two stateful forms, so the whole stateful
program is one AST.

State vectors are tuples of ints.  The helpers :func:`state_eq` /
:func:`link_update` support the paper's ``state=[0]`` / ``state<-[1]``
whole-vector sugar used throughout Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..netkat.ast import Conj, Policy, Predicate, conj
from ..netkat.packet import Location

__all__ = [
    "StateVector",
    "StateTest",
    "LinkUpdate",
    "state_test",
    "state_eq",
    "link_update",
    "vector_update",
    "uses_state",
    "state_component_range",
    "validate_state_references",
]

StateVector = Tuple[int, ...]


@dataclass(frozen=True)
class StateTest(Predicate):
    """The test ``state(component) = value``."""

    component: int
    value: int

    def __repr__(self) -> str:
        return f"state({self.component})={self.value}"


@dataclass(frozen=True)
class LinkUpdate(Policy):
    """A link that also performs state updates: ``(src)->(dst)<state(m)<-n>``.

    ``updates`` is a tuple of (component, value) pairs applied to the
    global state when the event fires (the paper's Figure 4 allows one
    component; Figure 9's ``state<-[2]`` whole-vector form needs several,
    so we generalize).
    """

    src: Location
    dst: Location
    updates: Tuple[Tuple[int, int], ...]

    def __repr__(self) -> str:
        ups = ",".join(f"state({m})<-{n}" for m, n in self.updates)
        return f"({self.src})->({self.dst})<{ups}>"


def state_test(component: int, value: int) -> Predicate:
    """The single-component test ``state(component) = value``."""
    return StateTest(component, value)


def state_eq(vector: Sequence[int]) -> Predicate:
    """Whole-vector sugar: ``state = [v0, v1, ...]``."""
    return conj(*(StateTest(i, v) for i, v in enumerate(vector)))


def link_update(
    src: str | Location,
    dst: str | Location,
    updates: Iterable[Tuple[int, int]] | Sequence[int],
) -> Policy:
    """Build a state-updating link.

    ``updates`` is either an iterable of (component, value) pairs or a
    full vector of values (the ``state <- [..]`` sugar).
    """
    src_loc = src if isinstance(src, Location) else Location.parse(src)
    dst_loc = dst if isinstance(dst, Location) else Location.parse(dst)
    update_list = list(updates)
    if update_list and not isinstance(update_list[0], tuple):
        pairs = tuple(enumerate(update_list))  # whole-vector form
    else:
        pairs = tuple(update_list)
    return LinkUpdate(src_loc, dst_loc, pairs)


def vector_update(vector: StateVector, updates: Iterable[Tuple[int, int]]) -> StateVector:
    """Apply component updates to a state vector: ``k[m -> n]``."""
    out = list(vector)
    for component, value in updates:
        if component < 0 or component >= len(out):
            raise IndexError(
                f"state component {component} out of range for vector {vector}"
            )
        out[component] = value
    return tuple(out)


def uses_state(node: Policy | Predicate) -> bool:
    """Does this (sub)program mention the global state at all?

    The answer is cached on the (frozen, immutable) AST node: projection
    asks this for every subtree of every per-state walk, and state-free
    subtrees project to themselves under every state vector.
    """
    from ..netkat.ast import Disj, Filter, Neg, Seq, Star, Union

    cached = node.__dict__.get("_uses_state_cache")
    if cached is not None:
        return cached
    if isinstance(node, (StateTest, LinkUpdate)):
        value = True
    elif isinstance(node, Filter):
        value = uses_state(node.predicate)
    elif isinstance(node, Neg):
        value = uses_state(node.operand)
    elif isinstance(node, (Conj, Disj, Union, Seq)):
        value = uses_state(node.left) or uses_state(node.right)
    elif isinstance(node, Star):
        value = uses_state(node.operand)
    else:
        value = False
    object.__setattr__(node, "_uses_state_cache", value)
    return value


_UNCOMPUTED = object()


def state_component_range(
    node: Policy | Predicate,
) -> Optional[Tuple[int, int]]:
    """The (min, max) state-component indices referenced anywhere in the
    (sub)program, or ``None`` when it mentions no state components.

    Cached on the (frozen, immutable) AST node so projection can bounds-
    check a whole program in O(1) after the first walk, even though its
    short-circuits skip guard-dead subtrees.
    """
    from ..netkat.ast import Disj, Filter, Neg, Seq, Star, Union

    cached = node.__dict__.get("_state_component_range", _UNCOMPUTED)
    if cached is not _UNCOMPUTED:
        return cached
    value: Optional[Tuple[int, int]]
    if isinstance(node, StateTest):
        value = (node.component, node.component)
    elif isinstance(node, LinkUpdate):
        components = [component for component, _ in node.updates]
        value = (min(components), max(components)) if components else None
    elif isinstance(node, Filter):
        value = state_component_range(node.predicate)
    elif isinstance(node, Neg):
        value = state_component_range(node.operand)
    elif isinstance(node, (Conj, Disj, Union, Seq)):
        left = state_component_range(node.left)
        right = state_component_range(node.right)
        if left is None:
            value = right
        elif right is None:
            value = left
        else:
            value = (min(left[0], right[0]), max(left[1], right[1]))
    elif isinstance(node, Star):
        value = state_component_range(node.operand)
    else:
        value = None
    object.__setattr__(node, "_state_component_range", value)
    return value


def validate_state_references(node: Policy | Predicate, width: int) -> None:
    """Raise IndexError if any state reference is out of range for a
    ``width``-component state vector.

    Projection prunes subtrees whose guards resolve to false without
    walking their bodies, so a malformed state index in dead code would
    otherwise go unreported; whole programs are validated up front
    instead.
    """
    component_range = state_component_range(node)
    if component_range is None:
        return  # no state references at all
    lo, hi = component_range
    if lo < 0 or hi >= width:
        component = lo if lo < 0 else hi
        raise IndexError(
            f"state component {component} out of range for a "
            f"{width}-component state vector"
        )
