"""Event-driven transition systems (Definition 7) and ``ETS(p)``.

An ETS is a graph whose vertices are labeled by network configurations
and whose edges are labeled by events.  For a Stateful NetKAT program
``p`` with initial state ``~k0``, the construction of section 3.3 yields
vertices ``(~k, ⟦p⟧~k)`` and edges ``fst(⟬p⟭~k true)``.

We build the reachable fragment by breadth-first exploration from the
initial state; unreachable state vectors never influence runtime
behavior.  The full vertex set of the paper (all ``~k``) can be obtained
with an explicit ``state_space``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..events.event import Event
from ..netkat.ast import Policy
from .ast import StateVector, validate_state_references
from .events import EventEdge, extract
from .projection import project
from .symbolic import SymbolicProgram

__all__ = ["ETS", "build_ets"]


@dataclass(frozen=True)
class ETS:
    """An event-driven transition system over state vectors.

    ``vertices`` maps each state vector to its projected configuration
    policy; ``edges`` are the event-labeled transitions; ``initial`` is
    ``v0``.
    """

    initial: StateVector
    vertices: Tuple[Tuple[StateVector, Policy], ...]
    edges: FrozenSet[EventEdge]

    def configuration(self, state: StateVector) -> Policy:
        by_state = self.__dict__.get("_by_state")
        if by_state is None:
            by_state = {}
            for vertex_state, policy in self.vertices:
                # First match wins, like the linear scan this replaces
                # (nothing forbids hand-built ETSs with duplicate states).
                by_state.setdefault(vertex_state, policy)
            object.__setattr__(self, "_by_state", by_state)
        try:
            return by_state[state]
        except KeyError:
            raise KeyError(f"state {state} is not a vertex of this ETS") from None

    def states(self) -> Tuple[StateVector, ...]:
        return tuple(state for state, _ in self.vertices)

    def out_edges(self, state: StateVector) -> Tuple[EventEdge, ...]:
        # family_of_ets asks for a state's out-edges once per path visit;
        # index and sort the edge set per source state on first use.
        index = self.__dict__.get("_out_edges")
        if index is None:
            grouped: Dict[StateVector, List[EventEdge]] = {}
            for e in self.edges:
                grouped.setdefault(e.src, []).append(e)
            index = {
                src: tuple(sorted(es, key=lambda e: (repr(e.event), e.dst)))
                for src, es in grouped.items()
            }
            object.__setattr__(self, "_out_edges", index)
        return index.get(state, ())

    def events(self) -> FrozenSet[Event]:
        return frozenset(e.event for e in self.edges)

    def has_loops(self) -> bool:
        """Is any state reachable from itself via one or more edges?

        The DFS runs on an explicit stack: deep state chains that the
        symbolic extraction engine makes tractable (bandwidth caps well
        past 28) would overflow CPython's recursion limit with a
        recursive ``visit``.
        """
        adjacency: Dict[StateVector, List[StateVector]] = {}
        for e in self.edges:
            adjacency.setdefault(e.src, []).append(e.dst)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[StateVector, int] = {}
        for root, _ in self.vertices:
            if color.get(root, WHITE) != WHITE:
                continue
            color[root] = GRAY
            stack: List[Tuple[StateVector, Iterator[StateVector]]] = [
                (root, iter(adjacency.get(root, ())))
            ]
            while stack:
                node, neighbors = stack[-1]
                advanced = False
                for nxt in neighbors:
                    c = color.get(nxt, WHITE)
                    if c == GRAY:
                        return True
                    if c == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(adjacency.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return False

    def __repr__(self) -> str:
        lines = [f"ETS(initial={list(self.initial)})"]
        for state, _ in self.vertices:
            marker = "*" if state == self.initial else " "
            lines.append(f" {marker} {list(state)}")
            for e in self.out_edges(state):
                lines.append(f"     --{e.event!r}--> {list(e.dst)}")
        return "\n".join(lines)


def build_ets(
    program: Policy,
    initial: StateVector,
    state_space: Optional[Iterable[StateVector]] = None,
    max_states: int = 10_000,
    symbolic_extract: bool = True,
    symbolic: Optional[object] = None,
) -> ETS:
    """Construct ``ETS(program)`` from the initial state.

    By default only states reachable from ``initial`` become vertices;
    pass ``state_space`` to force a specific vertex set (every reachable
    state must be included in it).

    With ``symbolic_extract`` (the default) the program is partially
    evaluated **once** over all state-component values
    (:class:`~repro.stateful.symbolic.SymbolicProgram`) and the BFS
    instantiates each state's edges and configuration from the guarded
    result -- near-linear in the chain depth for the cap apps, and
    byte-identical to the retained per-state ``extract``/``project``
    reference walks (``symbolic_extract=False``).

    ``symbolic`` is the *instantiation seam*: any object providing
    ``edges_at(state)`` and ``configuration_at(state)``.  Pass a
    prebuilt :class:`~repro.stateful.symbolic.SymbolicProgram` to reuse
    (and time) the partial evaluation separately, as
    :class:`repro.pipeline.Pipeline` does — or a patched source that
    serves unaffected states from a previous ETS, as
    :meth:`repro.pipeline.Pipeline.update` does.  Whatever the source,
    per-state results must equal the reference walks'; the BFS applies
    the same identity-edge filter either way (already-filtered reused
    edges pass through it unchanged).
    """
    allowed: Optional[Set[StateVector]] = (
        set(state_space) if state_space is not None else None
    )
    if allowed is not None and initial not in allowed:
        raise ValueError(f"initial state {initial} not in the given state space")
    # Projection prunes dead segments without walking their bodies, so
    # out-of-range state references are checked once for the whole program.
    validate_state_references(program, len(initial))
    if symbolic is None and symbolic_extract:
        symbolic = SymbolicProgram(program)
    if symbolic is not None:
        edges_of = symbolic.edges_at
        config_of = symbolic.configuration_at
    else:
        edges_of = lambda s: extract(program, s).edges  # noqa: E731
        config_of = lambda s: project(program, s)  # noqa: E731

    visited: Set[StateVector] = {initial}
    order: List[StateVector] = [initial]
    edges: Set[EventEdge] = set()
    queue = deque([initial])
    while queue:
        state = queue.popleft()
        for edge in edges_of(state):
            if edge.dst == edge.src:
                # An update that rewrites the state to its current value is
                # an identity transition; the paper's ETSs omit them (e.g.
                # the learning switch re-"learns" H1 in state [1] without a
                # new event occurrence).
                continue
            edges.add(edge)
            dst = edge.dst
            if allowed is not None and dst not in allowed:
                raise ValueError(
                    f"reachable state {dst} is outside the given state space"
                )
            if dst not in visited:
                if len(visited) >= max_states:
                    raise RuntimeError(
                        f"ETS exploration exceeded {max_states} states"
                    )
                visited.add(dst)
                order.append(dst)
                queue.append(dst)

    if allowed is not None:
        for extra in sorted(allowed - visited):
            order.append(extra)
            for edge in edges_of(extra):
                if edge.dst == edge.src:
                    # Identity transitions are omitted here exactly as in
                    # the BFS loop above; forced extra states must not
                    # disagree with reached ones on the paper's rule.
                    continue
                edges.add(edge)

    vertices = tuple((state, config_of(state)) for state in order)
    return ETS(initial=initial, vertices=vertices, edges=frozenset(edges))
