"""Projection ``⟦p⟧~k``: the NetKAT configuration at state ``~k`` (Figure 5).

Given a Stateful NetKAT program and a concrete state vector, projection
replaces every ``state(m)=n`` test by ``true``/``false`` and every
state-updating link by the plain link, yielding a standard NetKAT policy
-- the static configuration installed while the network is in that state.
"""

from __future__ import annotations

from ..netkat.ast import (
    Conj,
    DROP,
    Disj,
    FALSE,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    TRUE,
    Union,
    conj,
    disj,
    neg,
    seq,
    star,
    union,
)
from .ast import (
    LinkUpdate,
    StateTest,
    StateVector,
    uses_state,
    validate_state_references,
)

__all__ = ["project", "project_predicate"]


def project_predicate(a: Predicate, state: StateVector) -> Predicate:
    """Resolve state tests in a predicate under state vector ``state``."""
    if not uses_state(a):
        return a
    # The walk short-circuits guard-dead subtrees, so out-of-range state
    # indices are bounds-checked once up front (O(1) after the first
    # walk -- the referenced-component range is cached on the node).
    validate_state_references(a, len(state))
    return _project_predicate(a, state)


def _project_predicate(a: Predicate, state: StateVector) -> Predicate:
    if not uses_state(a):
        return a
    if isinstance(a, StateTest):
        return TRUE if state[a.component] == a.value else FALSE
    # Below here the node has a state-using descendant (the uses_state
    # early-exit handles every state-free subtree), so at least one
    # child always projects to a new object and rebuilding is never
    # wasted work.
    if isinstance(a, Neg):
        return neg(_project_predicate(a.operand, state))
    if isinstance(a, Conj):
        left = _project_predicate(a.left, state)
        if isinstance(left, PFalse):
            return FALSE  # false AND b = false: skip the right walk
        return conj(left, _project_predicate(a.right, state))
    if isinstance(a, Disj):
        left = _project_predicate(a.left, state)
        if isinstance(left, PTrue):
            return TRUE  # true OR b = true: skip the right walk
        return disj(left, _project_predicate(a.right, state))
    return a  # true / false / field tests contain no state


def project(p: Policy, state: StateVector) -> Policy:
    """The configuration ``⟦p⟧~k`` as a plain NetKAT policy."""
    if not uses_state(p):
        return p
    # One up-front bounds check per call (see project_predicate).
    validate_state_references(p, len(state))
    return _project(p, state)


def _project(p: Policy, state: StateVector) -> Policy:
    if not uses_state(p):
        return p
    if isinstance(p, LinkUpdate):
        # ⟦(a:b)->(c:d)<state(m)<-n>⟧~k = ⟦(a:b)->(c:d)⟧~k
        return Link(p.src, p.dst)
    # As in _project_predicate: a state-using descendant is guaranteed
    # here, so some child always projects to a new object.
    if isinstance(p, Filter):
        return Filter(_project_predicate(p.predicate, state))
    if isinstance(p, Union):
        return union(_project(p.left, state), _project(p.right, state))
    if isinstance(p, Seq):
        left = _project(p.left, state)
        if isinstance(left, Filter) and isinstance(left.predicate, PFalse):
            # drop ; q = drop: a resolved-false state guard kills its
            # whole segment without walking the body.
            return DROP
        return seq(left, _project(p.right, state))
    if isinstance(p, Star):
        return star(_project(p.operand, state))
    return p  # assignments, dup, plain links
