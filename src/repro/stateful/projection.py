"""Projection ``⟦p⟧~k``: the NetKAT configuration at state ``~k`` (Figure 5).

Given a Stateful NetKAT program and a concrete state vector, projection
replaces every ``state(m)=n`` test by ``true``/``false`` and every
state-updating link by the plain link, yielding a standard NetKAT policy
-- the static configuration installed while the network is in that state.
"""

from __future__ import annotations

from ..netkat.ast import (
    Conj,
    Disj,
    FALSE,
    Filter,
    Link,
    Neg,
    Policy,
    Predicate,
    Seq,
    Star,
    TRUE,
    Union,
    conj,
    disj,
    neg,
    seq,
    star,
    union,
)
from .ast import LinkUpdate, StateTest, StateVector

__all__ = ["project", "project_predicate"]


def project_predicate(a: Predicate, state: StateVector) -> Predicate:
    """Resolve state tests in a predicate under state vector ``state``."""
    if isinstance(a, StateTest):
        if a.component < 0 or a.component >= len(state):
            raise IndexError(
                f"state component {a.component} out of range for vector {state}"
            )
        return TRUE if state[a.component] == a.value else FALSE
    if isinstance(a, Neg):
        return neg(project_predicate(a.operand, state))
    if isinstance(a, Conj):
        return conj(
            project_predicate(a.left, state), project_predicate(a.right, state)
        )
    if isinstance(a, Disj):
        return disj(
            project_predicate(a.left, state), project_predicate(a.right, state)
        )
    return a  # true / false / field tests contain no state


def project(p: Policy, state: StateVector) -> Policy:
    """The configuration ``⟦p⟧~k`` as a plain NetKAT policy."""
    if isinstance(p, LinkUpdate):
        # ⟦(a:b)->(c:d)<state(m)<-n>⟧~k = ⟦(a:b)->(c:d)⟧~k
        return Link(p.src, p.dst)
    if isinstance(p, Filter):
        return Filter(project_predicate(p.predicate, state))
    if isinstance(p, Union):
        return union(project(p.left, state), project(p.right, state))
    if isinstance(p, Seq):
        return seq(project(p.left, state), project(p.right, state))
    if isinstance(p, Star):
        return star(project(p.operand, state))
    return p  # assignments, dup, plain links
