"""Symbolic all-states extraction and projection: one partial-evaluation
pass over the program instead of one ``extract``/``project`` walk per
state vector.

The per-state construction of Figures 5-6 resolves every ``state(m)=n``
test against a concrete ``~k``, so building ``ETS(p)`` costs
O(states x program size) -- the dominant ``ets``-stage cost on the deep
bandwidth-cap chains (~7k ``extract`` calls at cap 24).  This module
walks the program **once**, treating each state test as a constraint on
a symbolic state vector:

- event extraction threads *guarded* formulas ``(g, phi)`` -- ``g`` is a
  canonical conjunction of state-component (in)equality literals (a
  :class:`StateGuard`, the state-space analogue of
  :class:`repro.formula.Formula` over packet fields) -- and collects
  *guarded* event edges ``(g, event, updates)`` whose concrete source
  and destination states are instantiated later;
- projection produces a guarded decision structure: a partition of the
  state space into :class:`StateGuard` cells, each carrying the
  projected configuration policy shared by every state in the cell.

Instantiating a concrete state is then a cheap guard filter
(:meth:`SymbolicProgram.edges_at` / :meth:`.configuration_at`) instead
of a fresh AST walk, which makes ETS construction near-linear in the
chain depth for the cap apps.

Byte identity with the per-state reference path
(``CompileOptions(symbolic_extract=False)``) is load-bearing: both
walks apply the *same* smart constructors and formula combinators in
the *same* order, so for every state consistent with a guard the
instantiated edges, formulas, and configuration policies are equal --
the goldens in ``tests/test_pipeline.py`` and the seeded property test
in ``tests/test_differential.py`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..events.event import Event
from ..formula import EQ, Formula, Literal, NE
from ..netkat.ast import (
    Assign,
    Conj,
    DROP,
    Disj,
    Dup,
    FALSE,
    Filter,
    Link,
    Neg,
    PFalse,
    PTrue,
    Policy,
    Predicate,
    Seq,
    Star,
    TRUE,
    Test,
    Union,
    conj,
    disj,
    neg,
    seq,
    star,
    union,
)
from ..netkat.packet import PT, SW
from .ast import LinkUpdate, StateTest, StateVector, uses_state, vector_update
from .events import EventEdge, STAR_EXTRACT_FUEL

__all__ = [
    "StateLiteral",
    "StateGuard",
    "GuardedEdge",
    "SymbolicExtract",
    "SymbolicProgram",
    "symbolic_extract",
    "symbolic_project",
    "changed_edge_guards",
    "changed_cell_guards",
]


# ---------------------------------------------------------------------------
# State guards: canonical conjunctions over state components
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class StateLiteral:
    """A single constraint ``state(component) = value`` or ``!= value``."""

    component: int
    op: str
    value: int

    def __post_init__(self) -> None:
        if self.op not in (EQ, NE):
            raise ValueError(f"bad state literal operator {self.op!r}")

    def holds(self, state: StateVector) -> bool:
        actual = state[self.component]
        if self.op == EQ:
            return actual == self.value
        return actual != self.value

    def __repr__(self) -> str:
        return f"state({self.component}){self.op}{self.value}"


class StateGuard:
    """A satisfiable canonical conjunction of state literals.

    Mirrors :class:`repro.formula.Formula`, with packet fields replaced
    by state-component indices: a positive literal on a component
    subsumes (and must be consistent with) every other literal on it,
    negative literals accumulate, and unsatisfiable conjunctions are
    represented by absence -- the combinators return ``None``.
    """

    __slots__ = ("_literals", "_pos", "_hash", "_repr")

    def __init__(self, literals: Iterable[StateLiteral] = ()):
        lits = frozenset(literals)
        if _guard_contradictory(lits):
            raise ValueError(
                f"contradictory state literal set {sorted(lits)!r}; "
                "use StateGuard.conjoin to build guards safely"
            )
        self._finish(_guard_canonicalize(lits))

    def _finish(self, canonical: FrozenSet[StateLiteral]) -> None:
        object.__setattr__(self, "_literals", canonical)
        # Positive assignments, cached for the contradiction fast path
        # in conjoin_guard (the symbolic-projection inner loop).
        object.__setattr__(
            self,
            "_pos",
            {l.component: l.value for l in canonical if l.op == EQ},
        )
        object.__setattr__(self, "_hash", hash(canonical))
        object.__setattr__(self, "_repr", None)

    @staticmethod
    def true() -> "StateGuard":
        return _TRUE_GUARD

    @staticmethod
    def _of_canonical(literals: FrozenSet[StateLiteral]) -> "StateGuard":
        """Build from literals already known consistent and canonical
        (skips the redundant ``__init__`` re-checks -- the conjoin
        combinators on the symbolic-projection hot path just ran them)."""
        guard = object.__new__(StateGuard)
        guard._finish(literals)
        return guard

    @property
    def literals(self) -> FrozenSet[StateLiteral]:
        return self._literals

    def is_true(self) -> bool:
        return not self._literals

    def conjoin(self, literal: StateLiteral) -> Optional["StateGuard"]:
        """``self AND literal``, or None when contradictory."""
        if literal in self._literals:
            return self
        if self._clashes(literal):
            return None
        canonical = _guard_canonicalize(self._literals | {literal})
        if canonical == self._literals:
            return self
        return StateGuard._of_canonical(canonical)

    def conjoin_guard(self, other: "StateGuard") -> Optional["StateGuard"]:
        """``self AND other``, or None when contradictory.

        The partition-refinement inner loop: each of ``other``'s
        literals is classified against the cached positive map as a
        clash (contradictory pair -- the common case in a cross
        product), implied (subsumed by one of ours), or novel; nothing
        is allocated unless novel literals survive.
        """
        if other is self or not other._literals:
            return self
        lits = self._literals
        if not lits:
            return other
        pos = self._pos
        novel: Optional[List[StateLiteral]] = None
        novel_positive = False
        for l in other._literals:
            known = pos.get(l.component)
            if l.op == EQ:
                if known is not None:
                    if known != l.value:
                        return None  # state(m)=a AND state(m)=b
                    continue  # same positive: implied
                if StateLiteral(l.component, NE, l.value) in lits:
                    return None  # state(m)!=v AND state(m)=v
                novel_positive = True
            else:
                if known is not None:
                    if known == l.value:
                        return None  # state(m)=v AND state(m)!=v
                    continue  # implied by our positive
                if l in lits:
                    continue
            if novel is None:
                novel = [l]
            else:
                novel.append(l)
        if novel is None:
            return self  # other is fully subsumed
        merged = lits.union(novel)
        if novel_positive:
            # A new positive may subsume our negatives on its component;
            # re-canonicalize (and reuse `other` when that leaves
            # exactly its literals instead of building an equal guard).
            merged = _guard_canonicalize(merged)
            if merged == other._literals:
                return other
        return StateGuard._of_canonical(merged)

    def _clashes(self, literal: StateLiteral) -> bool:
        """Does one extra literal contradict this (consistent) guard?"""
        known = self._pos.get(literal.component)
        if literal.op == EQ:
            if known is not None and known != literal.value:
                return True
            return StateLiteral(literal.component, NE, literal.value) in self._literals
        return known == literal.value

    def holds(self, state: StateVector) -> bool:
        """Is the concrete state vector consistent with this guard?"""
        for l in self._literals:
            if (state[l.component] == l.value) != (l.op == EQ):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateGuard):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self._repr is None:
            if not self._literals:
                object.__setattr__(self, "_repr", "true")
            else:
                object.__setattr__(
                    self,
                    "_repr",
                    " & ".join(repr(l) for l in sorted(self._literals)),
                )
        return self._repr


def _guard_contradictory(literals: FrozenSet[StateLiteral]) -> bool:
    # Literal sets here are tiny (one entry per state test on a control
    # path); a flat scan beats building per-op value-set dicts.
    positives: Dict[int, int] = {}
    for l in literals:
        if l.op == EQ:
            known = positives.get(l.component)
            if known is not None and known != l.value:
                return True
            positives[l.component] = l.value
    if not positives:
        return False
    for l in literals:
        if l.op == NE and positives.get(l.component) == l.value:
            return True
    return False


def _guard_canonicalize(
    literals: FrozenSet[StateLiteral],
) -> FrozenSet[StateLiteral]:
    """Drop negative literals made redundant by a positive one."""
    positives = {l.component for l in literals if l.op == EQ}
    if not positives:
        return literals
    out = {
        l
        for l in literals
        # state(m)=v already implies state(m) != anything-else
        if l.op == EQ or l.component not in positives
    }
    return literals if len(out) == len(literals) else frozenset(out)


_TRUE_GUARD = StateGuard()


# ---------------------------------------------------------------------------
# Symbolic event extraction: Figure 6 over all states at once
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GuardedEdge:
    """A symbolic ETS edge: fires at every source state satisfying
    ``guard``; the destination is ``vector_update(src, updates)``."""

    guard: StateGuard
    event: Event
    updates: Tuple[Tuple[int, int], ...]

    def __repr__(self) -> str:
        ups = ",".join(f"state({m})<-{n}" for m, n in self.updates)
        return f"[{self.guard!r}] --{self.event!r}--> <{ups}>"


GuardedFormula = Tuple[StateGuard, Formula]


@dataclass(frozen=True)
class SymbolicExtract:
    """The guarded pair ``(D, P)``: Figure 6's result for every state.

    Restricting to the items whose guard a concrete state satisfies
    yields exactly ``extract(p, state)`` (see
    :meth:`SymbolicProgram.edges_at` / :meth:`.formulas_at`).
    """

    edges: FrozenSet[GuardedEdge]
    formulas: FrozenSet[GuardedFormula]

    @staticmethod
    def of(guard: StateGuard, phi: Optional[Formula]) -> "SymbolicExtract":
        if phi is None:
            return _EMPTY
        return SymbolicExtract(frozenset(), frozenset(((guard, phi),)))

    def join(self, other: "SymbolicExtract") -> "SymbolicExtract":
        """Pointwise union (the figure's ⊔, guard-indexed)."""
        if not self.edges and not self.formulas:
            return other
        if not other.edges and not other.formulas:
            return self
        return SymbolicExtract(
            self.edges | other.edges, self.formulas | other.formulas
        )


_EMPTY = SymbolicExtract(frozenset(), frozenset())


def symbolic_extract(p: Policy) -> SymbolicExtract:
    """Compute ``⟬p⟭~k true`` for every ``~k`` in one walk.

    The walk is :func:`repro.stateful.events.extract` with the fixed
    concrete state replaced by a threaded :class:`StateGuard`: a state
    test refines the guard (both outcomes stay live, each under its own
    constraint) instead of resolving to keep/drop.  Memoized per call on
    ``(id(subterm), guard, phi)``, the guarded analogue of the concrete
    walk's ``(id(subterm), phi)`` key.
    """
    return _sx(p, _TRUE_GUARD, Formula.true(), {})


def _sx(p: Policy, guard: StateGuard, phi: Formula, memo: dict) -> SymbolicExtract:
    key = (id(p), guard, phi)
    result = memo.get(key)
    if result is not None:
        return result
    # Dispatch ordered like the concrete walk (observed frequency).
    if isinstance(p, Seq):
        result = _sx_kleisli(p.left, p.right, guard, phi, memo)
    elif isinstance(p, Filter):
        result = _sx_predicate(p.predicate, guard, phi, positive=True)
    elif isinstance(p, Union):
        result = _sx(p.left, guard, phi, memo).join(
            _sx(p.right, guard, phi, memo)
        )
    elif isinstance(p, Assign):
        if p.field in (SW, PT):
            result = SymbolicExtract.of(guard, phi)
        else:
            updated = phi.without_field(p.field).conjoin(
                Literal(p.field, EQ, p.value)
            )
            result = SymbolicExtract.of(guard, updated)
    elif isinstance(p, LinkUpdate):
        event = Event(phi, p.dst)
        edge = GuardedEdge(guard, event, p.updates)
        result = SymbolicExtract(frozenset((edge,)), frozenset(((guard, phi),)))
    elif isinstance(p, Link):
        result = SymbolicExtract.of(guard, phi)
    elif isinstance(p, Star):
        result = _sx_star(p.operand, guard, phi, memo)
    elif isinstance(p, Dup):
        result = SymbolicExtract.of(guard, phi)
    else:
        raise TypeError(f"not a stateful policy: {p!r}")
    memo[key] = result
    return result


def _sx_kleisli(
    left: Policy, right: Policy, guard: StateGuard, phi: Formula, memo: dict
) -> SymbolicExtract:
    """``(⟬left⟭ ‚ ⟬right⟭) phi`` -- thread each guarded formula through
    right, under the guard it was produced with."""
    first = _sx(left, guard, phi, memo)
    if not first.formulas:
        # Nothing to thread (e.g. a state guard refined to contradiction).
        return first
    if len(first.formulas) == 1:
        ((g1, psi),) = first.formulas
        threaded = _sx(right, g1, psi, memo)
        if not first.edges:
            return threaded
        return SymbolicExtract(first.edges | threaded.edges, threaded.formulas)
    edges = set(first.edges)
    formulas: set = set()
    for g1, psi in first.formulas:
        threaded = _sx(right, g1, psi, memo)
        edges.update(threaded.edges)
        formulas.update(threaded.formulas)
    return SymbolicExtract(frozenset(edges), frozenset(formulas))


def _sx_star(
    body: Policy, guard: StateGuard, phi: Formula, memo: dict
) -> SymbolicExtract:
    """``⟬p*⟭ phi = ⊔_j F_p^j(phi)`` iterated to a guarded fixpoint.

    Each iterate unfolds every frontier pair under its own guard; the
    loop runs until the *global* fixpoint, which restricted to any
    single consistent state is the concrete per-state fixpoint (extra
    global iterations re-derive pairs a state's walk already holds, so
    they never change that state's restriction).
    """
    total = SymbolicExtract.of(guard, phi)
    frontier: FrozenSet[GuardedFormula] = frozenset(((guard, phi),))
    for _ in range(STAR_EXTRACT_FUEL):
        step_edges: set = set()
        step_formulas: set = set()
        for g1, psi in frontier:
            unfolded = _sx(body, g1, psi, memo)
            step_edges.update(unfolded.edges)
            step_formulas.update(unfolded.formulas)
        step = SymbolicExtract(frozenset(step_edges), frozenset(step_formulas))
        new_total = total.join(step)
        new_frontier = step.formulas - total.formulas
        if new_total == total and not new_frontier:
            return total
        total = new_total
        frontier = step.formulas
        if not frontier:
            return total
    raise RuntimeError(
        f"symbolic event extraction for p* did not converge in "
        f"{STAR_EXTRACT_FUEL} steps"
    )


def _sx_predicate(
    a: Predicate, guard: StateGuard, phi: Formula, positive: bool
) -> SymbolicExtract:
    """Extract from a test, with negation pushed down to literals."""
    if isinstance(a, PTrue):
        return SymbolicExtract.of(guard, phi) if positive else _EMPTY
    if isinstance(a, PFalse):
        return _EMPTY if positive else SymbolicExtract.of(guard, phi)
    if isinstance(a, Test):
        if a.field in (SW, PT):
            # Location tests never refine the event guard (Figure 6).
            return SymbolicExtract.of(guard, phi)
        op = EQ if positive else NE
        return SymbolicExtract.of(guard, phi.conjoin(Literal(a.field, op, a.value)))
    if isinstance(a, StateTest):
        # The symbolic core: instead of resolving against ~k, constrain
        # the symbolic state.  A contradictory refinement is the guarded
        # spelling of the concrete walk's dropped branch.
        op = EQ if positive else NE
        refined = guard.conjoin(StateLiteral(a.component, op, a.value))
        if refined is None:
            return _EMPTY
        return SymbolicExtract.of(refined, phi)
    if isinstance(a, Neg):
        return _sx_predicate(a.operand, guard, phi, not positive)
    if isinstance(a, Conj):
        if positive:
            return _sx_pred_seq(a.left, a.right, guard, phi, True, True)
        # not (a and b) = (not a) or (not b)
        return _sx_predicate(a.left, guard, phi, False).join(
            _sx_predicate(a.right, guard, phi, False)
        )
    if isinstance(a, Disj):
        if positive:
            return _sx_predicate(a.left, guard, phi, True).join(
                _sx_predicate(a.right, guard, phi, True)
            )
        # not (a or b) = (not a) and (not b)
        return _sx_pred_seq(a.left, a.right, guard, phi, False, False)
    raise TypeError(f"not a predicate: {a!r}")


def _sx_pred_seq(
    left: Predicate,
    right: Predicate,
    guard: StateGuard,
    phi: Formula,
    left_positive: bool,
    right_positive: bool,
) -> SymbolicExtract:
    """Conjunction as sequencing: thread left's guarded formulas through
    right."""
    first = _sx_predicate(left, guard, phi, left_positive)
    edges = set(first.edges)
    formulas: set = set()
    for g1, psi in first.formulas:
        threaded = _sx_predicate(right, g1, psi, right_positive)
        edges.update(threaded.edges)
        formulas.update(threaded.formulas)
    return SymbolicExtract(frozenset(edges), frozenset(formulas))


# ---------------------------------------------------------------------------
# Symbolic projection: Figure 5 over all states at once
# ---------------------------------------------------------------------------

GuardedCells = Tuple[Tuple[StateGuard, Policy], ...]


def symbolic_project(p: Policy) -> GuardedCells:
    """Partition the state space into guard cells, each carrying the
    configuration ``⟦p⟧~k`` shared by every state in the cell.

    The cells are pairwise disjoint and cover every state vector, so
    :meth:`SymbolicProgram.configuration_at` is a unique-match lookup.
    Each cell's policy is built by the *same* smart-constructor calls
    the per-state walk makes (including its short-circuits: a false
    conjunct kills its conjunction, a drop kills its sequence), so it is
    structurally identical to ``project(p, state)``.
    """
    return _sp(p, {})


def _sp(p: Policy, memo: dict) -> GuardedCells:
    if not uses_state(p):
        # State-free subtrees project to themselves under every state.
        return ((_TRUE_GUARD, p),)
    key = id(p)
    cells = memo.get(key)
    if cells is not None:
        return cells
    if isinstance(p, LinkUpdate):
        cells = ((_TRUE_GUARD, Link(p.src, p.dst)),)
    elif isinstance(p, Filter):
        cells = tuple(
            (g, Filter(a)) for g, a in _sp_predicate(p.predicate, memo)
        )
    elif isinstance(p, Union):
        cells = _sp_combine(_sp(p.left, memo), _sp(p.right, memo), union)
    elif isinstance(p, Seq):
        out: List[Tuple[StateGuard, Policy]] = []
        for g, left in _sp(p.left, memo):
            if isinstance(left, Filter) and isinstance(left.predicate, PFalse):
                # drop ; q = drop: a resolved-false state guard kills its
                # whole segment without touching the body's cells.
                out.append((g, DROP))
                continue
            for g2, right in _sp(p.right, memo):
                refined = g.conjoin_guard(g2)
                if refined is not None:
                    out.append((refined, seq(left, right)))
        cells = tuple(out)
    elif isinstance(p, Star):
        cells = tuple((g, star(q)) for g, q in _sp(p.operand, memo))
    else:
        cells = ((_TRUE_GUARD, p),)  # assignments, dup, plain links
    memo[key] = cells
    return cells


def _sp_predicate(
    a: Predicate, memo: dict
) -> Tuple[Tuple[StateGuard, Predicate], ...]:
    if not uses_state(a):
        return ((_TRUE_GUARD, a),)
    key = ("pred", id(a))
    cells = memo.get(key)
    if cells is not None:
        return cells
    if isinstance(a, StateTest):
        cells = (
            (StateGuard((StateLiteral(a.component, EQ, a.value),)), TRUE),
            (StateGuard((StateLiteral(a.component, NE, a.value),)), FALSE),
        )
    elif isinstance(a, Neg):
        cells = tuple((g, neg(x)) for g, x in _sp_predicate(a.operand, memo))
    elif isinstance(a, Conj):
        out: List[Tuple[StateGuard, Predicate]] = []
        for g, left in _sp_predicate(a.left, memo):
            if isinstance(left, PFalse):
                out.append((g, FALSE))  # false AND b = false
                continue
            for g2, right in _sp_predicate(a.right, memo):
                refined = g.conjoin_guard(g2)
                if refined is not None:
                    out.append((refined, conj(left, right)))
        cells = tuple(out)
    elif isinstance(a, Disj):
        out = []
        for g, left in _sp_predicate(a.left, memo):
            if isinstance(left, PTrue):
                out.append((g, TRUE))  # true OR b = true
                continue
            for g2, right in _sp_predicate(a.right, memo):
                refined = g.conjoin_guard(g2)
                if refined is not None:
                    out.append((refined, disj(left, right)))
        cells = tuple(out)
    else:
        cells = ((_TRUE_GUARD, a),)  # true / false / field tests
    memo[key] = cells
    return cells


def _sp_combine(
    left: GuardedCells, right: GuardedCells, combine
) -> GuardedCells:
    """Refine two partitions, combining the policies of each consistent
    intersection (contradictory intersections are empty cells)."""
    out: List[Tuple[StateGuard, Policy]] = []
    for g, lp in left:
        for g2, rp in right:
            refined = g.conjoin_guard(g2)
            if refined is not None:
                out.append((refined, combine(lp, rp)))
    return tuple(out)


# ---------------------------------------------------------------------------
# Delta blast radius: which guards changed between two partial evaluations
# ---------------------------------------------------------------------------


def changed_edge_guards(
    old: SymbolicExtract, new: SymbolicExtract
) -> FrozenSet[StateGuard]:
    """Guards of the guarded edges present in exactly one extraction.

    A concrete state satisfying none of them has identical edge sets
    under both extractions: the edges whose guards hold at it are the
    *same* members of ``old.edges & new.edges`` either way.  This is the
    edge half of a delta's blast radius
    (:meth:`repro.pipeline.Pipeline.update`): states outside it can keep
    their previously instantiated :class:`~repro.stateful.events.EventEdge`\\ s.
    """
    return frozenset(ge.guard for ge in old.edges ^ new.edges)


def changed_cell_guards(
    old: GuardedCells, new: GuardedCells
) -> FrozenSet[StateGuard]:
    """Guards whose projection cell differs between two partitions.

    A guard counts as changed when it carries a different policy in the
    two partitions or exists in only one of them.  Cells are pairwise
    disjoint, so a state satisfying no changed guard matches the same
    guard in both partitions — first-occurrence wins for the (never
    produced, but tolerated) duplicate-guard case, mirroring the scan in
    :meth:`SymbolicProgram.configuration_at` — and that guard's policy
    is equal on both sides.  When the partitions differ in *shape*
    (a delta split or merged cells), the new guards are reported as
    changed wholesale: conservative, never unsound.
    """
    old_cells: Dict[StateGuard, Policy] = {}
    for g, policy in old:
        old_cells.setdefault(g, policy)
    new_cells: Dict[StateGuard, Policy] = {}
    for g, policy in new:
        new_cells.setdefault(g, policy)
    changed = set()
    for g, policy in new_cells.items():
        previous = old_cells.get(g)
        if previous is None or not (previous is policy or previous == policy):
            changed.add(g)
    for g in old_cells:
        if g not in new_cells:
            changed.add(g)
    return frozenset(changed)


# ---------------------------------------------------------------------------
# The façade: one partial evaluation, many cheap instantiations
# ---------------------------------------------------------------------------


class SymbolicProgram:
    """A Stateful NetKAT program partially evaluated over all states.

    Built once per :func:`repro.stateful.ets.build_ets` call (the
    pipeline times this as the ``ets.symbolic`` sub-stage); the
    per-state accessors are guard filters over the shared structures
    (the ``ets.instantiate`` sub-stage).
    """

    def __init__(self, program: Policy):
        self.program = program
        self.extraction = symbolic_extract(program)
        self.cells = symbolic_project(program)

    def edges_at(self, state: StateVector) -> FrozenSet[EventEdge]:
        """``fst(⟬p⟭~k true)``: the concrete event edges out of ``state``."""
        return frozenset(
            EventEdge(state, ge.event, vector_update(state, ge.updates))
            for ge in self.extraction.edges
            if ge.guard.holds(state)
        )

    def formulas_at(self, state: StateVector) -> FrozenSet[Formula]:
        """``snd(⟬p⟭~k true)``: the concrete path formulas at ``state``."""
        return frozenset(
            phi for g, phi in self.extraction.formulas if g.holds(state)
        )

    def configuration_at(self, state: StateVector) -> Policy:
        """``⟦p⟧~k``: the configuration policy at ``state``."""
        for g, policy in self.cells:
            if g.holds(state):
                return policy
        raise RuntimeError(  # pragma: no cover - the cells cover all states
            f"no projection cell covers state {state}"
        )

    def __repr__(self) -> str:
        return (
            f"SymbolicProgram({len(self.extraction.edges)} guarded edges, "
            f"{len(self.extraction.formulas)} guarded formulas, "
            f"{len(self.cells)} projection cells)"
        )
