"""Command-line interface: compile, check, and inspect stateful programs.

Usage (also via ``python -m repro``)::

    python -m repro show-ets  program.snk --topology firewall
    python -m repro check     program.snk --topology star --initial 0
    python -m repro compile   program.snk --topology firewall \
                              [--backend serial|thread] [--cache-dir DIR] \
                              [--strict-cache] [--no-symbolic-extract] \
                              [--no-knowledge-cache] [--report] [--json] \
                              [--trace OUT.json]
    python -m repro trace summarize OUT.json

``--report`` prints the per-stage timing report including the pipeline
``health`` counters (executor retries/fallbacks, cache integrity
rejections, swallowed cache errors) and the artifact-cache hit/miss
load counts; ``health ok`` means nothing was absorbed.  ``--report
--json`` emits the report as one JSON object (the same shape the
compilation service serves) instead of the human-readable output.
``--trace OUT.json`` records a :mod:`repro.obs.trace` span tree of the
compile (every pipeline stage, cache access, and per-configuration
compile attempt) and writes it in Chrome trace event format —
drag-and-drop loadable in Perfetto, or fold it into a self-time
breakdown with ``trace summarize``.
    python -m repro serve     [--host HOST] [--port PORT] \
                              [--cache-dir DIR] [--strict-cache] \
                              [--memo-size N] [--backend serial|thread]

``serve`` starts the compilation-as-a-service daemon
(:mod:`repro.service`): a controller fleet POSTs programs to
``/compile`` / ``/compile/batch`` / ``/update`` and reads ``/health`` /
``/stats`` / ``/version`` instead of linking the compiler.
    python -m repro update    program.snk --topology firewall \
                              [--set-state COMPONENT=VALUE]... \
                              [--new-program FILE] [--report]
    python -m repro optimize  program.snk --topology firewall
    python -m repro apps

``update`` compiles the program cold, applies the delta
(:class:`repro.pipeline.Delta`), and recompiles **incrementally**
through :meth:`repro.pipeline.Pipeline.update`, printing the updated
tables and how much of the previous build was reused.

Programs are written in the concrete syntax of
:mod:`repro.netkat.parser`; ``--topology`` selects one of the built-in
Figure 8 topologies (``firewall``, ``learning``, ``star``, ``ring:N``),
and ``--initial`` gives the starting state vector as comma-separated
ints.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional, Sequence

from .events.ets_to_nes import ETSConversionError, check_finite_complete, family_of_ets, nes_of_ets
from .events.locality import is_locally_determined, locality_violations
from .netkat.flowtable import TagFieldError
from .netkat.parser import ParseError, parse_policy
from .obs import export as obs_export
from .obs import metrics as obs_metrics
from .obs import trace as obs_trace
from .optimize.sharing import optimize_compiled_nes
from .pipeline import BACKENDS, CompileOptions, Delta, Pipeline, PipelineError
from .runtime.compiler import LocalityError
from .service.launcher import add_serve_arguments
from .stateful.ast import StateVector
from .stateful.ets import build_ets
from .topology import (
    Topology,
    firewall_topology,
    learning_topology,
    ring_topology,
    star_topology,
)

__all__ = ["main"]

_TOPOLOGIES = {
    "firewall": firewall_topology,
    "learning": learning_topology,
    "star": star_topology,
}


def _topology_of(spec: str) -> Topology:
    if spec in _TOPOLOGIES:
        return _TOPOLOGIES[spec]()
    if spec.startswith("ring:"):
        return ring_topology(int(spec.split(":", 1)[1]))
    raise SystemExit(
        f"unknown topology {spec!r}; choose from "
        f"{sorted(_TOPOLOGIES)} or ring:N"
    )


def _initial_of(spec: str) -> StateVector:
    try:
        return tuple(int(part) for part in spec.split(","))
    except ValueError:
        raise SystemExit(f"--initial must be comma-separated ints, got {spec!r}")


def _load_program(path: str):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc}")
    try:
        return parse_policy(source)
    except ParseError as exc:
        raise SystemExit(f"parse error in {path}: {exc}")


def _cmd_show_ets(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    ets = build_ets(program, _initial_of(args.initial))
    print(ets)
    print(f"\n{len(ets.states())} states, {len(ets.edges)} edges, "
          f"loops: {ets.has_loops()}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the section 3.1 conditions and the locality restriction."""
    program = _load_program(args.program)
    topology = _topology_of(args.topology)
    ets = build_ets(program, _initial_of(args.initial))
    print(f"ETS: {len(ets.states())} states, {len(ets.edges)} edges")
    try:
        family = family_of_ets(ets)
    except ETSConversionError as exc:
        print(f"FAIL: {exc}")
        return 1
    violations = check_finite_complete(family)
    if violations:
        print(f"FAIL: {len(violations)} finite-completeness violation(s), "
              f"e.g. {tuple(set(v) for v in violations[0])}")
        return 1
    print(f"family F(T): {len(family)} event-sets  [ok]")
    nes = nes_of_ets(ets)
    bad_locality = locality_violations(nes)
    if bad_locality:
        sample = next(iter(bad_locality))
        print(f"FAIL: not locally determined; {set(sample)} spans switches")
        return 1
    print("locally determined  [ok]")
    unknown = topology.switches - {e.location.switch for e in nes.events} if nes.events else set()
    print(f"events: {len(nes.events)}; configurations: "
          f"{len(nes.configuration_states())}")
    print("program is implementable (sections 3.1 + 2 conditions hold)")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    topology = _topology_of(args.topology)
    if args.json and not args.report:
        raise SystemExit("--json requires --report")
    options = CompileOptions(
        backend=args.backend,
        cache_dir=args.cache_dir,
        strict_cache=args.strict_cache,
        symbolic_extract=not args.no_symbolic_extract,
        knowledge_cache=not args.no_knowledge_cache,
    )
    pipeline = Pipeline(program, topology, _initial_of(args.initial), options)
    registry = tracer = None
    with contextlib.ExitStack() as stack:
        if args.report or args.trace:
            # A private registry for this one compile: cache hit/miss
            # counts for the human --report output (never in to_dict —
            # that shape is pinned).
            registry = stack.enter_context(obs_metrics.collecting())
        if args.trace:
            tracer = stack.enter_context(obs_trace.recording())
            stack.enter_context(
                obs_trace.span("repro.compile", program=args.program)
            )
        try:
            compiled = pipeline.compiled
            tables = compiled.guarded_tables()  # tag-collision check runs here
        except (ETSConversionError, LocalityError, TagFieldError, PipelineError) as exc:
            print(f"FAIL: {exc}")
            return 1
    if args.trace:
        spans = obs_export.write_chrome_trace(args.trace, tracer)
        trace_note = (
            f"wrote {spans} span(s) to {args.trace} (Chrome trace; load in "
            f"Perfetto or `python -m repro trace summarize {args.trace}`)"
        )
    if args.json:
        # Machine-readable mode: exactly one JSON object on stdout (the
        # PipelineReport.to_dict shape the service also serves).
        if args.trace:
            print(trace_note, file=sys.stderr)
        print(json.dumps(pipeline.report().to_dict(), indent=2))
        return 0
    print(f"{compiled}\n")
    for switch, table in sorted(tables.items()):
        print(f"switch {switch} ({len(table)} rules):")
        for rule in table:
            print(f"  {rule!r}")
    print(f"\nforwarding rules: {compiled.forwarding_rule_count()}")
    print(f"stamp rules:      {compiled.stamp_rule_count()}")
    print(f"total:            {compiled.total_rule_count()}")
    if args.report:
        print(f"\n{pipeline.report()}")
        hits = int(registry.value("repro_cache_loads_total", result="hit"))
        misses = int(registry.value("repro_cache_loads_total", result="miss"))
        print(f"  artifact cache loads: {hits} hit(s), {misses} miss(es)")
    if args.trace:
        print(f"\n{trace_note}")
    return 0


def _set_state_of(specs: Sequence[str]):
    updates = []
    for spec in specs:
        component, sep, value = spec.partition("=")
        try:
            if not sep:
                raise ValueError(spec)
            updates.append((int(component), int(value)))
        except ValueError:
            raise SystemExit(
                f"--set-state must be COMPONENT=VALUE with ints, got {spec!r}"
            )
    return tuple(updates)


def _cmd_update(args: argparse.Namespace) -> int:
    """Compile, apply a delta, and recompile incrementally."""
    program = _load_program(args.program)
    topology = _topology_of(args.topology)
    replace = with_ = None
    if args.new_program is not None:
        replace, with_ = program, _load_program(args.new_program)
    pipeline = Pipeline(program, topology, _initial_of(args.initial))
    try:
        delta = Delta(
            set_state=_set_state_of(args.set_state),
            replace_policy=replace,
            with_policy=with_,
        )
        pipeline.compiled  # cold build the base artifacts
        updated = pipeline.update(delta)
        tables = updated.compiled.guarded_tables()
    except (ETSConversionError, LocalityError, TagFieldError, PipelineError,
            ValueError) as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"{updated.compiled}\n")
    for switch, table in sorted(tables.items()):
        print(f"switch {switch} ({len(table)} rules):")
        for rule in table:
            print(f"  {rule!r}")
    stats = dict(updated.report().stats)
    print(
        f"\nreuse: {stats['update.reuse_percent']}% of configurations "
        f"({stats['update.configurations_reused']} reused, "
        f"{stats['update.configurations_recompiled']} recompiled; "
        f"ETS states: {stats['update.states_reused']} reused, "
        f"{stats['update.states_reinstantiated']} reinstantiated)"
    )
    if args.report:
        print(f"\n{updated.report()}")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    program = _load_program(args.program)
    topology = _topology_of(args.topology)
    pipeline = Pipeline(program, topology, _initial_of(args.initial))
    try:
        compiled = pipeline.compiled
        result = optimize_compiled_nes(compiled)
    except (ETSConversionError, LocalityError, TagFieldError) as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"{'switch':>6s}  {'original':>8s}  {'optimized':>9s}")
    for sw in result.per_switch:
        print(f"{sw.switch:>6d}  {sw.original:>8d}  {sw.optimized:>9d}")
    print(f"{'total':>6s}  {result.original:>8d}  {result.optimized:>9d}  "
          f"({result.savings_fraction * 100:.0f}% saved)")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Print the self-time breakdown tree of a ``--trace`` output file."""
    try:
        with open(args.file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.file}: {exc}")
    except ValueError as exc:
        raise SystemExit(f"{args.file} is not valid JSON: {exc}")
    problems = obs_export.validate_chrome_trace(doc)
    if problems:
        print(f"FAIL: {args.file} is not a valid Chrome trace:")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1
    spans = obs_export.spans_from_chrome(doc)
    if not spans:
        print("no spans recorded")
        return 0
    tree = obs_export.summarize(spans)
    print(obs_export.format_summary(tree))
    total = sum(node["total"] for node in tree)
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    tail = f"  (+{dropped} dropped)" if dropped else ""
    print(f"\n{len(spans)} span(s), {total * 1e3:.3f} ms at top level{tail}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compilation daemon (blocks until interrupted)."""
    from .service.launcher import run

    return run(args)


def _cmd_apps(args: argparse.Namespace) -> int:
    from . import apps as apps_module

    makers = [
        apps_module.firewall_app,
        apps_module.learning_switch_app,
        apps_module.learning_multi_app,
        apps_module.authentication_app,
        apps_module.bandwidth_cap_app,
        apps_module.ids_app,
    ]
    print(f"{'name':>22s}  {'states':>6s}  {'events':>6s}  {'rules':>6s}")
    for make in makers:
        app = make()
        print(
            f"{app.name:>22s}  {len(app.compiled.states):>6d}  "
            f"{len(app.nes.events):>6d}  {app.compiled.total_rule_count():>6d}"
        )
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Event-Driven Network Programming (PLDI 2016) toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_program_command(name: str, handler, help_text: str, needs_topology: bool):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("program", help="Stateful NetKAT source file")
        cmd.add_argument("--initial", default="0", help="initial state vector (e.g. 0,0)")
        if needs_topology:
            cmd.add_argument(
                "--topology",
                default="firewall",
                help="firewall | learning | star | ring:N",
            )
        cmd.set_defaults(handler=handler)

    add_program_command("show-ets", _cmd_show_ets,
                        "print the event-driven transition system", False)
    add_program_command("check", _cmd_check,
                        "check the section 3.1 + locality conditions", True)
    add_program_command("compile", _cmd_compile,
                        "compile to guarded flow tables", True)
    compile_cmd = sub.choices["compile"]
    compile_cmd.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="per-configuration compile executor (default: serial)",
    )
    compile_cmd.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent artifact cache directory (default: disabled); "
        "set REPRO_CACHE_HMAC_KEY to sign/verify artifacts",
    )
    compile_cmd.add_argument(
        "--strict-cache",
        action="store_true",
        help="treat a cached artifact failing HMAC verification as a "
        "hard error instead of a recorded miss",
    )
    compile_cmd.add_argument(
        "--no-symbolic-extract",
        action="store_true",
        help="build the ETS with the per-state extract/project reference "
        "walks instead of the one-pass symbolic engine",
    )
    compile_cmd.add_argument(
        "--no-knowledge-cache",
        action="store_true",
        help="disable the per-builder knowledge-predicate FDD cache",
    )
    compile_cmd.add_argument(
        "--report",
        action="store_true",
        help="print per-stage pipeline timings and stats (including the "
        "ets symbolic-vs-instantiate split)",
    )
    compile_cmd.add_argument(
        "--json",
        action="store_true",
        help="with --report: emit the report as one JSON object "
        "(PipelineReport.to_dict) instead of the human-readable output",
    )
    compile_cmd.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="record a span trace of the compile and write it as a "
        "Chrome trace event file (Perfetto-loadable; inspect with "
        "`repro trace summarize OUT.json`)",
    )
    add_program_command("update", _cmd_update,
                        "recompile incrementally after a delta", True)
    update_cmd = sub.choices["update"]
    update_cmd.add_argument(
        "--set-state",
        action="append",
        default=[],
        metavar="COMPONENT=VALUE",
        help="overwrite one initial-state component (repeatable)",
    )
    update_cmd.add_argument(
        "--new-program",
        default=None,
        metavar="FILE",
        help="replace the whole program with this source file",
    )
    update_cmd.add_argument(
        "--report",
        action="store_true",
        help="print per-stage pipeline timings and stats for the update",
    )
    add_program_command("optimize", _cmd_optimize,
                        "report the section 5.3 rule sharing", True)

    apps_cmd = sub.add_parser("apps", help="list the built-in case studies")
    apps_cmd.set_defaults(handler=_cmd_apps)

    trace_cmd = sub.add_parser(
        "trace", help="inspect span traces written by compile --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize_cmd = trace_sub.add_parser(
        "summarize", help="print a per-stage total/self-time breakdown tree"
    )
    summarize_cmd.add_argument(
        "file", help="Chrome trace JSON written by `repro compile --trace`"
    )
    summarize_cmd.set_defaults(handler=_cmd_trace_summarize)

    serve_cmd = sub.add_parser(
        "serve", help="run the compilation-as-a-service daemon"
    )
    add_serve_arguments(serve_cmd)
    serve_cmd.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
