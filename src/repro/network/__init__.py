"""The discrete-event network simulator (the Mininet substitute)."""

from .simulator import (
    DeliveryRecord,
    DropRecord,
    Frame,
    FrameBatch,
    LinkParams,
    SimNetwork,
    SimOptions,
    Simulator,
)
from .stats import (
    LatencySummary,
    deliveries_per_second,
    latency_summary,
    loss_rate,
    success_timeline,
)
from .switch_logic import CorrectLogic
from .traffic import (
    KIND_REPLY,
    KIND_REQUEST,
    PingOutcome,
    goodput,
    install_ping_responders,
    ping_outcomes,
    send_bulk,
    send_ping,
)

__all__ = [
    "Simulator",
    "SimNetwork",
    "SimOptions",
    "Frame",
    "FrameBatch",
    "LinkParams",
    "DeliveryRecord",
    "DropRecord",
    "CorrectLogic",
    "deliveries_per_second",
    "loss_rate",
    "latency_summary",
    "LatencySummary",
    "success_timeline",
    "install_ping_responders",
    "send_ping",
    "ping_outcomes",
    "PingOutcome",
    "send_bulk",
    "goodput",
    "KIND_REQUEST",
    "KIND_REPLY",
]
