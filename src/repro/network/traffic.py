"""Traffic generators and measurements: ping trains and iperf-like flows.

Pings model the case-study workloads of Figures 11-15: a request packet
(``kind=1``) is injected at the source; when it reaches the destination
host, an automatic reply (``kind=2``) with swapped addresses is sent
back; the ping *succeeds* when the reply reaches the original source.

Bulk flows model the iperf measurements of Figure 16(a): a burst of
MTU-sized packets is pushed through the network and goodput is computed
from the delivery timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..apps.base import HOSTS
from ..netkat.packet import Packet
from .simulator import DeliveryRecord, Frame, SimNetwork

__all__ = [
    "KIND_REQUEST",
    "KIND_REPLY",
    "install_ping_responders",
    "send_ping",
    "PingOutcome",
    "ping_outcomes",
    "send_bulk",
    "goodput",
]

KIND_REQUEST = 1
KIND_REPLY = 2


def install_ping_responders(net: SimNetwork, hosts: Optional[Sequence[str]] = None) -> None:
    """Make hosts answer ping requests addressed to them."""
    names = list(hosts) if hosts is not None else [h.name for h in net.topology.hosts]
    for name in names:
        net.auto_reply[name] = _reply_handler


def _reply_handler(net: SimNetwork, host_name: str, frame: Frame) -> None:
    packet = frame.packet
    if packet.get("kind") != KIND_REQUEST:
        return
    if packet.get("ip_dst") != HOSTS.get(host_name):
        return  # flooded copy delivered to a bystander; do not answer
    reply_packet = Packet(
        {
            "ip_src": packet["ip_dst"],
            "ip_dst": packet["ip_src"],
            "kind": KIND_REPLY,
            "ident": packet.get("ident", 0),
        }
    )
    reply = Frame(
        packet=reply_packet,
        payload_bytes=frame.payload_bytes,
        flow=("ping-reply",) + frame.flow[1:],
        ident=frame.ident,
    )
    net.inject(host_name, reply, at=net.now)


def send_ping(
    net: SimNetwork,
    src: str,
    dst: str,
    ident: int,
    at: float,
    payload_bytes: int = 64,
    extra_fields: Optional[Mapping[str, int]] = None,
) -> None:
    """Inject one ping request from ``src`` to ``dst`` at time ``at``."""
    fields: Dict[str, int] = {
        "ip_src": HOSTS[src],
        "ip_dst": HOSTS[dst],
        "kind": KIND_REQUEST,
        "ident": ident,
    }
    if extra_fields:
        fields.update(extra_fields)
    frame = Frame(
        packet=Packet(fields),
        payload_bytes=payload_bytes,
        flow=("ping", src, dst),
        ident=ident,
    )
    net.inject(src, frame, at=at)


@dataclass(frozen=True)
class PingOutcome:
    """One ping's fate: when it was sent, and whether/when it completed."""

    src: str
    dst: str
    ident: int
    sent_at: float
    succeeded: bool
    completed_at: Optional[float] = None


def ping_outcomes(
    net: SimNetwork, pings: Sequence[Tuple[str, str, int, float]]
) -> List[PingOutcome]:
    """Match sent pings against delivered replies.

    ``pings`` lists (src, dst, ident, sent_at) tuples as scheduled by the
    caller; a ping succeeded when a ``ping-reply`` for (src, dst, ident)
    was delivered back to ``src``.
    """
    replies: Dict[Tuple[str, str, int], float] = {}
    for record in net.deliveries:
        frame = record.frame
        if frame.flow[:1] != ("ping-reply",):
            continue
        _, src, dst = frame.flow
        if record.host == src:
            replies.setdefault((src, dst, frame.ident), record.time)
    out: List[PingOutcome] = []
    for src, dst, ident, sent_at in pings:
        completed = replies.get((src, dst, ident))
        out.append(
            PingOutcome(
                src=src,
                dst=dst,
                ident=ident,
                sent_at=sent_at,
                succeeded=completed is not None,
                completed_at=completed,
            )
        )
    return out


def send_bulk(
    net: SimNetwork,
    src: str,
    dst: str,
    packets: int,
    at: float = 0.0,
    payload_bytes: int = 1470,
    spacing: float = 0.0,
    extra_fields: Optional[Mapping[str, int]] = None,
) -> None:
    """Inject an iperf-like burst of ``packets`` MTU-sized packets."""
    for i in range(packets):
        fields: Dict[str, int] = {
            "ip_src": HOSTS[src],
            "ip_dst": HOSTS[dst],
            "kind": 0,
            "ident": i,
        }
        if extra_fields:
            fields.update(extra_fields)
        frame = Frame(
            packet=Packet(fields),
            payload_bytes=payload_bytes,
            flow=("bulk", src, dst),
            ident=i,
        )
        net.inject(src, frame, at=at + i * spacing)


def goodput(net: SimNetwork, src: str, dst: str, payload_bytes: int = 1470) -> float:
    """Delivered payload bytes per second for a bulk flow (0 if < 2 packets)."""
    records = [
        r
        for r in net.delivered_flows(("bulk", src, dst))
        if r.host == dst
    ]
    if len(records) < 2:
        return 0.0
    start = min(r.frame.injected_at for r in records)
    finish = max(r.time for r in records)
    if finish <= start:
        return 0.0
    total_payload = sum(r.frame.payload_bytes for r in records)
    return total_payload / (finish - start)
