"""Measurement utilities over simulation results.

Small, composable helpers the benchmarks and examples share: per-second
delivery histograms (the Figures 11-15 timelines), loss accounting, and
latency summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .simulator import DeliveryRecord, SimNetwork
from .traffic import PingOutcome

__all__ = [
    "deliveries_per_second",
    "loss_rate",
    "LatencySummary",
    "latency_summary",
    "success_timeline",
]


def deliveries_per_second(
    net: SimNetwork,
    host: Optional[str] = None,
    flow_prefix: Tuple = (),
) -> Dict[int, int]:
    """Histogram of deliveries bucketed by whole second."""
    buckets: Dict[int, int] = {}
    n = len(flow_prefix)
    for record in net.deliveries:
        if host is not None and record.host != host:
            continue
        if flow_prefix and record.frame.flow[:n] != flow_prefix:
            continue
        bucket = int(record.time)
        buckets[bucket] = buckets.get(bucket, 0) + 1
    return buckets


def loss_rate(outcomes: Sequence[PingOutcome]) -> float:
    """Fraction of pings that never completed (0.0 when none sent)."""
    if not outcomes:
        return 0.0
    lost = sum(1 for o in outcomes if not o.succeeded)
    return lost / len(outcomes)


@dataclass(frozen=True)
class LatencySummary:
    """Round-trip latency statistics over completed pings."""

    count: int
    minimum: float
    median: float
    maximum: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(0, float("nan"), float("nan"), float("nan"))


def latency_summary(outcomes: Sequence[PingOutcome]) -> LatencySummary:
    """Min/median/max round-trip time of the successful pings."""
    rtts = sorted(
        o.completed_at - o.sent_at
        for o in outcomes
        if o.succeeded and o.completed_at is not None
    )
    if not rtts:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(rtts),
        minimum=rtts[0],
        median=rtts[len(rtts) // 2],
        maximum=rtts[-1],
    )


def success_timeline(outcomes: Sequence[PingOutcome]) -> List[Tuple[float, bool]]:
    """(sent_at, succeeded) pairs in send order -- the Figures 11-15 shape."""
    return [(o.sent_at, o.succeeded) for o in sorted(outcomes, key=lambda o: o.sent_at)]
