"""The correct (tag-and-digest) switch logic for the simulator.

This is the timed counterpart of the SWITCH/IN rules of Figure 7,
identical in logic to :mod:`repro.runtime.semantics` but embedded in the
discrete-event world: per-switch event registers, ingress stamping,
digest gossip, optional controller assistance (CTRLSEND broadcasts after
a configurable controller latency), and measurable header overhead for
the tag and digest fields (Figure 16a's ~6% bandwidth cost).

With ``SimOptions(mask_digests=True)`` (the default) the whole SWITCH
rule runs on interned event bitmasks: registers are ints, frames carry
``tag_mask``/``digest_mask`` ints, and detection uses
``enables_mask``/``con_mask`` -- no per-packet ``frozenset``.  The
``registers`` attribute stays a mapping of set-like views backed by the
masks, so code (and tests) that mutate ``logic.registers[sw]`` keeps
working on either path.  With ``SimOptions(batch=True)`` a per-switch
classification memo maps (tag, interned header) to the forwarding
outputs so identical-header packets skip table re-evaluation.  Both
knobs are behaviour-identical to the retained frozenset reference path.
"""

from __future__ import annotations

import math
from collections.abc import MutableSet
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..events.event import Event, EventSet
from ..netkat.packet import Location, Packet, PT, SW
from ..runtime.compiler import CompiledNES
from ..sim_options import SimOptions
from .simulator import Frame, SimNetwork, SwitchLogic, _MEMO_LIMIT, _UNSET

__all__ = ["CorrectLogic", "BASE_HEADER_BYTES"]

# A plausible L2+L3+L4 header for an untagged packet (Ethernet + IPv4 +
# TCP), used by both strategies so overhead comparisons are apples to
# apples.
BASE_HEADER_BYTES = 54


class _MaskRegister(MutableSet):
    """A set-like view of one switch's register bitmask.

    The mask dict is the single source of truth (shared with the hot
    path); every set operation reads or rewrites the int, so external
    mutation (``logic.registers[sw].add(event)``) is visible to masked
    processing and vice versa.
    """

    __slots__ = ("_masks", "_switch", "_structure", "_generations")

    def __init__(self, masks: Dict[int, int], switch: int, structure, generations):
        self._masks = masks
        self._switch = switch
        self._structure = structure
        # Shared plan-generation counters: any register mutation must
        # invalidate the simulator's cached emission plans.
        self._generations = generations

    # Set operators on views return plain sets, not registers.
    @classmethod
    def _from_iterable(cls, iterable) -> Set[Event]:
        return set(iterable)

    @property
    def mask(self) -> int:
        return self._masks[self._switch]

    def __contains__(self, event: object) -> bool:
        index = self._structure.event_index.get(event)
        return index is not None and bool(self._masks[self._switch] >> index & 1)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._structure.decode(self._masks[self._switch]))

    def __len__(self) -> int:
        return self._masks[self._switch].bit_count()

    def add(self, event: Event) -> None:
        index = self._structure.event_index.get(event)
        if index is None:
            raise KeyError(f"{event!r} is not an event of this structure")
        self._masks[self._switch] |= 1 << index
        self._generations[self._switch] += 1

    def discard(self, event: Event) -> None:
        index = self._structure.event_index.get(event)
        if index is not None:
            self._masks[self._switch] &= ~(1 << index)
            self._generations[self._switch] += 1

    def clear(self) -> None:
        self._masks[self._switch] = 0
        self._generations[self._switch] += 1

    def update(self, events) -> None:
        for event in events:
            self.add(event)

    def __repr__(self) -> str:
        return repr(set(self))


class CorrectLogic:
    """Tag-based forwarding with event detection and digest gossip."""

    def __init__(
        self,
        compiled: CompiledNES,
        controller_assist: bool = False,
        controller_latency: float = 0.05,
        event_notify_latency: float = 0.01,
        extra_processing_delay: float = 6e-6,
        options: Optional[SimOptions] = None,
    ):
        self.compiled = compiled
        self.controller_assist = controller_assist
        self.controller_latency = controller_latency
        self.event_notify_latency = event_notify_latency
        # Per-packet cost of the guard/stamp/learn pipeline relative to
        # plain forwarding (the Figure 16a overhead knob; ~6 microseconds
        # approximates the paper's modified OpenFlow reference switch).
        self.extra_processing_delay = extra_processing_delay
        self.options = options if options is not None else SimOptions()
        structure = compiled.nes.structure
        self._structure = structure
        self._universe = structure.universe
        self._mask = self.options.mask_digests
        self._memo = self.options.batch
        switches = compiled.topology.switches
        # last_plan/plan_generations/header_overhead/ingress_frame are
        # the simulator's plan-cache protocol (see simulator._Plan).
        self.last_plan: Optional[Tuple] = None
        if self._mask:
            self.plan_generations: Dict[int, int] = {n: 0 for n in switches}
            self._register_masks: Optional[Dict[int, int]] = {n: 0 for n in switches}
            self.registers: Dict[int, Set[Event]] = {
                n: _MaskRegister(
                    self._register_masks, n, structure, self.plan_generations
                )
                for n in switches
            }
            self.ingress_frame = self._ingress_frame_masked
        else:
            self._register_masks = None
            self.registers = {n: set() for n in switches}
        # Events already reported to net.note_event_learned per switch
        # (the reference path re-notes idempotently on every packet; the
        # mask path decodes only never-before-noted bits).
        self._noted_masks: Dict[int, int] = {n: 0 for n in switches}
        # Normalized packet -> bitmask of events matching it (mask path).
        self._match_memo: Dict[Packet, int] = {}
        # tag -> normalized packet -> ((port, out_packet), ...) -- the
        # per-switch classification memo of the batch knob, nested so a
        # hit costs two cheap lookups instead of a tuple alloc + hash.
        self._forward_memo: Dict[object, Dict[Packet, Tuple[Tuple[int, Packet], ...]]] = {}
        # Tag (mask or frozenset) -> Configuration.
        self._config_memo: Dict[object, object] = {}
        self.controller_view: Set[Event] = set()
        # Tag (one config id) + digest (one bit per event), rounded up to
        # whole bytes -- the "single unused header field" of section 4.1.
        n_events = max(1, len(compiled.nes.events))
        n_states = max(2, len(compiled.states))
        self.tag_bytes = max(1, math.ceil(math.log2(n_states) / 8))
        self.digest_bytes = max(1, math.ceil(n_events / 8))
        # header_bytes is frame-independent; publishing the constant
        # lets the simulator's plan replay skip the per-frame call.
        self.header_overhead = BASE_HEADER_BYTES + self.tag_bytes + self.digest_bytes

    # -- SwitchLogic interface -------------------------------------------------

    def header_bytes(self, frame: Frame) -> int:
        return BASE_HEADER_BYTES + self.tag_bytes + self.digest_bytes

    def on_ingress(self, net: SimNetwork, location: Location, frame: Frame) -> Frame:
        """The IN rule: stamp the tag of the local event-set."""
        if self._mask:
            return Frame(
                packet=frame.packet.at(location),
                payload_bytes=frame.payload_bytes,
                flow=frame.flow,
                ident=frame.ident,
                injected_at=frame.injected_at,
                tag_mask=self._register_masks[location.switch],
                digest_mask=0,
                structure=self._structure,
            )
        local = frozenset(self.registers[location.switch])
        return Frame(
            packet=frame.packet.at(location),
            payload_bytes=frame.payload_bytes,
            tag=local,
            digest=frozenset(),
            flow=frame.flow,
            ident=frame.ident,
            injected_at=frame.injected_at,
        )

    def _ingress_frame_masked(
        self,
        location: Location,
        packet: Packet,
        payload_bytes: int,
        flow: Tuple,
        ident: int,
        now: float,
    ) -> Frame:
        """The IN rule without the intermediate unstamped Frame: exactly
        ``on_ingress(net, location, Frame(packet, ...))`` on the mask
        path (the batched-stream ingress hot path)."""
        swpt = packet._swpt
        if swpt[0] != location.switch or swpt[1] != location.port:
            packet = packet.at(location)
        stamped = Frame.__new__(Frame)
        stamped.packet = packet
        stamped.payload_bytes = payload_bytes
        stamped.flow = flow
        stamped.ident = ident
        stamped.injected_at = now
        stamped._tag = _UNSET
        stamped._digest = _UNSET
        stamped._tag_mask = self._register_masks[location.switch]
        stamped._digest_mask = 0
        stamped._structure = self._structure
        return stamped

    def process(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        """The SWITCH rule: learn, detect, forward by the packet's tag."""
        if self._mask:
            return self._process_masked(net, location, frame)
        switch_id = location.switch
        register = self.registers[switch_id]
        combined = frozenset(register) | frame.digest

        structure = self.compiled.nes.structure
        detected: List[Event] = []
        for event in sorted(self.compiled.nes.events, key=repr):
            if event in combined:
                continue
            if not event.matches_packet(frame.packet, location):
                continue
            if not structure.enables(combined, event):
                continue
            if not structure.con(combined | frozenset(detected) | {event}):
                continue
            detected.append(event)

        new_known = combined | frozenset(detected)
        if new_known != frozenset(register):
            register.clear()
            register.update(new_known)
        for event in new_known:
            net.note_event_learned(switch_id, event)
        for event in detected:
            self._notify_controller(net, event)

        tag = frame.tag if frame.tag is not None else frozenset()
        applied = frame.packet.at(location)
        by_packet = None
        outputs = None
        if self._memo:
            by_packet = self._forward_memo.get(tag)
            if by_packet is None:
                by_packet = self._forward_memo[tag] = {}
            outputs = by_packet.get(applied)
        if outputs is None:
            config = self.compiled.config_for_event_set(tag)
            outputs = tuple(
                (out_packet[PT], out_packet)
                for out_packet in sorted(
                    config.table(switch_id).apply(applied), key=repr
                )
            )
            if by_packet is not None:
                if len(by_packet) >= _MEMO_LIMIT:
                    by_packet.clear()
                by_packet[applied] = outputs
        results: List[Tuple[int, Frame]] = []
        for port, out_packet in outputs:
            results.append(
                (
                    port,
                    Frame(
                        packet=out_packet,
                        payload_bytes=frame.payload_bytes,
                        tag=tag,
                        digest=new_known,
                        flow=frame.flow,
                        ident=frame.ident,
                        injected_at=frame.injected_at,
                    ),
                )
            )
        return results

    def _process_masked(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        """The SWITCH rule on interned bitmasks (no per-packet frozensets)."""
        switch_id = location.switch
        structure = self._structure
        packet = frame.packet
        if not packet.is_at(switch_id, location.port):
            packet = packet.at(location)
        # Inlined frame.masks(structure): mask-born frames dominate the
        # hot path and their masks are authoritative regardless of the
        # structure argument (exactly what masks() returns).
        if frame._structure is not None:
            tag_mask = frame._tag_mask
            digest_mask = frame._digest_mask
        else:
            tag_mask, digest_mask = frame.masks(structure)
        tag_key = tag_mask
        register_masks = self._register_masks
        register_mask = register_masks[switch_id]
        combined = register_mask | digest_mask

        match_memo = self._match_memo
        match_mask = match_memo.get(packet)
        if match_mask is None:
            match_mask = 0
            for index, event in enumerate(self._universe):
                if event.matches_packet(packet, location):
                    match_mask |= 1 << index
            if len(match_memo) >= _MEMO_LIMIT:
                match_memo.clear()
            match_memo[packet] = match_mask

        # Detection in bit order == sorted-by-repr order (the universe is
        # interned sorted by repr), exactly as the reference loop.
        detected_mask = 0
        free = match_mask & ~combined
        if free:
            acc = combined
            while free:
                low = free & -free
                free ^= low
                if structure.enables_mask(
                    combined, low.bit_length() - 1
                ) and structure.con_mask(acc | low):
                    detected_mask |= low
                    acc |= low

        new_known = combined | detected_mask
        if new_known != register_mask:
            register_masks[switch_id] = new_known
            self.plan_generations[switch_id] += 1
        noted = self._noted_masks[switch_id]
        fresh = new_known & ~noted
        if fresh:
            self._noted_masks[switch_id] = noted | fresh
            self.plan_generations[switch_id] += 1
            universe = self._universe
            scan = fresh
            while scan:
                low = scan & -scan
                scan ^= low
                net.note_event_learned(switch_id, universe[low.bit_length() - 1])
        if detected_mask:
            universe = self._universe
            scan = detected_mask
            while scan:
                low = scan & -scan
                scan ^= low
                self._notify_controller(net, universe[low.bit_length() - 1])

        if tag_mask is None:
            tag_mask = 0
        by_packet = None
        outputs = None
        if self._memo:
            by_packet = self._forward_memo.get(tag_mask)
            if by_packet is None:
                by_packet = self._forward_memo[tag_mask] = {}
            outputs = by_packet.get(packet)
        if outputs is None:
            config = self._config_memo.get(tag_mask)
            if config is None:
                config = self.compiled.config_for_event_set(structure.decode(tag_mask))
                self._config_memo[tag_mask] = config
            outputs = tuple(
                (out_packet[PT], out_packet)
                for out_packet in sorted(
                    config.table(switch_id).apply(packet), key=repr
                )
            )
            if by_packet is not None:
                if len(by_packet) >= _MEMO_LIMIT:
                    by_packet.clear()
                by_packet[packet] = outputs
        # Side-effect-free run: offer the outcome to the simulator's
        # emission-plan cache (valid until this switch's generation
        # bumps on any register/noted mutation).
        if detected_mask == 0 and fresh == 0 and new_known == register_mask:
            self.last_plan = (packet, tag_key, digest_mask)
        payload_bytes = frame.payload_bytes
        flow = frame.flow
        ident = frame.ident
        injected_at = frame.injected_at
        results: List[Tuple[int, Frame]] = []
        for port, out_packet in outputs:
            out = Frame.__new__(Frame)
            out.packet = out_packet
            out.payload_bytes = payload_bytes
            out.flow = flow
            out.ident = ident
            out.injected_at = injected_at
            out._tag = _UNSET
            out._digest = _UNSET
            out._tag_mask = tag_mask
            out._digest_mask = new_known
            out._structure = structure
            results.append((port, out))
        return results

    # -- controller ---------------------------------------------------------------

    def _notify_controller(self, net: SimNetwork, event: Event) -> None:
        def receive() -> None:
            self.controller_view.add(event)
            if self.controller_assist:
                net.sim.schedule(self.controller_latency, lambda: self._broadcast(net))

        net.sim.schedule(self.event_notify_latency, receive)

    def _broadcast(self, net: SimNetwork) -> None:
        """CTRLSEND to every switch, merging in enabling order."""
        structure = self.compiled.nes.structure
        for switch_id, register in self.registers.items():
            known = set(register)
            remaining = self.controller_view - known
            progress = True
            while progress and remaining:
                progress = False
                for event in sorted(remaining, key=repr):
                    if structure.enables(frozenset(known), event) and structure.con(
                        frozenset(known) | {event}
                    ):
                        known.add(event)
                        remaining.discard(event)
                        progress = True
            if known != register:
                register.clear()
                register.update(known)
                for event in known:
                    net.note_event_learned(switch_id, event)
