"""The correct (tag-and-digest) switch logic for the simulator.

This is the timed counterpart of the SWITCH/IN rules of Figure 7,
identical in logic to :mod:`repro.runtime.semantics` but embedded in the
discrete-event world: per-switch event registers, ingress stamping,
digest gossip, optional controller assistance (CTRLSEND broadcasts after
a configurable controller latency), and measurable header overhead for
the tag and digest fields (Figure 16a's ~6% bandwidth cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..events.event import Event, EventSet
from ..netkat.packet import Location, Packet, PT
from ..runtime.compiler import CompiledNES
from .simulator import Frame, SimNetwork, SwitchLogic

__all__ = ["CorrectLogic", "BASE_HEADER_BYTES"]

# A plausible L2+L3+L4 header for an untagged packet (Ethernet + IPv4 +
# TCP), used by both strategies so overhead comparisons are apples to
# apples.
BASE_HEADER_BYTES = 54


class CorrectLogic:
    """Tag-based forwarding with event detection and digest gossip."""

    def __init__(
        self,
        compiled: CompiledNES,
        controller_assist: bool = False,
        controller_latency: float = 0.05,
        event_notify_latency: float = 0.01,
        extra_processing_delay: float = 6e-6,
    ):
        self.compiled = compiled
        self.controller_assist = controller_assist
        self.controller_latency = controller_latency
        self.event_notify_latency = event_notify_latency
        # Per-packet cost of the guard/stamp/learn pipeline relative to
        # plain forwarding (the Figure 16a overhead knob; ~6 microseconds
        # approximates the paper's modified OpenFlow reference switch).
        self.extra_processing_delay = extra_processing_delay
        self.registers: Dict[int, Set[Event]] = {
            n: set() for n in compiled.topology.switches
        }
        self.controller_view: Set[Event] = set()
        # Tag (one config id) + digest (one bit per event), rounded up to
        # whole bytes -- the "single unused header field" of section 4.1.
        n_events = max(1, len(compiled.nes.events))
        n_states = max(2, len(compiled.states))
        self.tag_bytes = max(1, math.ceil(math.log2(n_states) / 8))
        self.digest_bytes = max(1, math.ceil(n_events / 8))

    # -- SwitchLogic interface -------------------------------------------------

    def header_bytes(self, frame: Frame) -> int:
        return BASE_HEADER_BYTES + self.tag_bytes + self.digest_bytes

    def on_ingress(self, net: SimNetwork, location: Location, frame: Frame) -> Frame:
        """The IN rule: stamp the tag of the local event-set."""
        local = frozenset(self.registers[location.switch])
        return Frame(
            packet=frame.packet.at(location),
            payload_bytes=frame.payload_bytes,
            tag=local,
            digest=frozenset(),
            flow=frame.flow,
            ident=frame.ident,
            injected_at=frame.injected_at,
        )

    def process(
        self, net: SimNetwork, location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        """The SWITCH rule: learn, detect, forward by the packet's tag."""
        switch_id = location.switch
        register = self.registers[switch_id]
        combined = frozenset(register) | frame.digest

        structure = self.compiled.nes.structure
        detected: List[Event] = []
        for event in sorted(self.compiled.nes.events, key=repr):
            if event in combined:
                continue
            if not event.matches_packet(frame.packet, location):
                continue
            if not structure.enables(combined, event):
                continue
            if not structure.con(combined | frozenset(detected) | {event}):
                continue
            detected.append(event)

        new_known = combined | frozenset(detected)
        if new_known != frozenset(register):
            register.clear()
            register.update(new_known)
        for event in new_known:
            net.note_event_learned(switch_id, event)
        for event in detected:
            self._notify_controller(net, event)

        tag = frame.tag if frame.tag is not None else frozenset()
        config = self.compiled.config_for_event_set(tag)
        outputs = config.table(switch_id).apply(frame.packet.at(location))
        results: List[Tuple[int, Frame]] = []
        for out_packet in sorted(outputs, key=repr):
            results.append(
                (
                    out_packet[PT],
                    Frame(
                        packet=out_packet,
                        payload_bytes=frame.payload_bytes,
                        tag=tag,
                        digest=new_known,
                        flow=frame.flow,
                        ident=frame.ident,
                        injected_at=frame.injected_at,
                    ),
                )
            )
        return results

    # -- controller ---------------------------------------------------------------

    def _notify_controller(self, net: SimNetwork, event: Event) -> None:
        def receive() -> None:
            self.controller_view.add(event)
            if self.controller_assist:
                net.sim.schedule(self.controller_latency, lambda: self._broadcast(net))

        net.sim.schedule(self.event_notify_latency, receive)

    def _broadcast(self, net: SimNetwork) -> None:
        """CTRLSEND to every switch, merging in enabling order."""
        structure = self.compiled.nes.structure
        for switch_id, register in self.registers.items():
            known = set(register)
            remaining = self.controller_view - known
            progress = True
            while progress and remaining:
                progress = False
                for event in sorted(remaining, key=repr):
                    if structure.enables(frozenset(known), event) and structure.con(
                        frozenset(known) | {event}
                    ):
                        known.add(event)
                        remaining.discard(event)
                        progress = True
            if known != register:
                register.clear()
                register.update(known)
                for event in known:
                    net.note_event_learned(switch_id, event)
