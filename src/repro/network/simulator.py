"""A deterministic discrete-event network simulator.

This is the reproduction's stand-in for Mininet + real traffic: hosts,
switches, and links with latency and capacity, driven by a seeded event
queue.  The evaluation's claims are all about *orderings* -- which
packets are processed before which rule updates -- and counts of
delivered/dropped packets, which a discrete-event simulation reproduces
faithfully and repeatably.

The simulator is agnostic to forwarding semantics: each switch delegates
to a :class:`SwitchLogic` strategy.  The correct (tag-based) logic lives
in :mod:`repro.network.switch_logic`; the uncoordinated baseline in
:mod:`repro.baselines.uncoordinated`.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Protocol, Tuple

from ..events.event import Event, EventSet
from ..netkat.packet import Location, Packet, PT, SW
from ..topology import Topology

__all__ = [
    "Frame",
    "Simulator",
    "LinkParams",
    "SwitchLogic",
    "SimNetwork",
    "DeliveryRecord",
    "DropRecord",
]


@dataclass(frozen=True)
class Frame:
    """A packet on the wire, plus runtime metadata.

    ``tag``/``digest`` are None/empty for strategies that do not tag
    (the uncoordinated baseline).  ``payload_bytes`` is the application
    payload; the wire size adds per-strategy header overhead.  ``flow``
    identifies the logical flow for statistics; ``ident`` disambiguates
    packets within a flow.
    """

    packet: Packet
    payload_bytes: int = 1000
    tag: Optional[EventSet] = None
    digest: EventSet = frozenset()
    flow: Tuple = ()
    ident: int = 0
    injected_at: float = 0.0

    def with_location(self, location: Location) -> "Frame":
        return replace(self, packet=self.packet.at(location))


@dataclass(frozen=True)
class DeliveryRecord:
    time: float
    host: str
    frame: Frame


@dataclass(frozen=True)
class DropRecord:
    time: float
    location: Location
    frame: Frame
    reason: str = "no-matching-rule"


class Simulator:
    """A seeded discrete-event scheduler."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.random = random.Random(seed)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._counter), action))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events in time order; returns the final clock value."""
        while self._heap and self.events_processed < max_events:
            time, _, action = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            action()
            self.events_processed += 1
        if self._heap and self.events_processed >= max_events:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        return self.now


@dataclass(frozen=True)
class LinkParams:
    """Physical link characteristics."""

    latency: float = 0.001  # seconds of propagation delay
    capacity: float = 12_500_000.0  # bytes/second (100 Mbit/s)


class SwitchLogic(Protocol):
    """Forwarding strategy plugged into every switch of a SimNetwork."""

    def header_bytes(self, frame: Frame) -> int:
        """Wire overhead added on top of the payload."""
        ...

    def on_ingress(self, net: "SimNetwork", location: Location, frame: Frame) -> Frame:
        """Called when a host injects a frame at an edge port (stamping)."""
        ...

    def process(
        self, net: "SimNetwork", location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        """Process an arrival; return (egress port, frame) outputs."""
        ...


class SimNetwork:
    """Hosts + switches + links, executing one SwitchLogic."""

    def __init__(
        self,
        topology: Topology,
        logic: SwitchLogic,
        seed: int = 0,
        link_params: Optional[Mapping[Tuple[Location, Location], LinkParams]] = None,
        default_link: LinkParams = LinkParams(),
        switch_delay: float = 0.0001,
    ):
        self.topology = topology
        self.logic = logic
        self.sim = Simulator(seed=seed)
        self.switch_delay = switch_delay
        self._default_link = default_link
        self._link_params: Dict[Tuple[Location, Location], LinkParams] = dict(
            link_params or {}
        )
        self._link_free_at: Dict[Tuple[Location, Location], float] = {}
        self._switch_free_at: Dict[int, float] = {}
        self.deliveries: List[DeliveryRecord] = []
        self.drops: List[DropRecord] = []
        self.auto_reply: Dict[str, Callable[["SimNetwork", str, Frame], None]] = {}
        # First time each switch learned each event (for Figure 16b).
        self.event_learned_at: Dict[Tuple[int, Event], float] = {}

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # -- injection -------------------------------------------------------------

    def inject(self, host_name: str, frame: Frame, at: float = 0.0) -> None:
        """Schedule a host to emit a frame at absolute time ``at``."""
        host = self.topology.host(host_name)
        location = host.attachment

        def emit() -> None:
            stamped = self.logic.on_ingress(
                self, location, replace(frame, injected_at=self.sim.now)
            )
            self._arrive_at_switch(location, stamped)

        delay = at - self.sim.now
        self.sim.schedule(max(0.0, delay), emit)

    # -- switch arrival & processing --------------------------------------------

    def _arrive_at_switch(self, location: Location, frame: Frame) -> None:
        def process() -> None:
            outputs = self.logic.process(self, location, frame.with_location(location))
            if not outputs:
                self.drops.append(DropRecord(self.sim.now, location, frame))
                return
            for port, out_frame in outputs:
                self._emit(Location(location.switch, port), out_frame)

        # Strategies may declare extra per-packet processing cost (e.g.
        # tag matching and register updates in the correct logic).  A
        # switch is a serial resource: software switches process one
        # packet at a time, so processing cost is real back-pressure.
        extra = getattr(self.logic, "extra_processing_delay", 0.0)
        switch_id = location.switch
        start = max(self.sim.now, self._switch_free_at.get(switch_id, 0.0))
        finish = start + self.switch_delay + extra
        self._switch_free_at[switch_id] = finish
        self.sim.schedule(finish - self.sim.now, process)

    def _emit(self, egress: Location, frame: Frame) -> None:
        host = self.topology.host_at(egress)
        if host is not None:
            self._deliver(host.name, frame)
            return
        targets = sorted(
            self.topology.link_targets(egress), key=lambda l: (l.switch, l.port)
        )
        if not targets:
            self.drops.append(
                DropRecord(self.sim.now, egress, frame, reason="no-link-at-port")
            )
            return
        self._transmit(egress, targets[0], frame)

    def _transmit(self, src: Location, dst: Location, frame: Frame) -> None:
        """Send across a link: serialization (capacity) + propagation."""
        params = self._link_params.get((src, dst), self._default_link)
        wire_bytes = frame.payload_bytes + self.logic.header_bytes(frame)
        transmit_time = wire_bytes / params.capacity
        start = max(self.sim.now, self._link_free_at.get((src, dst), 0.0))
        finish = start + transmit_time
        self._link_free_at[(src, dst)] = finish
        arrival_delay = (finish - self.sim.now) + params.latency
        moved = frame.with_location(dst)
        self.sim.schedule(arrival_delay, lambda: self._arrive_at_switch(dst, moved))

    # -- delivery ----------------------------------------------------------------

    def _deliver(self, host_name: str, frame: Frame) -> None:
        self.deliveries.append(DeliveryRecord(self.sim.now, host_name, frame))
        handler = self.auto_reply.get(host_name)
        if handler is not None:
            handler(self, host_name, frame)

    # -- bookkeeping hooks used by logics ------------------------------------------

    def note_event_learned(self, switch: int, event: Event) -> None:
        key = (switch, event)
        if key not in self.event_learned_at:
            self.event_learned_at[key] = self.sim.now

    # -- statistics ------------------------------------------------------------------

    def deliveries_to(self, host_name: str) -> List[DeliveryRecord]:
        return [d for d in self.deliveries if d.host == host_name]

    def delivered_flows(self, flow_prefix: Tuple) -> List[DeliveryRecord]:
        n = len(flow_prefix)
        return [d for d in self.deliveries if d.frame.flow[:n] == flow_prefix]
