"""A deterministic discrete-event network simulator.

This is the reproduction's stand-in for Mininet + real traffic: hosts,
switches, and links with latency and capacity, driven by a seeded event
queue.  The evaluation's claims are all about *orderings* -- which
packets are processed before which rule updates -- and counts of
delivered/dropped packets, which a discrete-event simulation reproduces
faithfully and repeatably.

The simulator is agnostic to forwarding semantics: each switch delegates
to a :class:`SwitchLogic` strategy.  The correct (tag-based) logic lives
in :mod:`repro.network.switch_logic`; the uncoordinated baseline in
:mod:`repro.baselines.uncoordinated`.

Heavy-traffic streaming: :meth:`SimNetwork.inject_stream` bulk-injects a
:class:`FrameBatch` (an array-of-fields stream description), interning
identical headers to shared :class:`Packet` objects so the per-switch
classification memos downstream hit.  The performance knobs live in
:class:`repro.sim_options.SimOptions`; every knob's off-position is the
record-identity reference path (same ``DeliveryRecord``/``DropRecord``
sequences, only slower).
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque

# Bound once: the scheduler hot path calls this per event.
from heapq import heappush as _heappush
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from ..events.event import Event, EventSet
from ..netkat.packet import Location, Packet, PT, SW
from ..obs import metrics as obs_metrics
from ..sim_options import SimOptions
from ..topology import Host, Topology

__all__ = [
    "Frame",
    "FrameBatch",
    "Simulator",
    "LinkParams",
    "SimOptions",
    "SwitchLogic",
    "SimNetwork",
    "DeliveryRecord",
    "DropRecord",
]


# Sentinel for "this side of the tag/digest representation has not been
# materialized yet" (distinct from None, which is a legal tag value).
_UNSET = object()


class Frame:
    """A packet on the wire, plus runtime metadata.

    ``tag``/``digest`` are None/empty for strategies that do not tag
    (the uncoordinated baseline).  ``payload_bytes`` is the application
    payload; the wire size adds per-strategy header overhead.  ``flow``
    identifies the logical flow for statistics; ``ident`` disambiguates
    packets within a flow.

    Internally a frame stores *either* the frozenset view of its tag and
    digest or the interned bitmask view (``tag_mask``/``digest_mask``
    plus the owning :class:`~repro.events.structure.EventStructure`).
    The hot path (``SimOptions(mask_digests=True)``) only ever touches
    the ints; the frozenset properties decode lazily and are cached, so
    equality, hashing, and repr remain exactly those of the original
    frozen-dataclass frame.
    """

    __slots__ = (
        "packet",
        "payload_bytes",
        "flow",
        "ident",
        "injected_at",
        "_tag",
        "_digest",
        "_tag_mask",
        "_digest_mask",
        "_structure",
    )

    def __init__(
        self,
        packet: Packet,
        payload_bytes: int = 1000,
        tag: Optional[EventSet] = None,
        digest: EventSet = frozenset(),
        flow: Tuple = (),
        ident: int = 0,
        injected_at: float = 0.0,
        *,
        tag_mask: Optional[int] = None,
        digest_mask: int = 0,
        structure=None,
    ):
        self.packet = packet
        self.payload_bytes = payload_bytes
        self.flow = flow
        self.ident = ident
        self.injected_at = injected_at
        if structure is not None:
            self._structure = structure
            self._tag_mask = tag_mask
            self._digest_mask = digest_mask
            self._tag = _UNSET
            self._digest = _UNSET
        else:
            self._structure = None
            self._tag_mask = None
            self._digest_mask = 0
            self._tag = tag
            self._digest = digest

    # -- tag/digest views ------------------------------------------------------

    @property
    def tag(self) -> Optional[EventSet]:
        value = self._tag
        if value is _UNSET:
            mask = self._tag_mask
            value = None if mask is None else self._structure.decode(mask)
            self._tag = value
        return value

    @property
    def digest(self) -> EventSet:
        value = self._digest
        if value is _UNSET:
            value = self._structure.decode(self._digest_mask)
            self._digest = value
        return value

    @property
    def tag_mask(self) -> Optional[int]:
        """The interned tag bitmask, when this frame carries one."""
        return self._tag_mask if self._structure is not None else None

    @property
    def digest_mask(self) -> Optional[int]:
        """The interned digest bitmask, when this frame carries one."""
        return self._digest_mask if self._structure is not None else None

    def masks(self, structure) -> Tuple[Optional[int], int]:
        """``(tag_mask, digest_mask)`` under ``structure``, encoding and
        caching the frozenset view on first use (boundary frames only --
        mask-born frames never pay an encode)."""
        if self._structure is not None:
            return self._tag_mask, self._digest_mask
        tag = self._tag
        digest = self._digest
        tag_mask = None if tag is None else (structure.encode(tag) if tag else 0)
        digest_mask = structure.encode(digest) if digest else 0
        self._tag_mask = tag_mask
        self._digest_mask = digest_mask
        self._structure = structure
        return tag_mask, digest_mask

    # -- functional update -----------------------------------------------------

    def replace(self, **changes) -> "Frame":
        """``dataclasses.replace`` equivalent, preserving whichever
        tag/digest representation the frame holds."""
        new = Frame.__new__(Frame)
        new.packet = changes.pop("packet", self.packet)
        new.payload_bytes = changes.pop("payload_bytes", self.payload_bytes)
        new.flow = changes.pop("flow", self.flow)
        new.ident = changes.pop("ident", self.ident)
        new.injected_at = changes.pop("injected_at", self.injected_at)
        if "tag" in changes or "digest" in changes:
            new._tag = changes.pop("tag", self.tag)
            new._digest = changes.pop("digest", self.digest)
            new._tag_mask = None
            new._digest_mask = 0
            new._structure = None
        else:
            new._tag = self._tag
            new._digest = self._digest
            new._tag_mask = self._tag_mask
            new._digest_mask = self._digest_mask
            new._structure = self._structure
        if changes:
            raise TypeError(f"unknown frame fields: {sorted(changes)}")
        return new

    def _with_packet(self, packet: Packet) -> "Frame":
        """Internal fast path of ``replace(packet=...)``: no kwargs dict,
        representation carried over unchanged."""
        new = Frame.__new__(Frame)
        new.packet = packet
        new.payload_bytes = self.payload_bytes
        new.flow = self.flow
        new.ident = self.ident
        new.injected_at = self.injected_at
        new._tag = self._tag
        new._digest = self._digest
        new._tag_mask = self._tag_mask
        new._digest_mask = self._digest_mask
        new._structure = self._structure
        return new

    def with_location(self, location: Location) -> "Frame":
        packet = self.packet
        if packet.is_at(location.switch, location.port):
            return self
        return self._with_packet(packet.at(location))

    # -- value semantics (identical to the original frozen dataclass) ----------

    def _identity(self) -> Tuple:
        return (
            self.packet,
            self.payload_bytes,
            self.tag,
            self.digest,
            self.flow,
            self.ident,
            self.injected_at,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Frame:
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def __repr__(self) -> str:
        return (
            f"Frame(packet={self.packet!r}, payload_bytes={self.payload_bytes!r}, "
            f"tag={self.tag!r}, digest={self.digest!r}, flow={self.flow!r}, "
            f"ident={self.ident!r}, injected_at={self.injected_at!r})"
        )


class FrameBatch:
    """An array-of-fields description of a packet stream.

    Instead of one :class:`Frame` object per packet up front, a batch
    holds parallel columns: header fields (each either a scalar applied
    to every frame or a per-frame sequence), payload sizes, flow ids,
    idents, and injection times (``start`` + ``i * spacing`` unless an
    explicit ``times`` column is given).  Iterating :meth:`rows` interns
    identical header tuples to *shared* :class:`Packet` objects, which
    is what lets the per-switch classification memos downstream hit on
    identity instead of re-hashing per packet.
    """

    __slots__ = (
        "count",
        "columns",
        "payloads",
        "flow",
        "flows",
        "idents",
        "times",
        "start",
        "spacing",
    )

    def __init__(
        self,
        columns: Mapping[str, Union[int, Sequence[int]]],
        count: int,
        *,
        payload_bytes: Union[int, Sequence[int]] = 1000,
        flow: Tuple = (),
        flows: Optional[Sequence[Tuple]] = None,
        idents: Optional[Sequence[int]] = None,
        start: float = 0.0,
        spacing: float = 0.0,
        times: Optional[Sequence[float]] = None,
    ):
        self.count = int(count)
        if self.count < 0:
            raise ValueError("a batch cannot have a negative frame count")

        def column(name, value):
            col = tuple(value)
            if len(col) != self.count:
                raise ValueError(
                    f"column {name!r} has {len(col)} entries for "
                    f"{self.count} frames"
                )
            return col

        self.columns: Dict[str, Union[int, Tuple[int, ...]]] = {
            name: value if isinstance(value, int) else column(name, value)
            for name, value in dict(columns).items()
        }
        self.payloads = (
            payload_bytes
            if isinstance(payload_bytes, int)
            else column("payload_bytes", payload_bytes)
        )
        self.flow = tuple(flow)
        self.flows = None if flows is None else column("flows", flows)
        self.idents = None if idents is None else column("idents", idents)
        self.times = None if times is None else column("times", times)
        self.start = float(start)
        self.spacing = float(spacing)

    def __len__(self) -> int:
        return self.count

    def rows(
        self, location: Optional[Location] = None
    ) -> Iterator[Tuple[float, Packet, int, Tuple, int]]:
        """Yield ``(at, packet, payload_bytes, flow, ident)`` per frame.

        With ``location`` the interned packets already carry the
        ``sw``/``pt`` fields of the injection point, so ingress stamping
        does not re-allocate them.
        """
        interned: Dict[Tuple[int, ...], Packet] = {}
        names = tuple(self.columns)
        cols = tuple(self.columns.values())
        base = (
            {SW: location.switch, PT: location.port} if location is not None else {}
        )
        payloads = self.payloads
        flow = self.flow
        flows = self.flows
        idents = self.idents
        times = self.times
        start = self.start
        spacing = self.spacing
        if (
            all(isinstance(c, int) for c in cols)
            and isinstance(payloads, int)
            and flows is None
            and idents is None
            and times is None
        ):
            # Constant-header stream: one interned packet, arithmetic
            # times, sequential idents -- no per-row key building.
            fields = dict(base)
            fields.update(zip(names, cols))
            packet = Packet(fields)
            for i in range(self.count):
                yield (start + i * spacing, packet, payloads, flow, i)
            return
        for i in range(self.count):
            key = tuple(c if isinstance(c, int) else c[i] for c in cols)
            packet = interned.get(key)
            if packet is None:
                fields = dict(base)
                fields.update(zip(names, key))
                packet = Packet(fields)
                interned[key] = packet
            yield (
                times[i] if times is not None else start + i * spacing,
                packet,
                payloads if isinstance(payloads, int) else payloads[i],
                flow if flows is None else flows[i],
                i if idents is None else idents[i],
            )


class DeliveryRecord(NamedTuple):
    time: float
    host: str
    frame: Frame


class DropRecord(NamedTuple):
    time: float
    location: Location
    frame: Frame
    reason: str = "no-matching-rule"


class Simulator:
    """A seeded discrete-event scheduler."""

    # Every event body reads now/_heap/_counter; slots keep those loads
    # off the instance-dict path.
    __slots__ = ("now", "random", "_heap", "_counter", "events_processed")

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.random = random.Random(seed)
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        _heappush(self._heap, (self.now + delay, next(self._counter), action))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events in time order; returns the final clock value."""
        if obs_metrics.active() is not None:
            # One registry check per run() call (not per event): the
            # fast drain loops below stay untouched when observability
            # is uninstalled.
            return self._run_instrumented(until, max_events)
        heap = self._heap
        pop = heapq.heappop
        processed = self.events_processed
        try:
            if until is None:
                # Drain until the pop itself raises: one branch per
                # event instead of two.  An IndexError escaping an
                # action while entries remain is re-raised; one raised
                # exactly at heap exhaustion is indistinguishable from
                # the normal exit (the action was already popped).
                try:
                    # A range loop keeps the event-count bookkeeping in
                    # the iterator instead of a per-event compare+add.
                    for processed in range(processed + 1, max_events + 1):
                        time, _seq, action = pop(heap)
                        self.now = time
                        action()
                except IndexError:
                    # The pop that raised processed nothing.
                    processed -= 1
                    if heap:
                        raise
            else:
                while heap and processed < max_events:
                    time = heap[0][0]
                    if time > until:
                        self.now = until
                        return until
                    time, _seq, action = pop(heap)
                    self.now = time
                    action()
                    processed += 1
        finally:
            self.events_processed = processed
        if heap and processed >= max_events:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        return self.now

    def _run_instrumented(
        self, until: Optional[float], max_events: int
    ) -> float:
        """The general event loop plus heap-depth watermarking, taken
        only when a metrics registry is installed.  Pop order, clock
        advancement, ``until`` clamping, and the ``max_events`` error
        are identical to the fast loops in :meth:`run`."""
        registry = obs_metrics.active()
        heap = self._heap
        pop = heapq.heappop
        processed = self.events_processed
        start_processed = processed
        high_water = len(heap)
        try:
            while heap and processed < max_events:
                depth = len(heap)
                if depth > high_water:
                    high_water = depth
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return until
                time, _seq, action = pop(heap)
                self.now = time
                action()
                processed += 1
        finally:
            self.events_processed = processed
            if registry is not None:
                registry.counter(
                    "repro_sim_events_processed_total",
                    "Discrete events processed by Simulator.run",
                ).inc(processed - start_processed)
                registry.gauge(
                    "repro_sim_heap_depth_high_water",
                    "High-water mark of the scheduler heap depth",
                ).set_max(high_water)
        if heap and processed >= max_events:
            raise RuntimeError(f"simulation exceeded {max_events} events")
        return self.now


@dataclass(frozen=True)
class LinkParams:
    """Physical link characteristics."""

    latency: float = 0.001  # seconds of propagation delay
    capacity: float = 12_500_000.0  # bytes/second (100 Mbit/s)


class SwitchLogic(Protocol):
    """Forwarding strategy plugged into every switch of a SimNetwork."""

    def header_bytes(self, frame: Frame) -> int:
        """Wire overhead added on top of the payload."""
        ...

    def on_ingress(self, net: "SimNetwork", location: Location, frame: Frame) -> Frame:
        """Called when a host injects a frame at an edge port (stamping)."""
        ...

    def process(
        self, net: "SimNetwork", location: Location, frame: Frame
    ) -> List[Tuple[int, Frame]]:
        """Process an arrival; return (egress port, frame) outputs."""
        ...


class _StreamArrival:
    """One scheduled frame of an :meth:`SimNetwork.inject_stream` batch.

    A small callable instead of a closure: the batch path defers frame
    construction to emission time (matching ``inject``'s
    ``injected_at=now`` stamping) without allocating a cell per frame.
    """

    __slots__ = ("net", "location", "frame")

    def __init__(self, net, location, packed):
        self.net = net
        self.location = location
        # Packed (packet, payload_bytes, flow, ident, chain): sharing
        # the three-slot layout of _Process lets __call__ rebirth this
        # object as the processing event instead of allocating one.
        # ``chain`` is the shared [rows_iterator, inject_time, next_seq]
        # state of a lazily scheduled stream, or None when the whole
        # batch was pushed eagerly.
        self.frame = packed

    def __call__(self) -> None:
        net = self.net
        location = self.location
        packet, payload_bytes, flow, ident, chain = self.frame
        sim = net.sim
        now = sim.now
        heap = sim._heap
        if chain is not None:
            # Push the successor arrival now, with its pre-reserved
            # tie-break seq: the heap holds one pending entry per
            # stream instead of the whole remaining batch.
            row = next(chain[0], None)
            if row is not None:
                at, npacket, npayload, nflow, nident = row
                now0 = chain[1]
                delay = at - now0
                if delay < 0.0:
                    delay = 0.0
                seq = chain[2]
                chain[2] = seq + 1
                nxt = _StreamArrival.__new__(_StreamArrival)
                nxt.net = net
                nxt.location = location
                nxt.frame = (npacket, npayload, nflow, nident, chain)
                _heappush(heap, (now0 + delay, seq, nxt))
        fast = net._ingress_fast
        if fast is not None:
            stamped = fast(location, packet, payload_bytes, flow, ident, now)
        else:
            frame = Frame(
                packet=packet,
                payload_bytes=payload_bytes,
                flow=flow,
                ident=ident,
                injected_at=now,
            )
            stamped = net.logic.on_ingress(net, location, frame)
        # Inlined _arrive_at_switch (same queueing arithmetic).
        switch_id = location.switch
        free = net._switch_free_at
        start = free[switch_id]
        if now > start:
            start = now
        finish = start + net.switch_delay + net._hop_extra
        free[switch_id] = finish
        self.frame = stamped
        self.__class__ = _Process
        entry = (now + (finish - now), next(sim._counter), self)
        # Stream arrivals only exist in batch mode, where the switch
        # backlog lives in a FIFO with just its head on the heap.
        fifo = net._switch_fifo[switch_id]
        fifo.append(entry)
        if len(fifo) == 1:
            _heappush(heap, entry)


# Behaviour-identical memo caps: identical-header streams stay far under
# these; a pathological all-distinct-headers workload must not pin an
# unbounded working set.
_MEMO_LIMIT = 65536


class _LinkState:
    """Mutable per-link record: the resolved target plus serialization
    state, so transmitting costs zero Location-keyed dict lookups."""

    __slots__ = ("dst", "latency", "capacity", "free_at", "move_memo")

    def __init__(self, dst: Location, params: LinkParams, memoize: bool):
        self.dst = dst
        self.latency = params.latency
        self.capacity = params.capacity
        self.free_at = 0.0
        # Moving a packet across this link is a pure function of the
        # packet; batch mode interns the relocation per source packet.
        self.move_memo: Optional[Dict[Packet, Packet]] = {} if memoize else None


# Emission-plan target kinds.
_PLAN_LINK = 0
_PLAN_HOST = 1
_PLAN_DROP = 2


class _Plan:
    """A cached, fully resolved processing outcome for one (switch,
    packet, tag_mask, digest_mask) input class.

    Valid only while the owning switch's plan generation is unchanged
    (the logic bumps it on any register/noted mutation) -- which is
    exactly when the cached run had no side effects, so replaying the
    plan is record-identical to re-running the logic: same targets in
    the same order, same output masks, same link/float arithmetic.
    """

    __slots__ = (
        "packet",
        "tag_mask",
        "digest_mask",
        "generation",
        "out_tag_mask",
        "out_digest_mask",
        "structure",
        "emits",
        "single",
    )

    def __init__(
        self, packet, tag_mask, digest_mask, generation, out_tag_mask,
        out_digest_mask, structure, emits,
    ):
        # Plans are keyed by id(packet); holding the packet here keeps
        # its address from being reused while the entry is live, so an
        # id match implies object identity.
        self.packet = packet
        self.tag_mask = tag_mask
        self.digest_mask = digest_mask
        self.generation = generation
        self.out_tag_mask = out_tag_mask
        self.out_digest_mask = out_digest_mask
        self.structure = structure
        self.emits = emits  # ((kind, target, packet), ...)
        # The dominant steady-state shape is exactly one emit; caching
        # it spares the replay a len()+index per hop.
        self.single = emits[0] if len(emits) == 1 else None


class _Process:
    """The scheduled per-hop processing event (one per switch arrival).

    A slotted callable instead of a closure so the plan fast path can
    run with zero intermediate allocations; the full path is identical
    in behaviour to the original closure body.
    """

    __slots__ = ("net", "location", "frame")

    def __init__(self, net: "SimNetwork", location: Location, frame: Frame):
        self.net = net
        self.location = location
        self.frame = frame

    def __call__(self) -> None:
        net = self.net
        location = self.location
        frame = self.frame
        switch_id = location.switch
        sim = net.sim
        fifos = net._switch_fifo
        if fifos is not None:
            # Lazy-heap discipline (batch mode): this event was the
            # head of its switch's FIFO backlog; retire it and promote
            # the next queued processing event into the heap.  Per-
            # switch finish times are monotone, so the promoted entry
            # is always pushed at or before its fire time -- heap-pop
            # order is identical to having pushed everything eagerly.
            fifo = fifos.get(switch_id)
            if fifo:
                fifo.popleft()
                if fifo:
                    _heappush(sim._heap, fifo[0])
        plans = net._plans
        if plans is not None and frame._structure is not None:
            packet = frame.packet
            swpt = packet._swpt
            if swpt[0] != switch_id or swpt[1] != location.port:
                packet = packet.at(location)
            plan = plans[switch_id].get(id(packet))
            if (
                plan is not None
                and plan.tag_mask == frame._tag_mask
                and plan.digest_mask == frame._digest_mask
                and plan.generation == net._plan_gens[switch_id]
            ):
                hit_counter = net._m_plan_hit
                if hit_counter is not None:
                    hit_counter.inc()
                # Replay the cached outcome (record-identical to the
                # full path: same targets in order, same arithmetic).
                now = sim.now
                single = plan.single
                if single is not None:
                    # Steady-state unicast: nothing else references a
                    # mid-path frame (records capture only terminal
                    # frames), so the in-flight Frame is updated in
                    # place and this event object is reborn as the next
                    # link arrival -- zero per-hop allocation.
                    kind, target, out_packet = single
                    frame.packet = out_packet
                    if plan.out_tag_mask != frame._tag_mask:
                        frame._tag_mask = plan.out_tag_mask
                        frame._tag = _UNSET
                    if plan.out_digest_mask != frame._digest_mask:
                        frame._digest_mask = plan.out_digest_mask
                        frame._digest = _UNSET
                    if kind == _PLAN_LINK:
                        header = net._header_overhead
                        if header is None:
                            wire_bytes = frame.payload_bytes + net.logic.header_bytes(
                                frame
                            )
                        else:
                            wire_bytes = frame.payload_bytes + header
                        start = target.free_at
                        if now > start:
                            start = now
                        finish = start + wire_bytes / target.capacity
                        target.free_at = finish
                        self.__class__ = _Arrival
                        self.location = target.dst
                        _heappush(
                            sim._heap,
                            (
                                now + ((finish - now) + target.latency),
                                next(sim._counter),
                                self,
                            ),
                        )
                    elif kind == _PLAN_HOST:
                        net._deliver(target, frame)
                    else:
                        net.drops.append(
                            DropRecord(now, target, frame, reason="no-link-at-port")
                        )
                    return
                emits = plan.emits
                if not emits:
                    net.drops.append(
                        tuple.__new__(
                            DropRecord,
                            (now, location, frame, "no-matching-rule"),
                        )
                    )
                    return
                payload_bytes = frame.payload_bytes
                flow = frame.flow
                ident = frame.ident
                injected_at = frame.injected_at
                out_tag = plan.out_tag_mask
                out_digest = plan.out_digest_mask
                structure = plan.structure
                header = net._header_overhead
                heap = sim._heap
                counter = sim._counter
                frame_new = Frame.__new__
                for kind, target, out_packet in emits:
                    out = frame_new(Frame)
                    out.packet = out_packet
                    out.payload_bytes = payload_bytes
                    out.flow = flow
                    out.ident = ident
                    out.injected_at = injected_at
                    out._tag = _UNSET
                    out._digest = _UNSET
                    out._tag_mask = out_tag
                    out._digest_mask = out_digest
                    out._structure = structure
                    if kind == _PLAN_LINK:
                        # Same serialization arithmetic as _transmit.
                        if header is None:
                            wire_bytes = payload_bytes + net.logic.header_bytes(out)
                        else:
                            wire_bytes = payload_bytes + header
                        start = target.free_at
                        if now > start:
                            start = now
                        finish = start + wire_bytes / target.capacity
                        target.free_at = finish
                        arrival = _Arrival.__new__(_Arrival)
                        arrival.net = net
                        arrival.location = target.dst
                        arrival.frame = out
                        heap_entry = (
                            now + ((finish - now) + target.latency),
                            next(counter),
                            arrival,
                        )
                        _heappush(heap, heap_entry)
                    elif kind == _PLAN_HOST:
                        net._deliver(target, out)
                    else:
                        net.drops.append(
                            DropRecord(now, target, out, reason="no-link-at-port")
                        )
                return
        if plans is not None:
            miss_counter = net._m_plan_miss
            if miss_counter is not None:
                miss_counter.inc()
        self._full(net, location, frame, plans)

    def _full(self, net, location, frame, plans) -> None:
        logic = net.logic
        if plans is not None:
            logic.last_plan = None
        outputs = logic.process(net, location, frame.with_location(location))
        now = net.sim.now
        if not outputs:
            net.drops.append(DropRecord(now, location, frame))
            self._record_plan(net, location, plans, ())
            return
        ports = net._ports.get(location.switch)
        for port, out_frame in outputs:
            target = None if ports is None else ports.get(port)
            if target is None:
                net.drops.append(
                    DropRecord(
                        now,
                        Location(location.switch, port),
                        out_frame,
                        reason="no-link-at-port",
                    )
                )
            elif target.__class__ is Host:
                net._deliver(target.name, out_frame)
            else:
                net._transmit(target, out_frame)
        self._record_plan(net, location, plans, outputs)

    def _record_plan(self, net, location, plans, outputs) -> None:
        """Cache the just-run outcome when the logic marked it pure."""
        if plans is None:
            return
        logic = net.logic
        signature = logic.last_plan
        if signature is None:
            return
        logic.last_plan = None
        packet, tag_key, digest_key = signature
        switch_id = location.switch
        if outputs:
            first = outputs[0][1]
            out_tag = first._tag_mask
            out_digest = first._digest_mask
            structure = first._structure
            if structure is None:
                return
        else:
            out_tag = out_digest = 0
            structure = None
        ports = net._ports.get(switch_id)
        emits = []
        for port, out_frame in outputs:
            target = None if ports is None else ports.get(port)
            out_packet = out_frame.packet
            if target is None:
                emits.append((_PLAN_DROP, Location(switch_id, port), out_packet))
            elif target.__class__ is Host:
                emits.append((_PLAN_HOST, target.name, out_packet))
            else:
                memo = target.move_memo
                relocated = None if memo is None else memo.get(out_packet)
                if relocated is None:
                    relocated = out_packet.at(target.dst)
                emits.append((_PLAN_LINK, target, relocated))
        by_packet = plans.get(switch_id)
        if by_packet is None:
            by_packet = plans[switch_id] = {}
        if len(by_packet) >= _MEMO_LIMIT:
            by_packet.clear()
        by_packet[id(packet)] = _Plan(
            packet,
            tag_key,
            digest_key,
            net._plan_gens[switch_id],
            out_tag,
            out_digest,
            structure,
            tuple(emits),
        )


class _Arrival:
    """The scheduled link-arrival event: switch queueing, then _Process."""

    __slots__ = ("net", "location", "frame")

    def __init__(self, net: "SimNetwork", location: Location, frame: Frame):
        self.net = net
        self.location = location
        self.frame = frame

    def __call__(self) -> None:
        net = self.net
        location = self.location
        # Inlined _arrive_at_switch (the per-hop hot path).
        switch_id = location.switch
        sim = net.sim
        now = sim.now
        free = net._switch_free_at
        start = free[switch_id]
        if now > start:
            start = now
        finish = start + net.switch_delay + net._hop_extra
        free[switch_id] = finish
        # This arrival entry is already off the heap, so the object can
        # be reborn as the processing event (identical slot layout)
        # instead of allocating a fresh _Process.
        self.__class__ = _Process
        entry = (now + (finish - now), next(sim._counter), self)
        fifos = net._switch_fifo
        if fifos is None:
            _heappush(sim._heap, entry)
        else:
            fifo = fifos[switch_id]
            fifo.append(entry)
            if len(fifo) == 1:
                _heappush(sim._heap, entry)


class SimNetwork:
    """Hosts + switches + links, executing one SwitchLogic."""

    def __init__(
        self,
        topology: Topology,
        logic: SwitchLogic,
        seed: int = 0,
        link_params: Optional[Mapping[Tuple[Location, Location], LinkParams]] = None,
        default_link: LinkParams = LinkParams(),
        switch_delay: float = 0.0001,
        options: Optional[SimOptions] = None,
    ):
        self.topology = topology
        self.logic = logic
        self.options = options if options is not None else SimOptions()
        self.sim = Simulator(seed=seed)
        self.switch_delay = switch_delay
        self._default_link = default_link
        self._link_params: Dict[Tuple[Location, Location], LinkParams] = dict(
            link_params or {}
        )
        # Preloaded with every switch so the arrival hot path indexes
        # instead of .get-with-default; extra_processing_delay is fixed
        # at logic construction, so it is cached once here.
        self._switch_free_at: Dict[int, float] = {n: 0.0 for n in topology.switches}
        self._hop_extra: float = getattr(logic, "extra_processing_delay", 0.0)
        # Batch mode keeps each switch's processing backlog in a FIFO
        # deque with only the head event on the heap (switch service is
        # serial, so per-switch finish times are monotone and queued
        # entries are already in fire order).  A heavy-traffic backlog
        # then costs O(1) per event instead of sifting a deep heap.
        self._switch_fifo: Optional[Dict[int, deque]] = (
            {n: deque() for n in topology.switches} if self.options.batch else None
        )
        self.deliveries: List[DeliveryRecord] = []
        self.drops: List[DropRecord] = []
        self.auto_reply: Dict[str, Callable[["SimNetwork", str, Frame], None]] = {}
        # First time each switch learned each event (for Figure 16b).
        self.event_learned_at: Dict[Tuple[int, Event], float] = {}
        # The topology is immutable for a sim run, so link resolution is
        # a static dispatch table: switch -> port -> Host (deliver) or
        # _LinkState (transmit; first link target in (switch, port)
        # order, as the per-packet sort used to pick).  Hosts shadow
        # links, as host_at did.  Int-keyed nested dicts keep the hot
        # path free of Location hashing.
        memoize = self.options.batch
        self._ports: Dict[int, Dict[int, Union[Host, _LinkState]]] = {}
        for src, dst in topology.links():
            by_port = self._ports.setdefault(src.switch, {})
            if src.port not in by_port:
                params = self._link_params.get((src, dst), default_link)
                by_port[src.port] = _LinkState(dst, params, memoize)
        for host in topology.hosts:
            attachment = host.attachment
            self._ports.setdefault(attachment.switch, {})[attachment.port] = host
        # Per-host / per-flow-prefix delivery indices, maintained at
        # _deliver time so the stats accessors stop scanning the full
        # delivery list.  _flow_buckets memoizes, per flow tuple, the
        # prefix bucket lists a delivery appends to.
        self._deliveries_by_host: Dict[str, List[DeliveryRecord]] = {}
        self._deliveries_by_flow: Dict[Tuple, List[DeliveryRecord]] = {}
        self._flow_buckets: Dict[Tuple, Tuple[List[DeliveryRecord], ...]] = {}
        self._last_flow: Optional[Tuple] = None
        self._last_buckets: Optional[Tuple[List[DeliveryRecord], ...]] = None
        self._indexed_up_to = 0
        # Steady-state emission plans (see _Plan): enabled when the
        # batch knob is on and the logic publishes plan generations
        # (CorrectLogic does on the mask path).  _header_overhead set
        # means header_bytes is frame-independent, so plan replay can
        # skip the per-frame call.
        self._plan_gens = getattr(logic, "plan_generations", None)
        self._plans: Optional[Dict[int, Dict[int, _Plan]]] = (
            {n: {} for n in topology.switches}
            if (memoize and self._plan_gens is not None)
            else None
        )
        self._header_overhead: Optional[int] = getattr(logic, "header_overhead", None)
        self._ingress_fast = getattr(logic, "ingress_frame", None) if memoize else None
        # Plan-cache hit/miss counters, pre-resolved once here so the
        # per-event cost is one attribute load + None check (the
        # zero-overhead-uninstalled discipline for this hot path; the
        # registry metric objects are internally locked).
        registry = obs_metrics.active()
        if registry is not None and self._plans is not None:
            help_text = "Simulator per-switch emission-plan cache, by result"
            self._m_plan_hit: Optional[obs_metrics.Counter] = registry.counter(
                "repro_sim_plan_cache_total", help_text, result="hit"
            )
            self._m_plan_miss: Optional[obs_metrics.Counter] = registry.counter(
                "repro_sim_plan_cache_total", help_text, result="miss"
            )
        else:
            self._m_plan_hit = None
            self._m_plan_miss = None

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)

    # -- injection -------------------------------------------------------------

    def inject(self, host_name: str, frame: Frame, at: float = 0.0) -> None:
        """Schedule a host to emit a frame at absolute time ``at``."""
        host = self.topology.host(host_name)
        location = host.attachment

        def emit() -> None:
            stamped = self.logic.on_ingress(
                self, location, frame.replace(injected_at=self.sim.now)
            )
            self._arrive_at_switch(location, stamped)

        delay = at - self.sim.now
        self.sim.schedule(max(0.0, delay), emit)

    def inject_stream(self, host_name: str, batch: FrameBatch) -> int:
        """Bulk-inject a :class:`FrameBatch` at a host; returns the count.

        Scheduling order and times are identical to calling
        :meth:`inject` once per frame (the record-identity contract);
        with ``options.batch`` the per-frame closure and the up-front
        Frame allocation are skipped and headers are interned.
        """
        host = self.topology.host(host_name)
        location = host.attachment
        schedule = self.sim.schedule
        if self.options.batch:
            sim = self.sim
            rows = batch.rows(location)
            times = batch.times
            # Lazy one-ahead chaining: each arrival pushes its successor
            # when it fires, so a 10^5-frame stream keeps one pending
            # entry in the heap instead of 10^5.  Heap-pop order only
            # depends on the (time, seq) keys of entries present before
            # their fire time, so this is order-identical to the eager
            # loop provided (a) the tie-break seq range is reserved up
            # front and (b) injection times never decrease -- true for
            # start + i*spacing; an explicit unsorted ``times`` column
            # falls back to pushing everything eagerly.
            chainable = times is None or all(
                a <= b for a, b in zip(times, times[1:])
            )
            if chainable and batch.count:
                now0 = sim.now
                first_seq = next(sim._counter)
                sim._counter = itertools.count(first_seq + batch.count)
                at, packet, payload, flow, ident = next(rows)
                delay = at - now0
                if delay < 0.0:
                    delay = 0.0
                chain = [rows, now0, first_seq + 1]
                _heappush(
                    sim._heap,
                    (
                        now0 + delay,
                        first_seq,
                        _StreamArrival(
                            self, location, (packet, payload, flow, ident, chain)
                        ),
                    ),
                )
            else:
                for at, packet, payload, flow, ident in rows:
                    schedule(
                        max(0.0, at - sim.now),
                        _StreamArrival(
                            self, location, (packet, payload, flow, ident, None)
                        ),
                    )
        else:
            for at, packet, payload, flow, ident in batch.rows(location):
                self.inject(
                    host_name,
                    Frame(packet=packet, payload_bytes=payload, flow=flow, ident=ident),
                    at=at,
                )
        return batch.count

    # -- switch arrival & processing --------------------------------------------

    def _arrive_at_switch(self, location: Location, frame: Frame) -> None:
        # Strategies may declare extra per-packet processing cost (e.g.
        # tag matching and register updates in the correct logic).  A
        # switch is a serial resource: software switches process one
        # packet at a time, so processing cost is real back-pressure.
        switch_id = location.switch
        sim = self.sim
        now = sim.now
        free = self._switch_free_at
        start = free.get(switch_id, 0.0)
        if now > start:
            start = now
        finish = start + self.switch_delay + self._hop_extra
        free[switch_id] = finish
        proc = _Process.__new__(_Process)
        proc.net = self
        proc.location = location
        proc.frame = frame
        entry = (now + (finish - now), next(sim._counter), proc)
        fifos = self._switch_fifo
        fifo = None if fifos is None else fifos.get(switch_id)
        if fifo is None:
            _heappush(sim._heap, entry)
        else:
            fifo.append(entry)
            if len(fifo) == 1:
                _heappush(sim._heap, entry)

    def _emit(self, egress: Location, frame: Frame) -> None:
        """Resolve an egress location and deliver/transmit/drop.

        Kept as the Location-based entry point (fault injection and
        tests call it); the arrival loop above inlines the same dispatch
        through the int-keyed port table.
        """
        ports = self._ports.get(egress.switch)
        target = None if ports is None else ports.get(egress.port)
        if target is None:
            self.drops.append(
                DropRecord(self.sim.now, egress, frame, reason="no-link-at-port")
            )
            return
        if target.__class__ is Host:
            self._deliver(target.name, frame)
            return
        self._transmit(target, frame)

    def _transmit(self, link: _LinkState, frame: Frame) -> None:
        """Send across a link: serialization (capacity) + propagation."""
        sim = self.sim
        now = sim.now
        wire_bytes = frame.payload_bytes + self.logic.header_bytes(frame)
        start = link.free_at
        if now > start:
            start = now
        finish = start + wire_bytes / link.capacity
        link.free_at = finish
        dst = link.dst
        memo = link.move_memo
        if memo is None:
            moved = frame.with_location(dst)
        else:
            packet = frame.packet
            relocated = memo.get(packet)
            if relocated is None:
                if len(memo) >= _MEMO_LIMIT:
                    memo.clear()
                relocated = packet.at(dst)
                memo[packet] = relocated
            moved = frame if relocated is packet else frame._with_packet(relocated)
        sim.schedule((finish - now) + link.latency, _Arrival(self, dst, moved))

    # -- delivery ----------------------------------------------------------------

    def _deliver(self, host_name: str, frame: Frame) -> None:
        # tuple.__new__ skips the generated NamedTuple __new__ (a
        # Python-level function) on the per-delivery hot path.
        record = tuple.__new__(DeliveryRecord, (self.sim.now, host_name, frame))
        self.deliveries.append(record)
        if self.auto_reply:
            handler = self.auto_reply.get(host_name)
            if handler is not None:
                handler(self, host_name, frame)

    def _index_deliveries(self) -> None:
        """Fold deliveries since the last stats access into the per-host
        and per-flow-prefix indices.

        Indexing at access time instead of per delivery keeps the hot
        path to one list append; the indexed results are identical to a
        full scan (the order is the append order either way).
        """
        deliveries = self.deliveries
        start = self._indexed_up_to
        if start >= len(deliveries):
            return
        self._indexed_up_to = len(deliveries)
        by_host_index = self._deliveries_by_host
        for record in deliveries[start:]:
            host_name = record.host
            by_host = by_host_index.get(host_name)
            if by_host is None:
                by_host = by_host_index[host_name] = []
            by_host.append(record)
            flow = record.frame.flow
            # Stream frames share one flow tuple, so an identity check
            # on the last-seen flow skips re-hashing it per record.
            if flow is self._last_flow:
                buckets = self._last_buckets
            else:
                buckets = self._flow_buckets.get(flow)
            if buckets is None:
                by_flow = self._deliveries_by_flow
                collected = []
                for n in range(1, len(flow) + 1):
                    prefix = flow[:n]
                    bucket = by_flow.get(prefix)
                    if bucket is None:
                        bucket = by_flow[prefix] = []
                    collected.append(bucket)
                buckets = self._flow_buckets[flow] = tuple(collected)
            self._last_flow = flow
            self._last_buckets = buckets
            for bucket in buckets:
                bucket.append(record)

    # -- bookkeeping hooks used by logics ------------------------------------------

    def note_event_learned(self, switch: int, event: Event) -> None:
        key = (switch, event)
        if key not in self.event_learned_at:
            self.event_learned_at[key] = self.sim.now

    # -- statistics ------------------------------------------------------------------

    def deliveries_to(self, host_name: str) -> List[DeliveryRecord]:
        self._index_deliveries()
        return list(self._deliveries_by_host.get(host_name, ()))

    def delivered_flows(self, flow_prefix: Tuple) -> List[DeliveryRecord]:
        if not flow_prefix:
            return list(self.deliveries)
        self._index_deliveries()
        return list(self._deliveries_by_flow.get(tuple(flow_prefix), ()))
