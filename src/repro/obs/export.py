"""Exporters: Prometheus text exposition, Chrome trace events, summaries.

Three consumers of the in-process observability state:

- :func:`prometheus_text` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  in Prometheus text exposition format 0.0.4 (``# HELP`` / ``# TYPE``
  headers, ``_bucket{le=...}`` / ``_sum`` / ``_count`` series for
  histograms).  The daemon serves it on ``GET /metrics``.
- :func:`chrome_trace` / :func:`write_chrome_trace` convert a
  :class:`~repro.obs.trace.Tracer` buffer into Chrome trace event
  format (``"X"`` complete events, microsecond timestamps) — the JSON
  loads directly into Perfetto / ``chrome://tracing``.
  :func:`validate_chrome_trace` checks a parsed document against the
  schema (CI runs it on every traced compile).
- :func:`summarize` / :func:`format_summary` fold a span buffer into a
  per-name self-time breakdown tree (``repro trace summarize``).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import metrics as _metrics
from . import trace as _trace

__all__ = [
    "chrome_trace",
    "format_summary",
    "prometheus_text",
    "spans_from_chrome",
    "summarize",
    "validate_chrome_trace",
    "write_chrome_trace",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(items: Sequence[Tuple[str, str]]) -> str:
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + inner + "}"


def prometheus_text(registry: Optional[_metrics.MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the installed one) as Prometheus
    text exposition.  Deterministic: families sorted by name, series by
    label items, so the output is shape-pinnable."""
    if registry is None:
        registry = _metrics.active()
    lines: List[str] = []
    if registry is None:
        return "# no metrics registry installed\n"
    last_name = None
    for name, kind, label_items, metric, help_text in registry.collect():
        if name != last_name:
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            last_name = name
        if isinstance(metric, _metrics.Histogram):
            for bound, count in metric.bucket_counts():
                le_items = tuple(label_items) + (("le", _format_value(bound)),)
                lines.append(f"{name}_bucket{_labels_text(le_items)} {count}")
            lines.append(
                f"{name}_sum{_labels_text(label_items)} "
                f"{_format_value(metric.sum)}"
            )
            lines.append(f"{name}_count{_labels_text(label_items)} {metric.count}")
        else:
            value = (
                metric.value
                if isinstance(metric, (_metrics.Counter, _metrics.Gauge))
                else float(metric)
            )
            lines.append(
                f"{name}{_labels_text(label_items)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace event format (Perfetto-loadable)
# ---------------------------------------------------------------------------

_PID = 1  # one process; thread idents become tids


def chrome_trace(tracer: Optional[_trace.Tracer] = None) -> Dict[str, Any]:
    """The Tracer buffer as a Chrome trace event document.

    Spans become ``"X"`` (complete) events with microsecond ``ts`` /
    ``dur`` relative to the earliest span; each OS thread gets an
    ``"M"`` thread_name metadata event.  The document's top level is
    ``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": ...}``.
    """
    if tracer is None:
        tracer = _trace.active()
    spans = tracer.finished() if tracer is not None else []
    events: List[Dict[str, Any]] = []
    threads = sorted({s["thread"] for s in spans})
    tids = {ident: i for i, ident in enumerate(threads)}
    for ident in threads:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tids[ident],
            "args": {"name": f"thread-{ident}"},
        })
    origin = min((s["start"] for s in spans), default=0.0)
    for s in spans:
        args = {
            "trace_id": s["trace_id"],
            "span_id": s["span_id"],
        }
        if s["parent_id"] is not None:
            args["parent_id"] = s["parent_id"]
        args.update(s["attrs"])
        events.append({
            "name": s["name"],
            "ph": "X",
            "ts": round((s["start"] - origin) * 1e6, 3),
            "dur": round(s["duration"] * 1e6, 3),
            "pid": _PID,
            "tid": tids[s["thread"]],
            "cat": "repro",
            "args": args,
        })
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "spans": len(spans)},
    }
    if tracer is not None and tracer.dropped:
        doc["otherData"]["dropped_spans"] = tracer.dropped
    return doc


def write_chrome_trace(path: str, tracer: Optional[_trace.Tracer] = None) -> int:
    """Serialize :func:`chrome_trace` to ``path``; returns the span count."""
    doc = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return int(doc["otherData"]["spans"])


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema-check a parsed Chrome trace document.

    Returns a list of problems (empty = valid).  This is the validator
    CI runs after every traced compile; it checks the top-level shape
    and, per event, the required keys and types for the phases the
    exporter emits (``"X"`` complete events and ``"M"`` metadata).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing 'name'")
        if ph not in ("X", "M", "B", "E", "i"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: 'X' event needs non-negative {key!r}"
                    )
            args = event.get("args")
            if not isinstance(args, dict) or "trace_id" not in args:
                problems.append(f"{where}: 'X' event args need a trace_id")
    return problems


def spans_from_chrome(doc: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Recover :func:`summarize`-shaped span dicts from a Chrome trace
    document previously written by :func:`write_chrome_trace` (the
    ``repro trace summarize`` input path)."""
    spans: List[Dict[str, Any]] = []
    for event in doc.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = event.get("args", {})
        spans.append({
            "name": event.get("name", "?"),
            "trace_id": args.get("trace_id", ""),
            "span_id": args.get("span_id"),
            "parent_id": args.get("parent_id"),
            "start": float(event.get("ts", 0)) / 1e6,
            "duration": float(event.get("dur", 0)) / 1e6,
            "thread": event.get("tid", 0),
            "attrs": args,
        })
    return spans


# ---------------------------------------------------------------------------
# Self-time summary tree
# ---------------------------------------------------------------------------


def summarize(spans: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Fold finished-span dicts into a name-keyed breakdown tree.

    Spans aggregate by (parent-path, name): every node carries
    ``name``, ``count``, ``total`` (wall seconds, summed over calls),
    ``self`` (total minus the children's totals), and ``children``
    (recursively, sorted by total descending).  Parenting uses the
    recorded ``parent_id`` links, so executor-worker spans attach under
    the stage that spawned them regardless of thread.
    """
    spans = list(spans)
    by_id = {s["span_id"]: s for s in spans}
    # name-path per span: walk parents (memoized)
    paths: Dict[int, Tuple[str, ...]] = {}

    def path_of(s: Mapping[str, Any]) -> Tuple[str, ...]:
        sid = s["span_id"]
        cached = paths.get(sid)
        if cached is not None:
            return cached
        parent = by_id.get(s["parent_id"]) if s["parent_id"] is not None else None
        path = (path_of(parent) if parent is not None else ()) + (s["name"],)
        paths[sid] = path
        return path

    # aggregate totals per path
    totals: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for s in spans:
        node = totals.setdefault(path_of(s), {"count": 0, "total": 0.0})
        node["count"] += 1
        node["total"] += s["duration"]

    def build(prefix: Tuple[str, ...]) -> List[Dict[str, Any]]:
        depth = len(prefix) + 1
        here = [p for p in totals if len(p) == depth and p[:-1] == prefix]
        nodes = []
        for path in here:
            agg = totals[path]
            children = build(path)
            child_total = sum(c["total"] for c in children)
            nodes.append({
                "name": path[-1],
                "count": int(agg["count"]),
                "total": agg["total"],
                "self": max(0.0, agg["total"] - child_total),
                "children": children,
            })
        nodes.sort(key=lambda n: -n["total"])
        return nodes

    return build(())


def format_summary(tree: List[Dict[str, Any]], indent: str = "") -> str:
    """Render a :func:`summarize` tree as the ``repro trace summarize``
    text: one line per node, total / self milliseconds and call count."""
    lines: List[str] = []
    for node in tree:
        lines.append(
            f"{indent}{node['name']:<{max(1, 40 - len(indent))}} "
            f"total {node['total'] * 1e3:9.3f} ms  "
            f"self {node['self'] * 1e3:9.3f} ms  "
            f"calls {node['count']:>5}"
        )
        if node["children"]:
            lines.append(format_summary(node["children"], indent + "  "))
    return "\n".join(lines)
