"""A thread-safe, process-wide metrics registry (stdlib-only).

Three metric kinds, all named under the ``repro_`` namespace with
optional Prometheus-style labels:

- :class:`Counter` — monotonically increasing (``_total`` suffix by
  convention);
- :class:`Gauge` — a value that can move both ways, with a
  :meth:`Gauge.set_max` high-water helper;
- :class:`Histogram` — log-bucketed observations (the bucket bounds
  grow geometrically, so one histogram spans microseconds to minutes
  with a handful of buckets).

The registry follows the zero-overhead-uninstalled discipline of
:mod:`repro.faults`: instrumented sites call the module-level helpers
(:func:`inc` / :func:`observe` / :func:`gauge_set` / :func:`gauge_max`
/ :func:`count_health`), which are one global read and an immediate
return when no registry is installed.  Hot loops that cannot afford
even that (the simulator's per-event path) pre-resolve their metric
objects at construction time via :func:`active`.

``count_health`` is the unification shim for the legacy ad-hoc
counters: it increments the caller's existing dict (the view the old
report shapes are built from — ``PipelineReport.health``, the
``ArtifactCache.health`` mapping) *and* mirrors the increment into the
installed registry under one namespaced metric, so the same event is
visible both in the legacy report and on ``GET /metrics``.

Usage::

    from repro.obs import metrics

    registry = metrics.MetricsRegistry()
    with metrics.collecting(registry):
        ...  # instrumented code records into `registry`
    print(registry.snapshot())

Scrape-time **collectors** let a subsystem expose derived values
without hot-path double bookkeeping: ``registry.register_collector(fn)``
registers a callable returning an iterable of
``(name, kind, labels_dict, value, help)`` samples evaluated at
:meth:`MetricsRegistry.collect` time (the service exposes its request
stats and memo occupancy this way).
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "active",
    "collecting",
    "count_health",
    "gauge_max",
    "gauge_set",
    "inc",
    "install",
    "observe",
    "uninstall",
]

# Log-bucketed bounds for latency histograms: powers of 4 from 100 µs
# to ~1.7 min.  Geometric growth keeps the bucket count small while
# resolving both a microsecond FDD op and a multi-second cold compile.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(
    0.0001 * (4 ** i) for i in range(11)
)

_LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, by: float = 1) -> None:
        if by < 0:
            raise ValueError(f"counters only go up; got inc({by})")
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """High-water update: keep the larger of the current and given
        values (the heap-depth watermark discipline)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, by: float = 1) -> None:
        with self._lock:
            self._value += by

    def dec(self, by: float = 1) -> None:
        with self._lock:
            self._value -= by

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed observations with a running sum and count.

    ``bounds`` are the inclusive upper bucket bounds; observations above
    the last bound land in the implicit +Inf bucket.  ``bucket_counts``
    returns *cumulative* counts per bound (the Prometheus ``le``
    semantics), so the renderer never re-derives them.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(
            b <= a for a, b in zip(ordered, ordered[1:])
        ):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}"
            )
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def bucket_counts(self) -> Tuple[Tuple[float, int], ...]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        with self._lock:
            counts = list(self._counts)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), running + counts[-1]))
        return tuple(cumulative)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

# A scrape-time collector: yields (name, kind, labels, value, help).
CollectorFn = Callable[[], Iterable[Tuple[str, str, Mapping[str, Any], float, str]]]


class MetricsRegistry:
    """Namespaced metrics, one instance per (name, labelset).

    Thread-safe: creation races serialize on the registry lock, and the
    metric objects themselves lock their updates.  A name is bound to
    one kind forever — re-registering it as a different kind raises, so
    a ``repro_cache_loads_total`` counter can never silently become a
    gauge elsewhere in the process.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, _LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}
        self._collectors: List[CollectorFn] = []

    # -- metric access ------------------------------------------------------

    def _get(
        self,
        kind: str,
        name: str,
        help: str,
        labels: Mapping[str, Any],
        buckets: Optional[Tuple[float, ...]] = None,
    ):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if type(metric) is not _KINDS[kind]:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{type(metric).__name__.lower()}, cannot re-register "
                    f"as a {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                return metric
            bound_kind = self._kinds.get(name)
            if bound_kind is None:
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
                if kind == "histogram":
                    self._buckets[name] = (
                        buckets if buckets is not None else DEFAULT_TIME_BUCKETS
                    )
            elif bound_kind != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{bound_kind}, cannot re-register as a {kind}"
                )
            elif help and name not in self._help:
                self._help[name] = help
            if kind == "histogram":
                metric = Histogram(self._buckets[name])
            else:
                metric = _KINDS[kind]()
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, help, labels, buckets=buckets)

    def register_collector(self, collector: CollectorFn) -> None:
        """Add a scrape-time sample source (evaluated by :meth:`collect`)."""
        with self._lock:
            self._collectors.append(collector)

    # -- reading ------------------------------------------------------------

    def kind_of(self, name: str) -> Optional[str]:
        with self._lock:
            return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        with self._lock:
            return self._help.get(name, "")

    def collect(self) -> List[Tuple[str, str, _LabelItems, object, str]]:
        """Every sample, collectors included:
        ``(name, kind, label_items, metric_or_value, help)`` sorted by
        name then labels.  Registry-owned entries carry the live metric
        object; collector entries carry a plain float value.
        """
        with self._lock:
            owned = [
                (name, self._kinds[name], label_items, metric,
                 self._help.get(name, ""))
                for (name, label_items), metric in self._metrics.items()
            ]
            collectors = list(self._collectors)
        samples: List[Tuple[str, str, _LabelItems, object, str]] = owned
        for collector in collectors:
            for name, kind, labels, value, help in collector():
                samples.append((name, kind, _label_key(labels), float(value), help))
        samples.sort(key=lambda s: (s[0], s[2]))
        return samples

    def snapshot(self) -> Dict[str, float]:
        """A flat ``{"name{k=v,...}": value}`` view (histograms appear
        as ``_count`` / ``_sum``) — the test/debug convenience."""
        out: Dict[str, float] = {}
        for name, kind, label_items, metric, _ in self.collect():
            suffix = (
                "{" + ",".join(f"{k}={v}" for k, v in label_items) + "}"
                if label_items
                else ""
            )
            if isinstance(metric, Histogram):
                out[f"{name}_count{suffix}"] = metric.count
                out[f"{name}_sum{suffix}"] = metric.sum
            elif isinstance(metric, (Counter, Gauge)):
                out[f"{name}{suffix}"] = metric.value
            else:
                out[f"{name}{suffix}"] = metric  # collector value
        return out

    def value(self, name: str, **labels) -> float:
        """The current value of one counter/gauge (0 when never touched)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return 0.0
        return metric.value  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# The installed-registry module state (the faults.py discipline)
# ---------------------------------------------------------------------------

_active: Optional[MetricsRegistry] = None
_install_lock = threading.Lock()


def active() -> Optional[MetricsRegistry]:
    """The installed registry (``None`` = uninstalled, the default)."""
    return _active


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one when omitted) process-wide.

    Installing over a *different* registry raises — exactly one may be
    active, like a :class:`~repro.faults.FaultPlan`; re-installing the
    already-active registry is an idempotent no-op (so a daemon and its
    launcher can both assert the same registry).
    """
    global _active
    with _install_lock:
        if registry is None:
            registry = _active if _active is not None else MetricsRegistry()
        if not isinstance(registry, MetricsRegistry):
            raise TypeError(
                f"install() wants a MetricsRegistry, got {type(registry).__name__}"
            )
        if _active is not None and _active is not registry:
            raise RuntimeError(
                "a MetricsRegistry is already installed; uninstall() it "
                "first (registries do not nest)"
            )
        _active = registry
        return registry


def uninstall() -> None:
    """Remove the installed registry (idempotent)."""
    global _active
    with _install_lock:
        _active = None


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of a ``with`` block."""
    installed = install(registry)
    try:
        yield installed
    finally:
        uninstall()


# ---------------------------------------------------------------------------
# Hot-path helpers: one global read when uninstalled
# ---------------------------------------------------------------------------


def inc(name: str, by: float = 1, help: str = "", **labels) -> None:
    """Increment a counter in the installed registry (no-op uninstalled)."""
    registry = _active
    if registry is not None:
        registry.counter(name, help, **labels).inc(by)


def observe(name: str, value: float, help: str = "", **labels) -> None:
    """Observe into a histogram in the installed registry."""
    registry = _active
    if registry is not None:
        registry.histogram(name, help, **labels).observe(value)


def gauge_set(name: str, value: float, help: str = "", **labels) -> None:
    registry = _active
    if registry is not None:
        registry.gauge(name, help, **labels).set(value)


def gauge_max(name: str, value: float, help: str = "", **labels) -> None:
    """High-water gauge update (keeps the maximum seen)."""
    registry = _active
    if registry is not None:
        registry.gauge(name, help, **labels).set_max(value)


# The one metric every legacy health counter unifies under; the dict
# the caller already keeps (PipelineReport.health / ArtifactCache.health)
# stays the legacy view of the same increments.
HEALTH_METRIC = "repro_pipeline_health_total"
_HEALTH_HELP = (
    "Absorbed pipeline failure/recovery events (executor retries and "
    "serial fallbacks, cache integrity rejections and quarantines, "
    "swallowed cache errors), by legacy health-counter name"
)


def count_health(health: Dict[str, int], counter: str) -> None:
    """Increment a legacy health-counter dict AND mirror the increment
    into the installed registry under :data:`HEALTH_METRIC`.

    This is the unification shim: callers keep their existing dict (the
    view ``PipelineReport.health`` and the service's ``/health``
    aggregation are built from), and the same event lands on
    ``GET /metrics`` as ``repro_pipeline_health_total{counter=...}``.
    """
    health[counter] = health.get(counter, 0) + 1
    registry = _active
    if registry is not None:
        registry.counter(HEALTH_METRIC, _HEALTH_HELP, counter=counter).inc()
