"""Span-based structured tracing (stdlib-only).

A **span** is a named, timed region with attributes, a parent, and a
trace ID.  Spans form a tree per trace; the *current* span propagates
through a :mod:`contextvars` ``ContextVar``, so nested ``with
trace.span(...)`` blocks parent naturally — including across the
service's per-request handler threads, which each run in their own
context.

Thread pools are the one seam contextvars do **not** cross:
``ThreadPoolExecutor`` workers run in the pool thread's (empty)
context, not the submitter's.  Code that fans out captures the parent
with :func:`current` before submitting and wraps the worker body in
:func:`attach`::

    parent = trace.current()
    def worker(cfg):
        with trace.attach(parent):
            with trace.span("compile", configuration=str(cfg)):
                ...

Like :mod:`repro.obs.metrics` this follows the
zero-overhead-uninstalled discipline: with no :class:`Tracer`
installed, :func:`span` returns a shared no-op context manager after a
single global read, and :func:`attach` likewise falls through.

Finished spans accumulate in the installed tracer's bounded buffer as
plain dicts (``name``/``trace_id``/``span_id``/``parent_id``/
``start``/``duration``/``thread``/``attrs``); exporters
(:mod:`repro.obs.export`) turn the buffer into Chrome-trace JSON or a
self-time summary tree.  Tracing is execution-only: span attributes
never feed ``artifact_key()`` and compiled artifacts are byte-identical
with tracing on or off (pinned in ``tests/test_obs.py``).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "active",
    "attach",
    "current",
    "current_trace_id",
    "install",
    "new_trace_id",
    "recording",
    "span",
    "uninstall",
]

_span_ids = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (what the service mints per request
    when the client sends no ``X-Repro-Trace-Id``)."""
    return uuid.uuid4().hex[:16]


class Span:
    """One open region.  Created by :func:`span`; closed by its
    ``with`` block, at which point it is recorded into the tracer."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "attrs", "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = next(_span_ids)
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.attrs = attrs
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the fact (e.g. a result count)."""
        self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class Tracer:
    """A bounded buffer of finished spans.

    ``max_spans`` guards a long-lived daemon against unbounded growth:
    past the cap, new finishes are dropped and counted in
    :attr:`dropped` (the exporter surfaces the drop count rather than
    silently truncating).
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.dropped = 0
        self._lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []

    def record(self, span: Span, duration: float) -> None:
        entry = {
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start": span.start,
            "duration": duration,
            "thread": threading.get_ident(),
            "attrs": dict(span.attrs),
        }
        with self._lock:
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(entry)

    def finished(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the finished-span dicts, start-ordered."""
        with self._lock:
            spans = list(self._finished)
        spans.sort(key=lambda s: s["start"])
        return spans

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        return [s for s in self.finished() if s["name"] == name]


# ---------------------------------------------------------------------------
# Installed-tracer module state + the contextvar current span
# ---------------------------------------------------------------------------

_active: Optional[Tracer] = None
_install_lock = threading.Lock()

_current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def active() -> Optional[Tracer]:
    """The installed tracer (``None`` = tracing off, the default)."""
    return _active


def install(tracer: Optional[Tracer] = None) -> Tracer:
    """Install a tracer process-wide (a fresh one when omitted).

    Exactly one may be active; re-installing the already-active tracer
    is a no-op, installing over a different one raises.
    """
    global _active
    with _install_lock:
        if tracer is None:
            tracer = _active if _active is not None else Tracer()
        if _active is not None and _active is not tracer:
            raise RuntimeError(
                "a Tracer is already installed; uninstall() it first "
                "(tracers do not nest)"
            )
        _active = tracer
        return tracer


def uninstall() -> None:
    global _active
    with _install_lock:
        _active = None


@contextmanager
def recording(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    installed = install(tracer)
    try:
        yield installed
    finally:
        uninstall()


def current() -> Optional[Span]:
    """The current span in this context (``None`` outside any span or
    with tracing off).  Capture this *before* submitting work to a
    thread pool, then :func:`attach` it inside the worker."""
    if _active is None:
        return None
    return _current.get()


def current_trace_id() -> Optional[str]:
    span_obj = current()
    return span_obj.trace_id if span_obj is not None else None


class _NoopSpan:
    """The shared do-nothing span handle returned when tracing is off.

    Supports the same surface a real span's ``with`` body uses
    (``.set(**attrs)``), so instrumented code never branches."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _SpanContext:
    """The context manager :func:`span` returns when tracing is on."""

    __slots__ = ("_span",)

    def __init__(self, span_obj: Span) -> None:
        self._span = span_obj

    def __enter__(self) -> Span:
        self._span._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        span_obj = self._span
        duration = time.perf_counter() - span_obj.start
        if span_obj._token is not None:
            _current.reset(span_obj._token)
            span_obj._token = None
        if exc_type is not None:
            span_obj.attrs.setdefault("error", exc_type.__name__)
        span_obj._tracer.record(span_obj, duration)


def span(name: str, trace_id: Optional[str] = None, **attrs: Any):
    """Open a span under the current one (context manager).

    With no tracer installed this is one global read and a shared
    no-op handle.  ``trace_id`` forces the trace (the service passes
    the client-supplied ``X-Repro-Trace-Id`` here for the request root
    span); omitted, the span joins the current span's trace, or mints
    a fresh trace ID when it is a root.
    """
    tracer = _active
    if tracer is None:
        return _NOOP
    parent = _current.get()
    if trace_id is None:
        trace_id = parent.trace_id if parent is not None else new_trace_id()
    parent_id = parent.span_id if parent is not None else None
    return _SpanContext(Span(tracer, name, trace_id, parent_id, attrs))


@contextmanager
def attach(parent: Optional[Span]) -> Iterator[None]:
    """Run the body with ``parent`` as the current span.

    The thread-pool seam: contextvars do not cross executor submission,
    so workers re-attach the parent captured by the submitter.  No-op
    (after one global read) when tracing is off or ``parent`` is None.
    """
    if _active is None or parent is None:
        yield
        return
    token = _current.set(parent)
    try:
        yield
    finally:
        _current.reset(token)
