"""Unified observability: metrics registry, structured tracing, exporters.

Three stdlib-only modules, all following the zero-overhead-uninstalled
discipline of :mod:`repro.faults` — with nothing installed, every
instrumented site costs one global (or pre-resolved attribute) check
and an immediate fall-through, pinned by the ``obs_overhead_noop``
bench lane:

- :mod:`repro.obs.metrics` — a thread-safe, process-wide registry of
  Counters, Gauges, and log-bucketed Histograms.  It unifies the
  previously ad-hoc counter mechanisms (pipeline ``health``, artifact
  cache hit/miss/integrity, executor retries/fallbacks, checker
  ``sequences_tried``, simulator plan-cache hits and heap-depth
  high-water) behind one namespaced API; the legacy report shapes
  (``PipelineReport.health``, ``ServiceStats``, checker attributes)
  are preserved as views.
- :mod:`repro.obs.trace` — span-based structured tracing with a
  contextvars-propagated current span, so executor worker threads and
  service handler threads attach to the right parent.
- :mod:`repro.obs.export` — a Prometheus text-exposition renderer
  (served by the daemon's ``GET /metrics``) and a Chrome-trace-event
  (Perfetto-loadable) JSON exporter with a self-time summarizer
  (``repro compile --trace`` / ``repro trace summarize``).

The rule (see ROADMAP): every new counter lands in ``obs.metrics``
under a ``repro_``-prefixed name — never a loose dict — and every new
latency-bearing code path gets a span.
"""

from . import export, metrics, trace

__all__ = ["export", "metrics", "trace"]
