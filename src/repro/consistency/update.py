"""Event-driven consistent updates and their correctness (Definition 2).

An update is a sequence ``C0 -e0-> C1 -e1-> ... -en-> Cn+1`` together
with the ambient event set ``E``.  A network trace is correct with
respect to the update when the *first-occurrence* positions of the
events exist (``FO``), every packet trace is processed entirely by one
configuration of the chain, packets wholly before event ``ei`` use a
preceding configuration, and packets wholly after it use a following
one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..events.event import Event
from ..netkat.compiler import Configuration
from .traces import HappensBefore, NetworkTrace, packet_trace_in_traces

__all__ = [
    "EventDrivenUpdate",
    "first_occurrences",
    "CorrectnessReport",
    "check_update_correctness",
]


@dataclass(frozen=True)
class EventDrivenUpdate:
    """``(U, E)``: a chain of configurations joined by triggering events.

    ``configurations`` has one more element than ``events``:
    ``C0 -e0-> C1 -e1-> ... -en-> Cn+1``.
    """

    configurations: Tuple[Configuration, ...]
    events: Tuple[Event, ...]
    ambient_events: FrozenSet[Event]

    def __post_init__(self) -> None:
        if len(self.configurations) != len(self.events) + 1:
            raise ValueError(
                "an update needs exactly one more configuration than events"
            )
        if not frozenset(self.events) <= self.ambient_events:
            raise ValueError("update events must be drawn from the ambient set E")

    @staticmethod
    def single(
        initial: Configuration,
        event: Event,
        final: Configuration,
        ambient_events: Optional[Iterable[Event]] = None,
    ) -> "EventDrivenUpdate":
        """The one-step update ``Ci -e-> Cf`` of the introduction."""
        ambient = (
            frozenset(ambient_events)
            if ambient_events is not None
            else frozenset((event,))
        )
        return EventDrivenUpdate((initial, final), (event,), ambient)


def first_occurrences(
    trace: NetworkTrace,
    update: EventDrivenUpdate,
    *,
    position_masks: Optional[Sequence[int]] = None,
    event_bits: Optional[Sequence[int]] = None,
    ambient_mask: int = 0,
    membership: Optional[Callable] = None,
) -> Optional[Tuple[int, ...]]:
    """``FO(ntr, U)``: the first-occurrence index of each update event.

    Returns None when the sequence does not exist: an event never occurs
    in order, a between-gap contains a stray occurrence of the next
    event, some position after the last event matches an ambient event,
    or the triggering packet was not processed by the immediately
    preceding configuration.

    The mask-threaded checker passes per-position match masks
    (``position_masks``, bit ``i`` set iff event ``i`` matches that
    position), the per-step event bits, and the ambient-set mask, so the
    occurrence scans are single int tests; ``membership(config, trace,
    t)`` replaces :func:`packet_trace_in_traces` so the checker can
    memoize membership across candidate sequences.  Results are
    identical to the default (frozenset) path.
    """
    use_masks = position_masks is not None and event_bits is not None
    n = len(trace.packets)
    indices: List[int] = []
    previous = -1
    for step, event in enumerate(update.events):
        found: Optional[int] = None
        if use_masks:
            bit = event_bits[step]
            for j in range(previous + 1, n):
                if position_masks[j] & bit:
                    found = j
                    break
        else:
            for j in range(previous + 1, n):
                if event.matches(trace.packets[j]):
                    found = j
                    break
        if found is None:
            return None
        # The event can be triggered only by a packet processed in the
        # immediately preceding configuration C_step.
        config = update.configurations[step]
        if membership is not None:
            if not any(membership(config, trace, t) for t in trace.traces_through(found)):
                return None
        elif not any(
            packet_trace_in_traces(config, trace.packet_trace(t))
            for t in trace.traces_through(found)
        ):
            return None
        indices.append(found)
        previous = found
    # No *unfired* event may occur after the final first-occurrence.
    # Packets re-matching an event already in the update's sequence do
    # not re-trigger it (the firewall's second outgoing packet matches
    # the same pattern but the transition already happened), so only
    # ambient events absent from the sequence invalidate FO.  Renamed
    # copies are distinct events here: a packet matching the *next*
    # occurrence of a chain event forces the Definition 6 search onto
    # the longer sequence that includes it.
    if use_masks:
        fired_mask = 0
        for bit in event_bits:
            fired_mask |= bit
        remaining_mask = ambient_mask & ~fired_mask
        for j in range(previous + 1, n):
            if position_masks[j] & remaining_mask:
                return None
        return tuple(indices)
    fired = frozenset(update.events)
    remaining = update.ambient_events - fired
    for j in range(previous + 1, n):
        if any(e.matches(trace.packets[j]) for e in remaining):
            return None
    return tuple(indices)


@dataclass(frozen=True)
class CorrectnessReport:
    """Outcome of a Definition 2 check, with the first violation found."""

    correct: bool
    reason: str = ""
    violating_trace: Optional[Tuple[int, ...]] = None

    def __bool__(self) -> bool:
        return self.correct


def check_update_correctness(
    trace: NetworkTrace,
    update: EventDrivenUpdate,
    *,
    happens_before: Optional[HappensBefore] = None,
    position_masks: Optional[Sequence[int]] = None,
    event_bits: Optional[Sequence[int]] = None,
    ambient_mask: int = 0,
    membership: Optional[Callable] = None,
) -> CorrectnessReport:
    """Definition 2: is ``trace`` correct with respect to ``update``?

    The keyword arguments are the mask-threaded checker's hoists (see
    :func:`first_occurrences`); ``happens_before`` may be precomputed
    once per trace since it does not depend on the update.  All are
    optional and behaviour-preserving.
    """
    fo = first_occurrences(
        trace,
        update,
        position_masks=position_masks,
        event_bits=event_bits,
        ambient_mask=ambient_mask,
        membership=membership,
    )
    if fo is None:
        return CorrectnessReport(False, "FO(ntr, U) does not exist")

    if happens_before is None:
        happens_before = trace.happens_before()
    chain = update.configurations

    for t in sorted(trace.trace_indices):
        if membership is not None:
            processed_by = [
                idx
                for idx, config in enumerate(chain)
                if membership(config, trace, t)
            ]
        else:
            packet_trace = trace.packet_trace(t)
            processed_by = [
                idx
                for idx, config in enumerate(chain)
                if packet_trace_in_traces(config, packet_trace)
            ]
        if not processed_by:
            return CorrectnessReport(
                False,
                "packet trace is in Traces(C) for no configuration of the chain",
                t,
            )
        for i, ki in enumerate(fo):
            if happens_before.all_before(t, ki):
                # Entirely before event e_i: must use C_0..C_i.
                if not any(idx <= i for idx in processed_by):
                    return CorrectnessReport(
                        False,
                        f"packet trace precedes event {i} (position {ki}) "
                        f"but is only in configurations {processed_by}; "
                        f"expected one of C_0..C_{i} (update happened too early)",
                        t,
                    )
            if happens_before.all_after(ki, t):
                # Entirely after event e_i: must use C_{i+1}..C_{n+1}.
                if not any(idx >= i + 1 for idx in processed_by):
                    return CorrectnessReport(
                        False,
                        f"packet trace follows event {i} (position {ki}) "
                        f"but is only in configurations {processed_by}; "
                        f"expected one of C_{i + 1}..C_{len(chain) - 1} "
                        "(update happened too late)",
                        t,
                    )
    return CorrectnessReport(True)
