"""Network traces and the happens-before relation (section 2).

A *network trace* is an interleaving of *packet traces*: a sequence of
located packets together with a set ``T`` of increasing index sequences,
one per packet trace, forming a family of trees rooted at host-injected
packets (trees, because a configuration may copy one packet into several
outputs).

The *happens-before* relation (Definition 1) is the least partial order
on trace positions that respects (a) the switch-local processing order
and (b) the order within each packet trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..netkat.compiler import Configuration
from ..netkat.packet import LocatedPacket, Location
from ..topology import Topology

__all__ = [
    "NetworkTrace",
    "TraceValidationError",
    "HappensBefore",
    "packet_trace_in_traces",
    "packet_trace_follows",
    "position_event_masks",
]


class TraceValidationError(Exception):
    """The candidate network trace violates a structural condition."""


@dataclass(frozen=True)
class NetworkTrace:
    """``ntr = (lp0 lp1 ..., T)`` with ``T`` a set of index sequences."""

    packets: Tuple[LocatedPacket, ...]
    trace_indices: FrozenSet[Tuple[int, ...]]

    def __post_init__(self) -> None:
        n = len(self.packets)
        covered: Set[int] = set()
        for t in self.trace_indices:
            if not t:
                raise TraceValidationError("empty index sequence in T")
            if any(k < 0 or k >= n for k in t):
                raise TraceValidationError(f"index sequence {t} out of range")
            if any(t[i] >= t[i + 1] for i in range(len(t) - 1)):
                raise TraceValidationError(f"index sequence {t} is not increasing")
            covered.update(t)
        if covered != set(range(n)):
            missing = sorted(set(range(n)) - covered)
            raise TraceValidationError(
                f"positions {missing} are not covered by any packet trace"
            )
        _check_tree_condition(self.trace_indices)

    # -- projections (the paper's ntr↓k and ntr↓t) -----------------------------

    def traces_through(self, index: int) -> FrozenSet[Tuple[int, ...]]:
        """``ntr↓k``: the index sequences passing through position k."""
        return frozenset(t for t in self.trace_indices if index in t)

    def packet_trace(self, t: Sequence[int]) -> Tuple[LocatedPacket, ...]:
        """``ntr↓t``: the located packets along an index sequence."""
        return tuple(self.packets[k] for k in t)

    def __len__(self) -> int:
        return len(self.packets)

    def happens_before(self) -> "HappensBefore":
        return HappensBefore(self)


def position_event_masks(
    trace: NetworkTrace, universe: Sequence
) -> Tuple[int, ...]:
    """Per-position bitmask of matching events (bit ``i`` ↔ ``universe[i]``).

    The mask-threaded Definition 6 checker computes this once per trace;
    every downstream scan -- the quiet case, candidate-sequence pruning,
    first-occurrence search, and the trailing ambient-event check -- is
    then a single int operation per position instead of an
    events × positions match loop per candidate sequence.
    """
    masks: List[int] = []
    for lp in trace.packets:
        mask = 0
        for index, event in enumerate(universe):
            if event.matches(lp):
                mask |= 1 << index
        masks.append(mask)
    return tuple(masks)


def _check_tree_condition(trace_indices: FrozenSet[Tuple[int, ...]]) -> None:
    """Condition 3: the successor graph forms a family of trees.

    Edges ``(t[i], t[i+1])`` over all sequences must give every node at
    most one parent, and roots are exactly the sequence heads.
    """
    parent: Dict[int, int] = {}
    roots: Set[int] = set()
    for t in trace_indices:
        roots.add(t[0])
        for i in range(len(t) - 1):
            child, par = t[i + 1], t[i]
            existing = parent.get(child)
            if existing is not None and existing != par:
                raise TraceValidationError(
                    f"position {child} has two parents ({existing} and {par}); "
                    "T is not a family of trees"
                )
            parent[child] = par
    conflict = roots & set(parent)
    if conflict:
        raise TraceValidationError(
            f"positions {sorted(conflict)} are both roots and children"
        )


class HappensBefore:
    """The happens-before partial order ``≺ntr`` on trace positions."""

    def __init__(self, trace: NetworkTrace):
        self._trace = trace
        n = len(trace.packets)
        successors: List[Set[int]] = [set() for _ in range(n)]
        # (a) total order per switch, in trace order.
        by_switch: Dict[int, List[int]] = {}
        for index, lp in enumerate(trace.packets):
            by_switch.setdefault(lp.location.switch, []).append(index)
        for indices in by_switch.values():
            for i in range(len(indices) - 1):
                successors[indices[i]].add(indices[i + 1])
        # (b) order within each packet trace.
        for t in trace.trace_indices:
            for i in range(len(t) - 1):
                successors[t[i]].add(t[i + 1])
        # Transitive closure by reverse-order DFS (edges always go from
        # smaller to larger indices, so a reverse sweep suffices).
        reachable: List[Set[int]] = [set() for _ in range(n)]
        for index in range(n - 1, -1, -1):
            acc: Set[int] = set()
            for nxt in successors[index]:
                acc.add(nxt)
                acc |= reachable[nxt]
            reachable[index] = acc
        self._reachable = tuple(frozenset(r) for r in reachable)

    def before(self, i: int, j: int) -> bool:
        """``lp_i ≺ lp_j``."""
        return j in self._reachable[i]

    def all_before(self, indices: Iterable[int], j: int) -> bool:
        """Do all of ``indices`` happen before position j?"""
        return all(self.before(i, j) for i in indices)

    def all_after(self, i: int, indices: Iterable[int]) -> bool:
        """Does position i happen before all of ``indices``?"""
        return all(self.before(i, j) for j in indices)


# ---------------------------------------------------------------------------
# Traces(C): packet-trace membership for a configuration
# ---------------------------------------------------------------------------


def packet_trace_follows(
    config: Configuration, packet_trace: Sequence[LocatedPacket]
) -> bool:
    """Do consecutive elements step via ``config`` (ignoring completeness)?"""
    return all(
        config.relates(packet_trace[i], packet_trace[i + 1])
        for i in range(len(packet_trace) - 1)
    )


def packet_trace_in_traces(
    config: Configuration,
    packet_trace: Sequence[LocatedPacket],
    require_complete: bool = True,
) -> bool:
    """Is the packet trace in ``Traces(config)``?

    The trace must start at a host attachment point and follow the
    configuration's step relation.  With ``require_complete`` (the
    default), it must also be *maximal*: it either ends delivered at a
    host port, or ends at a position from which the configuration offers
    no further step (the packet was dropped exactly where the
    configuration drops it).  Maximality is what gives the "processed
    entirely by one configuration" clauses of Definition 2 their force:
    a packet silently dropped mid-path is in no configuration's traces.
    """
    if not packet_trace:
        return False
    topology = config.topology
    first = packet_trace[0]
    if topology.host_at(first.location) is None:
        return False
    if not packet_trace_follows(config, packet_trace):
        return False
    if not require_complete:
        return True
    last = packet_trace[-1]
    if len(packet_trace) > 1 and topology.host_at(last.location) is not None:
        return True  # delivered to a host
    # Dropped (or never forwarded): correct only if C agrees there is no
    # continuation from the final position.
    return not config.step(last)
