"""Event-driven consistent updates: traces, happens-before, checkers."""

from .checker import NESChecker, check_trace_against_nes
from .traces import (
    HappensBefore,
    NetworkTrace,
    TraceValidationError,
    packet_trace_follows,
    packet_trace_in_traces,
    position_event_masks,
)
from .update import (
    CorrectnessReport,
    EventDrivenUpdate,
    check_update_correctness,
    first_occurrences,
)

__all__ = [
    "NetworkTrace",
    "TraceValidationError",
    "HappensBefore",
    "packet_trace_follows",
    "packet_trace_in_traces",
    "position_event_masks",
    "EventDrivenUpdate",
    "first_occurrences",
    "CorrectnessReport",
    "check_update_correctness",
    "NESChecker",
    "check_trace_against_nes",
]
