"""Correctness of network traces with respect to an NES (Definition 6).

A trace is correct when either no event ever fires and every packet is
processed by the initial configuration ``g(∅)``, or some event sequence
allowed by the NES turns the trace into a correct event-driven
consistent update.  The checker searches the (finite) space of allowed
sequences; it is the empirical counterpart of Theorem 1 and is exercised
by the test suite against traces produced by the runtime semantics.

With ``SimOptions(mask_digests=True)`` (the default) the whole search
runs on interned event bitmasks: per-position match masks are computed
once per trace, candidate sequences are pruned and enumerated on ints,
first occurrences and the quiet case test single bits, and
``Traces(C)`` membership is memoized across candidate sequences (the
chains share prefixes, so the same (configuration, packet-trace) pairs
recur).  Candidate sequences are enumerated *lazily* in the same
preorder as before, so a correct trace early-exits after its first
matching sequence -- ``sequences_tried`` counts how many Definition 2
checks the last :meth:`NESChecker.check` actually ran.  The off-position
(``SimOptions(mask_digests=False)``) retains the frozenset reference
path; verdicts are identical either way.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..events.event import Event
from ..events.nes import NES
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..netkat.compiler import Configuration, compile_policy
from ..netkat.fdd import FDDBuilder
from ..sim_options import SimOptions
from ..stateful.ast import StateVector
from ..topology import Topology
from .traces import NetworkTrace, packet_trace_in_traces, position_event_masks
from .update import CorrectnessReport, EventDrivenUpdate, check_update_correctness

__all__ = ["NESChecker", "check_trace_against_nes"]


class NESChecker:
    """Checks traces against an NES, caching compiled configurations."""

    def __init__(
        self,
        nes: NES,
        topology: Topology,
        max_sequence_length: int = 12,
        options: Optional[SimOptions] = None,
    ):
        self.nes = nes
        self.topology = topology
        self.max_sequence_length = max_sequence_length
        self.options = options if options is not None else SimOptions()
        self._mask = self.options.mask_digests
        self._builder = FDDBuilder()
        self._configs: Dict[StateVector, Configuration] = {}
        self._configs_by_mask: Dict[int, Configuration] = {}
        self._ambient: FrozenSet[Event] = frozenset(nes.events)
        # Number of candidate sequences the last check() ran Definition 2
        # on (the lazy-enumeration counter hook).
        self.sequences_tried = 0

    def configuration(self, state: StateVector) -> Configuration:
        cached = self._configs.get(state)
        if cached is None:
            cached = compile_policy(
                self.nes.configuration_policy(state),
                self.topology,
                builder=self._builder,
                name=f"C{list(state)}",
            )
            self._configs[state] = cached
        return cached

    def config_of_event_set(self, event_set: FrozenSet[Event]) -> Configuration:
        return self.configuration(self.nes.state_of(event_set))

    def _config_of_mask(self, mask: int) -> Configuration:
        """The configuration of an encoded event-set (decode memoized, so
        no frozensets materialize between checker steps after the first
        visit of a collected-mask)."""
        cached = self._configs_by_mask.get(mask)
        if cached is None:
            cached = self.config_of_event_set(self.nes.structure.decode(mask))
            self._configs_by_mask[mask] = cached
        return cached

    # -- Definition 6 ----------------------------------------------------------

    def check(self, trace: NetworkTrace) -> CorrectnessReport:
        """Is the trace correct with respect to the NES?"""
        with obs_trace.span("checker.check") as check_span:
            report = self._check_impl(trace)
            # sequences_tried stays the legacy per-check attribute; the
            # registry accumulates the same counts across checks.
            obs_metrics.inc(
                "repro_checker_sequences_tried_total",
                by=self.sequences_tried,
                help="Definition 2 checks run across all NESChecker.check "
                     "calls (the lazy candidate-sequence counter)",
            )
            check_span.set(
                sequences_tried=self.sequences_tried, correct=bool(report)
            )
            return report

    def _check_impl(self, trace: NetworkTrace) -> CorrectnessReport:
        self.sequences_tried = 0
        masks = (
            position_event_masks(trace, self.nes.structure.universe)
            if self._mask
            else None
        )
        quiet = self._check_no_events(trace, masks)
        if quiet is not None:
            return quiet

        happens_before = None
        membership = self._membership_memo() if self._mask else None
        ambient_mask = self.nes.structure.all_mask
        reports: List[CorrectnessReport] = []
        for sequence, bits in self._candidate_sequences(trace, masks):
            self.sequences_tried += 1
            update = self._update_of_sequence(sequence, bits)
            if self._mask:
                if happens_before is None:
                    happens_before = trace.happens_before()
                report = check_update_correctness(
                    trace,
                    update,
                    happens_before=happens_before,
                    position_masks=masks,
                    event_bits=bits,
                    ambient_mask=ambient_mask,
                    membership=membership,
                )
            else:
                report = check_update_correctness(trace, update)
            if report:
                return report
            reports.append(report)
        if not reports:
            return CorrectnessReport(
                False,
                "no event sequence allowed by the NES matches the trace "
                "(and some packet matches an event, so the quiet case "
                "does not apply)",
            )
        # Surface the most informative failure: prefer reports whose FO
        # existed (their reason names a concrete violating packet trace).
        for report in reports:
            if report.reason != "FO(ntr, U) does not exist":
                return report
        return reports[0]

    def _membership_memo(self) -> Callable:
        """A per-check ``Traces(C)`` membership memo: candidate chains
        share configuration prefixes, so the same (configuration,
        packet-trace) pairs recur across sequences.  Configurations are
        cached on the checker, so their ids are stable keys here."""
        memo: Dict[Tuple[int, Tuple[int, ...]], bool] = {}

        def member(config: Configuration, trace: NetworkTrace, t) -> bool:
            key = (id(config), t)
            hit = memo.get(key)
            if hit is None:
                hit = packet_trace_in_traces(config, trace.packet_trace(t))
                memo[key] = hit
            return hit

        return member

    def _check_no_events(
        self, trace: NetworkTrace, masks: Optional[Tuple[int, ...]] = None
    ) -> Optional[CorrectnessReport]:
        """The first disjunct of Definition 6, or None when events fire."""
        if masks is not None:
            if any(masks):
                return None
        elif any(
            event.matches(lp)
            for lp in trace.packets
            for event in self.nes.events
        ):
            return None
        initial = self.config_of_event_set(frozenset())
        for t in sorted(trace.trace_indices):
            if not packet_trace_in_traces(initial, trace.packet_trace(t)):
                return CorrectnessReport(
                    False,
                    "no event fires but a packet trace is not in Traces(g(∅))",
                    t,
                )
        return CorrectnessReport(True)

    def _candidate_sequences(
        self, trace: NetworkTrace, masks: Optional[Tuple[int, ...]] = None
    ) -> Iterator[Tuple[Tuple[Event, ...], Tuple[int, ...]]]:
        """Lazily enumerate allowed event sequences worth trying.

        Only events matched by some trace position can have a first
        occurrence, so sequences are built from those (hugely pruning
        the search).  Yields ``(sequence, per-event bits)`` pairs in the
        same preorder as the old materialized list; being a generator,
        a correct trace stops the enumeration at its first match.
        """
        structure = self.nes.structure
        if masks is not None:
            seen = 0
            for mask in masks:
                seen |= mask
            universe = structure.universe
            matched = []
            scan = seen
            while scan:
                low = scan & -scan
                scan ^= low
                # Ascending bit order == sorted-by-repr order: the
                # universe is interned sorted by repr.
                matched.append((universe[low.bit_length() - 1], low))
        else:
            matched = [
                (event, 1 << structure.event_index[event])
                for event in sorted(self.nes.events, key=repr)
                if any(event.matches(lp) for lp in trace.packets)
            ]
        max_length = self.max_sequence_length

        def extend(
            prefix: Tuple[Event, ...], bits: Tuple[int, ...], collected: int
        ) -> Iterator[Tuple[Tuple[Event, ...], Tuple[int, ...]]]:
            if prefix:
                yield prefix, bits
            if len(prefix) >= max_length:
                return
            for event, bit in matched:
                if collected & bit:
                    continue
                if not structure.enables_mask(collected, bit.bit_length() - 1):
                    continue
                if not structure.con_mask(collected | bit):
                    continue
                yield from extend(prefix + (event,), bits + (bit,), collected | bit)

        yield from extend((), (), 0)

    def _update_of_sequence(
        self, sequence: Tuple[Event, ...], bits: Tuple[int, ...]
    ) -> EventDrivenUpdate:
        configs: List[Configuration] = [self.config_of_event_set(frozenset())]
        if self._mask:
            collected_mask = 0
            for bit in bits:
                collected_mask |= bit
                configs.append(self._config_of_mask(collected_mask))
        else:
            collected: FrozenSet[Event] = frozenset()
            for event in sequence:
                collected = collected | {event}
                configs.append(self.config_of_event_set(collected))
        return EventDrivenUpdate(tuple(configs), tuple(sequence), self._ambient)


def check_trace_against_nes(
    trace: NetworkTrace,
    nes: NES,
    topology: Topology,
    options: Optional[SimOptions] = None,
) -> CorrectnessReport:
    """One-shot convenience wrapper around :class:`NESChecker`."""
    return NESChecker(nes, topology, options=options).check(trace)
