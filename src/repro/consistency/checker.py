"""Correctness of network traces with respect to an NES (Definition 6).

A trace is correct when either no event ever fires and every packet is
processed by the initial configuration ``g(∅)``, or some event sequence
allowed by the NES turns the trace into a correct event-driven
consistent update.  The checker searches the (finite) space of allowed
sequences; it is the empirical counterpart of Theorem 1 and is exercised
by the test suite against traces produced by the runtime semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..events.event import Event
from ..events.nes import NES
from ..netkat.ast import Policy
from ..netkat.compiler import Configuration, compile_policy
from ..netkat.fdd import FDDBuilder
from ..stateful.ast import StateVector
from ..topology import Topology
from .traces import NetworkTrace, packet_trace_in_traces
from .update import CorrectnessReport, EventDrivenUpdate, check_update_correctness

__all__ = ["NESChecker", "check_trace_against_nes"]


class NESChecker:
    """Checks traces against an NES, caching compiled configurations."""

    def __init__(self, nes: NES, topology: Topology, max_sequence_length: int = 12):
        self.nes = nes
        self.topology = topology
        self.max_sequence_length = max_sequence_length
        self._builder = FDDBuilder()
        self._configs: Dict[StateVector, Configuration] = {}

    def configuration(self, state: StateVector) -> Configuration:
        cached = self._configs.get(state)
        if cached is None:
            cached = compile_policy(
                self.nes.configuration_policy(state),
                self.topology,
                builder=self._builder,
                name=f"C{list(state)}",
            )
            self._configs[state] = cached
        return cached

    def config_of_event_set(self, event_set: FrozenSet[Event]) -> Configuration:
        return self.configuration(self.nes.state_of(event_set))

    # -- Definition 6 ----------------------------------------------------------

    def check(self, trace: NetworkTrace) -> CorrectnessReport:
        """Is the trace correct with respect to the NES?"""
        quiet = self._check_no_events(trace)
        if quiet is not None:
            return quiet

        reports: List[CorrectnessReport] = []
        for sequence in self._candidate_sequences(trace):
            update = self._update_of_sequence(sequence)
            report = check_update_correctness(trace, update)
            if report:
                return report
            reports.append(report)
        if not reports:
            return CorrectnessReport(
                False,
                "no event sequence allowed by the NES matches the trace "
                "(and some packet matches an event, so the quiet case "
                "does not apply)",
            )
        # Surface the most informative failure: prefer reports whose FO
        # existed (their reason names a concrete violating packet trace).
        for report in reports:
            if report.reason != "FO(ntr, U) does not exist":
                return report
        return reports[0]

    def _check_no_events(self, trace: NetworkTrace) -> Optional[CorrectnessReport]:
        """The first disjunct of Definition 6, or None when events fire."""
        if any(
            event.matches(lp)
            for lp in trace.packets
            for event in self.nes.events
        ):
            return None
        initial = self.config_of_event_set(frozenset())
        for t in sorted(trace.trace_indices):
            if not packet_trace_in_traces(initial, trace.packet_trace(t)):
                return CorrectnessReport(
                    False,
                    "no event fires but a packet trace is not in Traces(g(∅))",
                    t,
                )
        return CorrectnessReport(True)

    def _candidate_sequences(self, trace: NetworkTrace) -> List[Tuple[Event, ...]]:
        """Allowed event sequences worth trying against this trace.

        Only events matched by some trace position can have a first
        occurrence, so sequences are built from those (hugely pruning
        the search).
        """
        structure = self.nes.structure
        matched = [
            (event, 1 << structure.event_index[event])
            for event in sorted(self.nes.events, key=repr)
            if any(event.matches(lp) for lp in trace.packets)
        ]
        sequences: List[Tuple[Event, ...]] = []

        def extend(prefix: Tuple[Event, ...], collected: int) -> None:
            if len(prefix) > 0:
                sequences.append(prefix)
            if len(prefix) >= self.max_sequence_length:
                return
            for event, bit in matched:
                if collected & bit:
                    continue
                if not structure.enables_mask(collected, bit.bit_length() - 1):
                    continue
                if not structure.con_mask(collected | bit):
                    continue
                extend(prefix + (event,), collected | bit)

        extend((), 0)
        return sequences

    def _update_of_sequence(self, sequence: Tuple[Event, ...]) -> EventDrivenUpdate:
        configs: List[Configuration] = [self.config_of_event_set(frozenset())]
        collected: FrozenSet[Event] = frozenset()
        for event in sequence:
            collected = collected | {event}
            configs.append(self.config_of_event_set(collected))
        return EventDrivenUpdate(
            tuple(configs), tuple(sequence), frozenset(self.nes.events)
        )


def check_trace_against_nes(
    trace: NetworkTrace, nes: NES, topology: Topology
) -> CorrectnessReport:
    """One-shot convenience wrapper around :class:`NESChecker`."""
    return NESChecker(nes, topology).check(trace)
