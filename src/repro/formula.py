"""Conjunctive formulas over packet fields, used as event guards.

The event-extraction function of Figure 6 threads a formula ``phi``
through the program, conjoining each field test it passes.  The paper's
``phi`` ranges over conjunctions of (in)equality literals ``f = n`` /
``f != n``; this module gives them a canonical, hashable representation
with contradiction detection and the ``(exists f: phi)`` projection used
by the field-assignment rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from .netkat.ast import Predicate, TRUE, conj, neg, test
from .netkat.packet import Packet

__all__ = ["Literal", "Formula", "EQ", "NE"]

EQ = "="
NE = "!="


@dataclass(frozen=True, order=True)
class Literal:
    """A single literal ``field = value`` or ``field != value``."""

    field: str
    op: str
    value: int

    def __post_init__(self) -> None:
        if self.op not in (EQ, NE):
            raise ValueError(f"bad literal operator {self.op!r}")

    def negated(self) -> "Literal":
        return Literal(self.field, NE if self.op == EQ else EQ, self.value)

    def holds(self, packet: Packet) -> bool:
        actual = packet.get(self.field)
        if self.op == EQ:
            return actual == self.value
        return actual != self.value

    def __repr__(self) -> str:
        return f"{self.field}{self.op}{self.value}"


class Formula:
    """A satisfiable canonical conjunction of literals.

    Canonicalization: a positive literal on a field subsumes (and must be
    consistent with) every other literal on that field; negative literals
    on a field accumulate.  Unsatisfiable conjunctions are represented by
    the absence of a Formula -- the combinators return ``None``.
    """

    __slots__ = ("_literals", "_hash", "_repr")

    def __init__(self, literals: Iterable[Literal] = ()):
        lits = frozenset(literals)
        if _contradictory(lits):
            raise ValueError(
                f"contradictory literal set {sorted(lits)!r}; "
                "use Formula.conjoin to build formulas safely"
            )
        object.__setattr__(self, "_literals", _canonicalize(lits))
        object.__setattr__(self, "_hash", hash(self._literals))
        object.__setattr__(self, "_repr", None)

    @staticmethod
    def true() -> "Formula":
        return Formula()

    @property
    def literals(self) -> FrozenSet[Literal]:
        return self._literals

    def is_true(self) -> bool:
        return not self._literals

    def conjoin(self, literal: Literal) -> Optional["Formula"]:
        """``self AND literal``, or None when contradictory."""
        lits = set(self._literals)
        lits.add(literal)
        if _contradictory(frozenset(lits)):
            return None
        return Formula(lits)

    def conjoin_all(self, literals: Iterable[Literal]) -> Optional["Formula"]:
        out: Optional[Formula] = self
        for literal in literals:
            if out is None:
                return None
            out = out.conjoin(literal)
        return out

    def without_field(self, field: str) -> "Formula":
        """``(exists field: self)`` -- strip all literals on ``field``."""
        return Formula(l for l in self._literals if l.field != field)

    def holds(self, packet: Packet) -> bool:
        return all(l.holds(packet) for l in self._literals)

    def to_predicate(self) -> Predicate:
        """Render as a NetKAT predicate."""
        terms = []
        for l in sorted(self._literals):
            t = test(l.field, l.value)
            terms.append(t if l.op == EQ else neg(t))
        return conj(*terms) if terms else TRUE

    def implies(self, other: "Formula") -> bool:
        """Syntactic implication: every literal of ``other`` follows from self."""
        pos: Dict[str, int] = {
            l.field: l.value for l in self._literals if l.op == EQ
        }
        for l in other._literals:
            if l.op == EQ:
                if pos.get(l.field) != l.value:
                    return False
            else:
                known = pos.get(l.field)
                if known is not None and known != l.value:
                    continue  # f=known (!= value) implies f != value
                if l not in self._literals:
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return self._hash

    def __getstate__(self):
        # Only the literals travel: the cached hash is
        # PYTHONHASHSEED-dependent, so a pickled value from the storing
        # process would disagree with hashes computed by the loader.
        return self._literals

    def __setstate__(self, literals):
        object.__setattr__(self, "_literals", literals)
        object.__setattr__(self, "_hash", hash(literals))
        object.__setattr__(self, "_repr", None)

    def __repr__(self) -> str:
        # Formula reprs feed Event.__repr__, the pipeline's sort key.
        if self._repr is None:
            if not self._literals:
                object.__setattr__(self, "_repr", "true")
            else:
                object.__setattr__(
                    self,
                    "_repr",
                    " & ".join(repr(l) for l in sorted(self._literals)),
                )
        return self._repr


def _contradictory(literals: FrozenSet[Literal]) -> bool:
    positives: Dict[str, Set[int]] = {}
    negatives: Dict[str, Set[int]] = {}
    for l in literals:
        target = positives if l.op == EQ else negatives
        target.setdefault(l.field, set()).add(l.value)
    for field, values in positives.items():
        if len(values) > 1:
            return True
        (value,) = values
        if value in negatives.get(field, ()):
            return True
    return False


def _canonicalize(literals: FrozenSet[Literal]) -> FrozenSet[Literal]:
    """Drop negative literals made redundant by a positive one."""
    positives = {l.field: l.value for l in literals if l.op == EQ}
    out = set()
    for l in literals:
        if l.op == NE and l.field in positives:
            continue  # f=v already implies f != anything-else
        out.add(l)
    return frozenset(out)
