"""Simulator performance knobs, mirroring the compiler's options rule.

Exactly like :class:`repro.pipeline.CompileOptions`, every simulator
performance knob lands in one frozen dataclass with an off-position
identity test: the knobs change *speed*, never behaviour.  The
off-position (``SimOptions(mask_digests=False, batch=False)``) is the
retained frozenset reference path; the record-identity goldens in
``tests/test_sim_streaming.py`` pin delivery/drop record sequences and
checker verdicts to be identical across every knob combination.

This module is deliberately dependency-free (dataclasses only) so the
network layer, the switch logics, and the consistency checker can all
import it without creating package cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimOptions", "REFERENCE_SIM_OPTIONS"]


@dataclass(frozen=True)
class SimOptions:
    """Knobs for the streaming simulator and the trace checker.

    ``mask_digests``
        Thread interned event masks (``events/structure.py`` bit
        interning) through the hot path: frames carry
        ``tag_mask``/``digest_mask`` ints, per-switch registers are
        ints, enable/consistency checks run via
        ``enables_mask``/``con_mask``, and the Definition 6 checker
        works on per-position match masks -- no ``frozenset``
        allocation per packet.  Off: the original frozenset path.

    ``batch``
        The batched streaming layer: ``FrameBatch`` header interning in
        ``SimNetwork.inject_stream``, the per-switch classification
        memo (match-key -> forwarding outputs, keyed on the interned
        header), and the per-link packet-relocation memo, so
        identical-header packets skip FDD/table re-evaluation.  Off:
        every packet re-evaluates the flow table.
    """

    mask_digests: bool = True
    batch: bool = True


# The retained record-identity reference path (all knobs off).
REFERENCE_SIM_OPTIONS = SimOptions(mask_digests=False, batch=False)
