"""Launcher for the compilation daemon.

Run it standalone or through the package CLI::

    python -m repro.service.launcher --host 0.0.0.0 --port 8008 \\
        --cache-dir ~/.cache/repro-service
    python -m repro serve --port 8008 --cache-dir ~/.cache/repro-service

Environment:

- ``REPRO_SERVICE_HOST`` / ``REPRO_SERVICE_PORT`` — defaults for
  ``--host`` / ``--port``.
- ``REPRO_CACHE_HMAC_KEY`` — signs/verifies on-disk cache artifacts
  (resolved by :meth:`repro.CompileOptions.resolved_cache_hmac_key`);
  combine with ``--strict-cache`` to make a tampered shared cache a
  hard, health-visible failure instead of a recompile.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from ..obs import metrics as obs_metrics
from ..pipeline import BACKENDS, CompileOptions
from .server import create_server
from .state import DEFAULT_MEMO_SIZE

__all__ = ["build_arg_parser", "main", "run"]

DEFAULT_HOST = os.environ.get("REPRO_SERVICE_HOST", "127.0.0.1")
DEFAULT_PORT = int(os.environ.get("REPRO_SERVICE_PORT", "8008"))


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Compilation-as-a-service daemon around the repro "
        "Pipeline façade",
    )
    add_serve_arguments(parser)
    return parser


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The daemon flags, shared with ``python -m repro serve``."""
    parser.add_argument(
        "--host", default=DEFAULT_HOST,
        help=f"bind address (default: {DEFAULT_HOST}; "
        "env REPRO_SERVICE_HOST)",
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 = ephemeral (default: {DEFAULT_PORT}; "
        "env REPRO_SERVICE_PORT)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared on-disk artifact cache behind the in-process memo "
        "(default: disabled); set REPRO_CACHE_HMAC_KEY to sign/verify "
        "entries",
    )
    parser.add_argument(
        "--strict-cache", action="store_true",
        help="escalate cache integrity rejections to hard errors "
        "(surfaced by /health as non-200)",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial",
        help="default per-configuration compile executor (requests may "
        "override per call)",
    )
    parser.add_argument(
        "--memo-size", type=int, default=DEFAULT_MEMO_SIZE, metavar="N",
        help=f"in-process compiled-pipeline LRU capacity "
        f"(default: {DEFAULT_MEMO_SIZE})",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log one line per handled request to stderr",
    )


def run(args: argparse.Namespace) -> int:
    """Build the server from parsed flags and serve until interrupted."""
    # Install the process-wide metrics registry before the server state
    # is built: the state adopts it, so GET /metrics covers the hot-path
    # pipeline/cache/executor instrumentation, not just the scrape-time
    # service collectors.  (Idempotent when already installed — e.g. a
    # supervising process that installed its own registry first.)
    try:
        obs_metrics.install()
    except RuntimeError:
        pass  # a different registry is already installed; adopt it
    options = CompileOptions(
        backend=args.backend,
        cache_dir=args.cache_dir,
        strict_cache=args.strict_cache,
    )
    server = create_server(
        host=args.host,
        port=args.port,
        options=options,
        memo_size=args.memo_size,
        verbose=args.verbose,
    )
    host, port = server.server_address[:2]
    cache = args.cache_dir if args.cache_dir else "disabled"
    print(
        f"repro compilation service listening on http://{host}:{port} "
        f"(cache: {cache}, memo: {args.memo_size} pipelines)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.server_close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run(build_arg_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
