"""Shared server state: pipeline memo, single-flight, stats, health.

The service keys everything on the existing content-addressed
:meth:`~repro.pipeline.Pipeline.artifact_key` — the same multi-tenant
key the on-disk :class:`~repro.pipeline.ArtifactCache` uses — so the
cache hierarchy has three rungs, from hottest to coldest:

1. the bounded in-process **pipeline memo** (an LRU of compiled
   :class:`~repro.pipeline.Pipeline` objects, which also keeps the
   symbolic engine warm for ``POST /update``);
2. the shared **on-disk artifact cache** behind every miss (enabled by
   the launcher's ``--cache-dir``; HMAC-verified when
   ``REPRO_CACHE_HMAC_KEY`` is set, hard-failing under
   ``--strict-cache``);
3. a **cold compile**, deduplicated per key by single-flight locks: N
   concurrent identical requests run ONE compile, and the rest adopt
   its pipeline (the ``compile.singleflight_coalesced`` counter in
   ``GET /stats`` is the observable).

Health aggregation never double-counts: live pipelines are summed on
demand and an evicted pipeline's counters are folded into a cumulative
total exactly once, at eviction.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..netkat.ast import Policy
from ..obs import metrics as obs_metrics
from ..pipeline import CompileOptions, Delta, Pipeline
from ..topology import Topology

__all__ = ["ServiceState", "ServiceStats", "UnknownArtifactError"]

# Latency samples retained per endpoint for the /stats quantiles; a
# bounded window so a long-lived daemon's stats stay O(1) in memory.
_LATENCY_WINDOW = 1024

# Default pipeline-memo capacity (pipelines, not bytes).
DEFAULT_MEMO_SIZE = 64


class UnknownArtifactError(Exception):
    """``POST /update`` named an artifact key the memo no longer holds
    (never served, or evicted); the client falls back to ``/compile``."""

    code = "unknown_artifact_key"

    def __init__(self, key: str):
        super().__init__(
            f"artifact key {key!r} is not resident in the pipeline memo; "
            "re-POST the full inputs to /compile"
        )
        self.key = key


class ServiceStats:
    """Thread-safe request counters and bounded latency windows."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: Dict[str, collections.deque] = {}
        self.started = time.time()

    def count(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def record_request(self, endpoint: str, seconds: float, error: bool) -> None:
        with self._lock:
            self._counters[f"requests.{endpoint}"] = (
                self._counters.get(f"requests.{endpoint}", 0) + 1
            )
            if error:
                self._counters[f"errors.{endpoint}"] = (
                    self._counters.get(f"errors.{endpoint}", 0) + 1
                )
            window = self._latencies.get(endpoint)
            if window is None:
                window = self._latencies[endpoint] = collections.deque(
                    maxlen=_LATENCY_WINDOW
                )
            window.append(seconds)

    def counter(self, counter: str) -> int:
        with self._lock:
            return self._counters.get(counter, 0)

    @staticmethod
    def _quantiles(samples: List[float]) -> Dict[str, float]:
        ordered = sorted(samples)
        count = len(ordered)

        def at(q: float) -> float:
            return ordered[min(count - 1, int(q * count))]

        return {
            "p50_ms": round(at(0.50) * 1000, 3),
            "p90_ms": round(at(0.90) * 1000, 3),
            "p99_ms": round(at(0.99) * 1000, 3),
            "max_ms": round(ordered[-1] * 1000, 3),
        }

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            windows = {
                endpoint: list(window)
                for endpoint, window in self._latencies.items()
            }
        endpoints: Dict[str, Any] = {}
        for endpoint, samples in sorted(windows.items()):
            endpoints[endpoint] = {
                "count": counters.get(f"requests.{endpoint}", 0),
                "errors": counters.get(f"errors.{endpoint}", 0),
                "latency": self._quantiles(samples) if samples else {},
            }
        return {
            "uptime_seconds": round(time.time() - self.started, 3),
            "counters": counters,
            "endpoints": endpoints,
        }


class ServiceState:
    """Everything the request handlers share.

    ``base_options`` carries the server's deployment policy (cache
    directory, HMAC key resolution, strict-cache, default backend);
    per-request option subsets and deadlines are layered on top of it by
    :meth:`effective_options` without ever touching the server-owned
    fields.
    """

    def __init__(
        self,
        base_options: Optional[CompileOptions] = None,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ) -> None:
        if memo_size < 1:
            raise ValueError(f"memo_size must be >= 1, got {memo_size}")
        self.base_options = (
            base_options if base_options is not None else CompileOptions()
        )
        self.memo_size = memo_size
        self.stats = ServiceStats()
        self._memo_lock = threading.Lock()
        self._memo: "collections.OrderedDict[str, Pipeline]" = (
            collections.OrderedDict()
        )
        self._evicted_health: Dict[str, int] = {}
        self._flight_lock = threading.Lock()
        self._flights: Dict[str, threading.Lock] = {}
        # The registry GET /metrics renders.  Adopt the process-wide
        # installed one when present (the production launcher installs
        # it, so pipeline/cache/simulator instrumentation lands there
        # too); otherwise own a private registry — never installed, so
        # a test's serve_in_thread daemon cannot leak process state.
        # Service-level series (requests, latency quantiles, compile
        # sources, memo occupancy) are scrape-time collectors over
        # ServiceStats: no double bookkeeping on the request hot path.
        installed = obs_metrics.active()
        self.registry = (
            installed if installed is not None else obs_metrics.MetricsRegistry()
        )
        self.registry.register_collector(self._metric_samples)

    # -- options ------------------------------------------------------------

    def effective_options(
        self,
        requested: Optional[CompileOptions] = None,
        deadline_seconds: Optional[float] = None,
    ) -> CompileOptions:
        """The request's options with the per-request deadline mapped
        onto ``CompileOptions.deadline_seconds`` (execution-only, so it
        never perturbs the artifact key)."""
        options = requested if requested is not None else self.base_options
        if deadline_seconds is not None:
            options = options.replace(deadline_seconds=float(deadline_seconds))
        return options

    # -- pipeline memo (LRU) ------------------------------------------------

    def memo_get(self, key: str) -> Optional[Pipeline]:
        with self._memo_lock:
            pipeline = self._memo.get(key)
            if pipeline is not None:
                self._memo.move_to_end(key)
            return pipeline

    def memo_put(self, key: str, pipeline: Pipeline) -> None:
        with self._memo_lock:
            replaced = self._memo.get(key)
            self._memo[key] = pipeline
            self._memo.move_to_end(key)
            if replaced is not None and replaced is not pipeline:
                # Replacing a resident key (e.g. an /update whose
                # post-delta key is already memoized) drops the old
                # pipeline from the live scan without an eviction pop;
                # fold its counters here — exactly once, like an
                # eviction — so its health history is not lost.
                self._fold_health(replaced)
            while len(self._memo) > self.memo_size:
                _, evicted = self._memo.popitem(last=False)
                self.stats.count("memo.evictions")
                # Fold the evicted pipeline's health counters into the
                # cumulative total exactly once, so /health keeps the
                # full daemon history without double-counting the live
                # scan below.
                self._fold_health(evicted)

    def _fold_health(self, pipeline: Pipeline) -> None:
        """Accumulate a memo-departing pipeline's health counters into
        the cumulative total (caller holds ``_memo_lock``)."""
        for counter, value in pipeline.report().health.items():
            self._evicted_health[counter] = (
                self._evicted_health.get(counter, 0) + value
            )

    def memo_snapshot(self) -> Dict[str, Any]:
        with self._memo_lock:
            return {
                "size": len(self._memo),
                "capacity": self.memo_size,
                "evictions": self.stats.counter("memo.evictions"),
            }

    # -- single-flight ------------------------------------------------------

    def _flight(self, key: str) -> threading.Lock:
        with self._flight_lock:
            lock = self._flights.get(key)
            if lock is None:
                lock = self._flights[key] = threading.Lock()
            return lock

    # -- the request cores --------------------------------------------------

    def compile_pipeline(
        self,
        program: Policy,
        topology: Topology,
        initial_state: Tuple[int, ...],
        options: CompileOptions,
    ) -> Tuple[str, Pipeline, str]:
        """Serve a compiled pipeline for the inputs; returns
        ``(artifact_key, pipeline, source)`` with ``source`` one of
        ``"memo"`` (warm in-process hit), ``"coalesced"`` (adopted a
        concurrent identical compile's result), ``"disk"`` (on-disk
        artifact cache hit), or ``"cold"`` (full compile).
        """
        pipeline = Pipeline(program, topology, initial_state, options)
        key = pipeline.artifact_key()
        cached = self.memo_get(key)
        if cached is not None:
            self.stats.count("compile.memo_hits")
            return key, cached, "memo"
        with self._flight(key):
            cached = self.memo_get(key)
            if cached is not None:
                # A concurrent identical request compiled while this one
                # waited on the flight lock: adopt its pipeline — the
                # single-flight contract (N identical requests, one
                # compile), observable in /stats.
                self.stats.count("compile.singleflight_coalesced")
                return key, cached, "coalesced"
            pipeline.compiled  # may raise a typed PipelineError
            if pipeline.report().artifact_cache == "hit":
                self.stats.count("compile.disk_hits")
                source = "disk"
            else:
                self.stats.count("compile.cold")
                source = "cold"
            self.memo_put(key, pipeline)
            return key, pipeline, source

    def update_pipeline(self, key: str, delta: Delta) -> Tuple[str, Pipeline]:
        """Incrementally recompile the memoized pipeline under ``key``
        and memoize the result under its post-delta key."""
        base = self.memo_get(key)
        if base is None:
            raise UnknownArtifactError(key)
        updated = base.update(delta)
        new_key = updated.artifact_key()
        self.stats.count("update.applied")
        self.memo_put(new_key, updated)
        return new_key, updated

    # -- health -------------------------------------------------------------

    def aggregated_health(self) -> Dict[str, int]:
        """Evicted-pipeline counters plus a live scan of the memo."""
        with self._memo_lock:
            total = dict(self._evicted_health)
            live = list(self._memo.values())
        for pipeline in live:
            for counter, value in pipeline.report().health.items():
                total[counter] = total.get(counter, 0) + value
        return total

    def health_body(self) -> Tuple[bool, Dict[str, Any]]:
        """The ``GET /health`` verdict and body.

        ``ok`` is ``False`` — and the endpoint non-200 — when a
        strict-cache integrity error has ever surfaced: under
        ``strict_cache`` a tampered shared cache is a fleet-level signal
        worth failing health checks over, not a recompile-and-carry-on.
        """
        integrity_errors = self.stats.counter("errors.integrity")
        ok = integrity_errors == 0
        return ok, {
            "ok": ok,
            "health": self.aggregated_health(),
            "integrity_errors": integrity_errors,
            "strict_cache": self.base_options.strict_cache,
            "memo": self.memo_snapshot(),
        }

    def _metric_samples(self):
        """Scrape-time collector: ServiceStats, compile sources, memo
        occupancy, and aggregated health as Prometheus samples.

        Derived at collect() time from the structures the JSON endpoints
        already maintain, so the request hot path writes each fact once.
        Aggregated health is exported under its own service-level name —
        ``repro_pipeline_health_total`` belongs to the hot-path mirror
        and must not be duplicated by a collector.
        """
        snapshot = self.stats.snapshot()
        samples = []
        for endpoint, data in snapshot["endpoints"].items():
            samples.append((
                "repro_service_requests_total", "counter",
                {"endpoint": endpoint}, data["count"],
                "Requests handled, by endpoint",
            ))
            samples.append((
                "repro_service_errors_total", "counter",
                {"endpoint": endpoint}, data["errors"],
                "Requests answered with a >=400 status, by endpoint",
            ))
            for quantile_key, quantile in (
                ("p50_ms", "0.5"), ("p90_ms", "0.9"), ("p99_ms", "0.99"),
            ):
                ms = data["latency"].get(quantile_key)
                if ms is not None:
                    samples.append((
                        "repro_service_request_latency_seconds", "gauge",
                        {"endpoint": endpoint, "quantile": quantile},
                        ms / 1000.0,
                        "Request latency quantiles over the bounded "
                        "per-endpoint sample window",
                    ))
        counters = snapshot["counters"]
        for source, counter in (
            ("memo", "compile.memo_hits"),
            ("disk", "compile.disk_hits"),
            ("cold", "compile.cold"),
            ("coalesced", "compile.singleflight_coalesced"),
        ):
            samples.append((
                "repro_service_compiles_total", "counter",
                {"source": source}, counters.get(counter, 0),
                "Compiles served, by source (memo/disk/cold/"
                "single-flight coalesced)",
            ))
        samples.append((
            "repro_service_updates_total", "counter", {},
            counters.get("update.applied", 0),
            "Incremental /update recompilations applied",
        ))
        memo = self.memo_snapshot()
        samples.append((
            "repro_service_memo_pipelines", "gauge", {}, memo["size"],
            "Pipelines resident in the in-process memo",
        ))
        samples.append((
            "repro_service_memo_capacity", "gauge", {}, memo["capacity"],
            "Configured pipeline-memo capacity",
        ))
        samples.append((
            "repro_service_memo_evictions_total", "counter", {},
            memo["evictions"],
            "Pipelines evicted from the memo LRU",
        ))
        samples.append((
            "repro_service_uptime_seconds", "gauge", {},
            snapshot["uptime_seconds"],
            "Seconds since the service state was created",
        ))
        for counter, value in sorted(self.aggregated_health().items()):
            samples.append((
                "repro_service_health_total", "counter",
                {"counter": counter}, value,
                "Aggregated pipeline health counters (evicted + live "
                "memoized pipelines), by legacy counter name",
            ))
        return samples

    def stats_body(self) -> Dict[str, Any]:
        """The ``GET /stats`` body: request counts and latency
        quantiles per endpoint, the memo/disk/cold/single-flight compile
        counters, memo occupancy, and aggregated health."""
        snapshot = self.stats.snapshot()
        counters = snapshot.pop("counters")
        compiles = {
            "memo_hits": counters.get("compile.memo_hits", 0),
            "disk_hits": counters.get("compile.disk_hits", 0),
            "cold": counters.get("compile.cold", 0),
            "singleflight_coalesced": counters.get(
                "compile.singleflight_coalesced", 0
            ),
            "updates": counters.get("update.applied", 0),
        }
        return {
            **snapshot,
            "compiles": compiles,
            "memo": self.memo_snapshot(),
            "cache_dir": (
                str(self.base_options.cache_dir)
                if self.base_options.cache_dir is not None
                else None
            ),
            "health": self.aggregated_health(),
        }
