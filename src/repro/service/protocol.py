"""The compilation service's JSON wire protocol.

One module owns every translation between wire JSON and pipeline
objects, used by both the server handlers and the client:

- **programs** travel as concrete-syntax source strings and go through
  the existing parser/pretty-printer pair
  (:func:`repro.netkat.parser.parse_policy` /
  :func:`repro.netkat.pretty.pretty_policy`), which round-trips the
  smart-constructor normal form every programmatically-built policy is
  already in — so a program serialized by a client and parsed by the
  server is structurally equal to the original, and the served tables
  (and artifact keys) match a direct :class:`~repro.pipeline.Pipeline`
  build byte for byte;
- **topologies** travel as ``{"links", "hosts", "switches"}`` objects
  mirroring :func:`repro.pipeline._topology_fingerprint`;
- **options** travel as a validated subset of
  :class:`~repro.pipeline.CompileOptions` fields — cache placement and
  trust (``cache_dir`` / ``cache_hmac_key`` / ``strict_cache``) are the
  *server's* deployment decision and are rejected if a request names
  them; the per-request wall-clock budget travels as a separate
  top-level ``deadline_seconds`` field mapped onto
  ``CompileOptions.deadline_seconds`` server-side;
- **deltas** (:class:`~repro.pipeline.Delta`) round-trip through
  :func:`delta_to_wire` / :func:`delta_from_wire`, so ``POST /update``
  works over the wire;
- **tables** are served in the canonical per-switch serialization the
  byte-identity golden suites pin (``tests/seed_apps.guarded_bytes``).

Malformed wire input raises :class:`ProtocolError` carrying a stable
machine-readable ``code``; the server maps it to a structured 400 body.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..netkat.ast import Policy
from ..netkat.parser import ParseError, parse_policy
from ..netkat.pretty import pretty_policy
from ..pipeline import BACKENDS, CompileOptions, Delta
from ..runtime.compiler import CompiledNES
from ..topology import Topology

__all__ = [
    "PROTOCOL_VERSION",
    "REQUESTABLE_OPTION_FIELDS",
    "ProtocolError",
    "compile_request_to_wire",
    "delta_from_wire",
    "delta_to_wire",
    "error_to_wire",
    "initial_state_from_wire",
    "options_from_wire",
    "options_to_wire",
    "program_from_wire",
    "program_to_wire",
    "tables_to_wire",
    "topology_from_wire",
    "topology_to_wire",
]

# Bumped on incompatible wire-shape changes; served by GET /version so a
# fleet can gate rollouts on it.
PROTOCOL_VERSION = 1

# CompileOptions fields a request may set.  Everything else is either
# server-owned deployment policy (cache_dir, cache_hmac_key,
# strict_cache) or travels as its own request field (deadline_seconds).
REQUESTABLE_OPTION_FIELDS: Tuple[str, ...] = (
    "backend",
    "max_workers",
    "compile_retries",
    "symbolic_extract",
    "knowledge_cache",
    "ordered_insert",
    "ast_memo",
    "field_order",
    "enforce_locality",
    "tag_field",
    "max_frontier",
)


class ProtocolError(ValueError):
    """Malformed wire input; ``code`` is a stable machine-readable
    discriminator (``"parse_error"``, ``"bad_topology"``, ...)."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def _expect_mapping(obj: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise ProtocolError(
            f"bad_{what}", f"{what} must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


def program_to_wire(program: Union[Policy, str]) -> str:
    """Concrete-syntax source for a policy (strings pass through)."""
    if isinstance(program, str):
        return program
    return pretty_policy(program)


def program_from_wire(obj: Any) -> Policy:
    """Parse a wire program (a concrete-syntax source string)."""
    if not isinstance(obj, str):
        raise ProtocolError(
            "bad_program",
            f"program must be a source string, got {type(obj).__name__}",
        )
    try:
        return parse_policy(obj)
    except ParseError as exc:
        raise ProtocolError("parse_error", str(exc)) from exc


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------


def topology_to_wire(topology: Topology) -> Dict[str, Any]:
    """``{"links": [["sw:pt","sw:pt"], ...], "hosts": [[name,"sw:pt"],
    ...], "switches": [...]}`` — the same data the artifact-key
    fingerprint digests, so equal wire topologies key identically."""
    return {
        "links": [[str(src), str(dst)] for src, dst in topology.links()],
        "hosts": [[h.name, str(h.attachment)] for h in topology.hosts],
        "switches": sorted(topology.switches),
    }


def topology_from_wire(obj: Any) -> Topology:
    """Rebuild a :class:`~repro.topology.Topology` from its wire form."""
    wire = _expect_mapping(obj, "topology")
    unknown = set(wire) - {"links", "hosts", "switches"}
    if unknown:
        raise ProtocolError(
            "bad_topology", f"unknown topology keys {sorted(unknown)}"
        )
    topology = Topology()
    try:
        for pair in wire.get("links", ()):
            src, dst = pair
            topology.add_link(str(src), str(dst))
        for pair in wire.get("hosts", ()):
            name, attachment = pair
            topology.add_host(str(name), str(attachment))
        for switch in wire.get("switches", ()):
            topology.add_switch(int(switch))
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad_topology", f"malformed topology: {exc}") from exc
    return topology


# ---------------------------------------------------------------------------
# Initial state
# ---------------------------------------------------------------------------


def initial_state_from_wire(obj: Any) -> Tuple[int, ...]:
    """A state vector from a JSON list of ints."""
    if not isinstance(obj, Sequence) or isinstance(obj, (str, bytes)):
        raise ProtocolError(
            "bad_initial_state",
            f"initial_state must be a list of ints, got {type(obj).__name__}",
        )
    try:
        return tuple(int(component) for component in obj)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "bad_initial_state", f"malformed initial_state: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Options
# ---------------------------------------------------------------------------


def options_to_wire(options: CompileOptions) -> Dict[str, Any]:
    """The requestable subset of ``options`` as a JSON object."""
    wire: Dict[str, Any] = {}
    for name in REQUESTABLE_OPTION_FIELDS:
        value = getattr(options, name)
        wire[name] = list(value) if isinstance(value, tuple) else value
    return wire


def options_from_wire(obj: Any, base: CompileOptions) -> CompileOptions:
    """``base`` with the request's option subset applied and validated.

    ``None``/missing keeps the server's defaults; naming a server-owned
    field (cache placement/trust, the deadline) or an unknown field is a
    :class:`ProtocolError`, so a misspelled knob fails loudly instead of
    silently compiling under defaults.
    """
    if obj is None:
        return base
    wire = _expect_mapping(obj, "options")
    unknown = set(wire) - set(REQUESTABLE_OPTION_FIELDS)
    if unknown:
        raise ProtocolError(
            "bad_options",
            f"unknown or non-requestable option fields {sorted(unknown)}; "
            f"requestable: {list(REQUESTABLE_OPTION_FIELDS)}",
        )
    changes: Dict[str, Any] = {}
    for name, value in wire.items():
        if name == "field_order" and value is not None:
            value = tuple(str(field) for field in value)
        if name == "backend" and value not in BACKENDS:
            raise ProtocolError(
                "bad_options",
                f"unknown backend {value!r}; choose from {list(BACKENDS)}",
            )
        changes[name] = value
    try:
        return base.replace(**changes)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad_options", f"invalid options: {exc}") from exc


# ---------------------------------------------------------------------------
# Deltas
# ---------------------------------------------------------------------------


def delta_to_wire(delta: Delta) -> Dict[str, Any]:
    """A JSON object round-tripping through :func:`delta_from_wire`."""
    wire: Dict[str, Any] = {}
    if delta.set_state:
        wire["set_state"] = [[m, n] for m, n in delta.set_state]
    if delta.replace_policy is not None:
        wire["replace_policy"] = pretty_policy(delta.replace_policy)
        wire["with_policy"] = pretty_policy(delta.with_policy)
    if delta.topology is not None:
        wire["topology"] = topology_to_wire(delta.topology)
    return wire


def delta_from_wire(obj: Any) -> Delta:
    """Rebuild a :class:`~repro.pipeline.Delta` from its wire form."""
    wire = _expect_mapping(obj, "delta")
    unknown = set(wire) - {"set_state", "replace_policy", "with_policy", "topology"}
    if unknown:
        raise ProtocolError("bad_delta", f"unknown delta keys {sorted(unknown)}")
    set_state: List[Tuple[int, int]] = []
    for pair in wire.get("set_state", ()):
        try:
            component, value = pair
            set_state.append((int(component), int(value)))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_delta", f"set_state entries must be [component, value] "
                f"int pairs: {exc}"
            ) from exc
    replace = wire.get("replace_policy")
    with_ = wire.get("with_policy")
    topology_wire = wire.get("topology")
    try:
        return Delta(
            set_state=tuple(set_state),
            replace_policy=(
                program_from_wire(replace) if replace is not None else None
            ),
            with_policy=(
                program_from_wire(with_) if with_ is not None else None
            ),
            topology=(
                topology_from_wire(topology_wire)
                if topology_wire is not None
                else None
            ),
        )
    except ValueError as exc:
        if isinstance(exc, ProtocolError):
            raise
        raise ProtocolError("bad_delta", str(exc)) from exc


# ---------------------------------------------------------------------------
# Requests, tables, errors
# ---------------------------------------------------------------------------


def compile_request_to_wire(
    program: Union[Policy, str],
    topology: Union[Topology, Mapping[str, Any]],
    initial_state: Sequence[int],
    options: Optional[Mapping[str, Any]] = None,
    deadline_seconds: Optional[float] = None,
    include_tables: bool = True,
) -> Dict[str, Any]:
    """One ``POST /compile`` request body (also a batch entry)."""
    body: Dict[str, Any] = {
        "program": program_to_wire(program),
        "topology": (
            topology_to_wire(topology)
            if isinstance(topology, Topology)
            else dict(topology)
        ),
        "initial_state": [int(component) for component in initial_state],
    }
    if options:
        body["options"] = dict(options)
    if deadline_seconds is not None:
        body["deadline_seconds"] = float(deadline_seconds)
    if not include_tables:
        body["include_tables"] = False
    return body


def tables_to_wire(compiled: CompiledNES) -> Dict[str, str]:
    """The guarded merged tables in the canonical per-switch
    serialization: ``{"<switch>": repr(table)}``, the exact bytes the
    golden suites compare (``tests/seed_apps.guarded_bytes`` joins the
    same reprs)."""
    tables = compiled.guarded_tables()
    return {str(switch): repr(tables[switch]) for switch in sorted(tables)}


def error_to_wire(exc: BaseException, code: Optional[str] = None) -> Dict[str, Any]:
    """The structured error body: always a type and a message, plus the
    stage provenance when the failure is a typed pipeline error."""
    body: Dict[str, Any] = {
        "type": type(exc).__name__,
        "code": code if code is not None else getattr(exc, "code", "error"),
        "message": str(exc),
    }
    stage = getattr(exc, "stage", None)
    if stage is not None:
        body["stage"] = stage
    return body
