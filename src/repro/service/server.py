"""The compilation daemon's HTTP core (stdlib-only).

A :class:`CompilationServer` is a ``ThreadingHTTPServer`` carrying one
:class:`~repro.service.state.ServiceState`; each request runs on its own
thread, so the memoized pipelines lean on
:class:`~repro.pipeline.Pipeline`'s lock-guarded lazy stages and the
state's single-flight locks for correctness under concurrency.

Endpoints:

- ``POST /compile`` — compile one ``{program, topology, initial_state,
  options?, deadline_seconds?, include_tables?}`` request; responds with
  the artifact key, where the artifact came from (``memo`` /
  ``coalesced`` / ``disk`` / ``cold``), the canonical per-switch tables,
  and the pipeline report.
- ``POST /compile/batch`` — ``{"requests": [...]}``; per-entry results
  or structured errors (one bad entry never fails the batch).
- ``POST /update`` — ``{"artifact_key", "delta", include_tables?}``;
  incremental recompilation against a previously served key.
- ``GET /health`` — aggregated pipeline health counters; non-200 once a
  strict-cache integrity error has surfaced.
- ``GET /stats`` — request counts + latency quantiles per endpoint,
  memo/disk/cold/single-flight compile counters, memo occupancy.
- ``GET /metrics`` — Prometheus text exposition of the service's
  metrics registry (the installed process-wide one under the launcher,
  else a state-private registry fed by scrape-time collectors).
- ``GET /version`` — package/protocol/artifact-format versions.
- ``GET /`` — endpoint index.

Every failure maps to a structured JSON body (`protocol.error_to_wire`)
with a machine-readable ``type``/``code`` — and stage provenance for
typed :class:`~repro.pipeline.PipelineError`\\ s; nothing returns a bare
500.

Tracing: each dispatched request runs under a root span named
``service.<endpoint>``.  A client-supplied ``X-Repro-Trace-Id`` header
joins the request to the caller's trace; the effective trace ID is
echoed in the response header and stamped into structured error JSON.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from .. import __version__
from ..events.ets_to_nes import ETSConversionError
from ..netkat.flowtable import TagFieldError
from ..obs import export as obs_export
from ..obs import trace as obs_trace
from ..pipeline import (
    ARTIFACT_FORMAT,
    ArtifactIntegrityError,
    CompileOptions,
    PipelineError,
)
from ..runtime.compiler import LocalityError
from . import protocol
from .state import DEFAULT_MEMO_SIZE, ServiceState, UnknownArtifactError

__all__ = ["CompilationServer", "create_server", "serve_in_thread"]

_ENDPOINTS = (
    "POST /compile",
    "POST /compile/batch",
    "POST /update",
    "GET /health",
    "GET /stats",
    "GET /metrics",
    "GET /version",
)

# The distributed-tracing correlation header: accepted on any request,
# echoed on every response, and stamped into structured error JSON.
TRACE_HEADER = "X-Repro-Trace-Id"
_TRACE_ID_MAX = 64


def _sanitize_trace_id(raw: Optional[str]) -> Optional[str]:
    """A client-supplied trace ID, or None when absent/unusable.  IDs
    are echoed into response headers, so anything beyond a short
    token-safe string is discarded rather than reflected."""
    if not raw:
        return None
    raw = raw.strip()
    if not raw or len(raw) > _TRACE_ID_MAX:
        return None
    if not all(c.isalnum() or c in "-_." for c in raw):
        return None
    return raw

# Bodies above this are refused outright (a compile request is a program
# plus a topology, not a bulk upload).
_MAX_BODY_BYTES = 8 * 1024 * 1024


def _status_of(exc: BaseException) -> int:
    """The HTTP status for a failure; the body always carries the
    machine-readable cause regardless."""
    if isinstance(exc, protocol.ProtocolError):
        return 400
    if isinstance(exc, UnknownArtifactError):
        return 404
    if isinstance(exc, ArtifactIntegrityError):
        return 503
    if isinstance(
        exc,
        (PipelineError, ETSConversionError, LocalityError, TagFieldError,
         ValueError),
    ):
        # The inputs were well-formed wire-wise but uncompilable (not
        # locally determined, zero-hit delta substitution, ...): the
        # request is at fault, with full provenance in the body.
        return 422
    return 500


class CompilationServer(ThreadingHTTPServer):
    """The daemon: one thread per request, shared :class:`ServiceState`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        state: ServiceState,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.state = state
        self.verbose = verbose

    @property
    def base_url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = f"repro-service/{__version__}"
    # Bound blocking reads so an idle keep-alive connection releases its
    # thread instead of pinning it forever.
    timeout = 30

    server: CompilationServer  # narrowed for the helpers below

    # The sanitized (or span-minted) trace ID of the request currently
    # being dispatched on this handler; set by _dispatch.
    _request_trace_id: Optional[str] = None

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: Mapping[str, Any],
        trace_id: Optional[str] = None,
    ) -> None:
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise protocol.ProtocolError(
                "bad_request", "request requires a JSON body"
            )
        if length > _MAX_BODY_BYTES:
            raise protocol.ProtocolError(
                "bad_request",
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte limit",
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise protocol.ProtocolError(
                "bad_request", f"request body is not valid JSON: {exc}"
            ) from exc

    def _fail(self, exc: BaseException) -> Tuple[int, Dict[str, Any]]:
        status = _status_of(exc)
        if isinstance(exc, ArtifactIntegrityError):
            # The strict-cache tripwire: counted so /health goes (and
            # stays) non-200 for the fleet's monitoring to see.
            self.server.state.stats.count("errors.integrity")
        error = protocol.error_to_wire(exc)
        trace_id = obs_trace.current_trace_id() or self._request_trace_id
        if trace_id is not None:
            # Structured errors carry the request's trace ID so a
            # failure seen client-side correlates with the server's
            # spans (and with the client's own trace).
            error["trace_id"] = trace_id
        return status, {"error": error}

    def _dispatch(self, endpoint: str, handler) -> None:
        state = self.server.state
        client_trace_id = _sanitize_trace_id(self.headers.get(TRACE_HEADER))
        self._request_trace_id = client_trace_id
        start = time.perf_counter()
        # The per-request root span.  Handler threads each run in their
        # own (empty) contextvars context, so this span becomes the
        # whole request's parent; a client-supplied trace ID joins the
        # request to the caller's trace.
        with obs_trace.span(
            f"service.{endpoint}", trace_id=client_trace_id
        ) as request_span:
            trace_id = obs_trace.current_trace_id() or client_trace_id
            self._request_trace_id = trace_id
            try:
                status, body = handler()
            except BaseException as exc:  # every failure becomes structured JSON
                status, body = self._fail(exc)
            request_span.set(status=status)
        state.stats.record_request(
            endpoint, time.perf_counter() - start, error=status >= 400
        )
        self._send_json(status, body, trace_id=trace_id)

    # -- request cores ------------------------------------------------------

    def _compile_one(self, body: Any) -> Dict[str, Any]:
        wire = body if isinstance(body, Mapping) else None
        if wire is None:
            raise protocol.ProtocolError(
                "bad_request", "compile request must be a JSON object"
            )
        known = {
            "program", "topology", "initial_state", "options",
            "deadline_seconds", "include_tables",
        }
        unknown = set(wire) - known
        if unknown:
            raise protocol.ProtocolError(
                "bad_request", f"unknown request fields {sorted(unknown)}"
            )
        for required in ("program", "topology", "initial_state"):
            if required not in wire:
                raise protocol.ProtocolError(
                    "bad_request", f"missing required field {required!r}"
                )
        deadline = wire.get("deadline_seconds")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise protocol.ProtocolError(
                "bad_request",
                f"deadline_seconds must be a positive number, got {deadline!r}",
            )
        state = self.server.state
        options = state.effective_options(
            protocol.options_from_wire(
                wire.get("options"), state.base_options
            ),
            deadline_seconds=deadline,
        )
        key, pipeline, source = state.compile_pipeline(
            protocol.program_from_wire(wire["program"]),
            protocol.topology_from_wire(wire["topology"]),
            protocol.initial_state_from_wire(wire["initial_state"]),
            options,
        )
        return self._artifact_body(
            key, pipeline, source, wire.get("include_tables", True)
        )

    @staticmethod
    def _artifact_body(
        key: str, pipeline, source: str, include_tables: Any
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "artifact_key": key,
            "source": source,
            "report": pipeline.report().to_dict(),
        }
        if include_tables:
            body["tables"] = protocol.tables_to_wire(pipeline.compiled)
        return body

    # -- endpoints ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        if self.path == "/compile":
            self._dispatch(
                "compile", lambda: (200, self._compile_one(self._read_json()))
            )
        elif self.path == "/compile/batch":
            self._dispatch("compile_batch", self._handle_batch)
        elif self.path == "/update":
            self._dispatch("update", self._handle_update)
        else:
            self._dispatch("unknown", self._not_found)

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/health":
            self._dispatch("health", self._handle_health)
        elif self.path == "/stats":
            self._dispatch(
                "stats", lambda: (200, self.server.state.stats_body())
            )
        elif self.path == "/metrics":
            self._handle_metrics()
        elif self.path == "/version":
            self._dispatch("version", lambda: (200, _version_body()))
        elif self.path == "/":
            self._dispatch(
                "index",
                lambda: (200, {
                    "service": "repro-compilation-service",
                    "endpoints": list(_ENDPOINTS),
                }),
            )
        else:
            self._dispatch("unknown", self._not_found)

    def _not_found(self) -> Tuple[int, Dict[str, Any]]:
        return 404, {
            "error": {
                "type": "NotFound",
                "code": "unknown_endpoint",
                "message": f"no endpoint {self.path!r}",
                "endpoints": list(_ENDPOINTS),
            }
        }

    def _handle_batch(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_json()
        wire = body if isinstance(body, Mapping) else None
        if wire is None or "requests" not in wire or not isinstance(
            wire["requests"], list
        ):
            raise protocol.ProtocolError(
                "bad_request",
                'batch body must be {"requests": [compile requests]}',
            )
        results = []
        for entry in wire["requests"]:
            try:
                results.append(self._compile_one(entry))
            except BaseException as exc:
                status, error_body = self._fail(exc)
                results.append({**error_body, "status": status})
        return 200, {"results": results}

    def _handle_update(self) -> Tuple[int, Dict[str, Any]]:
        body = self._read_json()
        wire = body if isinstance(body, Mapping) else None
        if wire is None or "artifact_key" not in wire or "delta" not in wire:
            raise protocol.ProtocolError(
                "bad_request",
                'update body must be {"artifact_key": ..., "delta": ...}',
            )
        delta = protocol.delta_from_wire(wire["delta"])
        key, updated = self.server.state.update_pipeline(
            str(wire["artifact_key"]), delta
        )
        return 200, self._artifact_body(
            key, updated, "update", wire.get("include_tables", True)
        )

    def _handle_health(self) -> Tuple[int, Dict[str, Any]]:
        ok, body = self.server.state.health_body()
        return (200 if ok else 503), body

    def _handle_metrics(self) -> None:
        """``GET /metrics``: Prometheus text exposition of the state's
        registry.  Plain text (exposition format 0.0.4), so it bypasses
        the JSON dispatch plumbing; still counted in the request stats."""
        state = self.server.state
        start = time.perf_counter()
        payload = obs_export.prometheus_text(state.registry).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        state.stats.record_request(
            "metrics", time.perf_counter() - start, error=False
        )


def _version_body() -> Dict[str, Any]:
    return {
        "package": __version__,
        "protocol": protocol.PROTOCOL_VERSION,
        "artifact_format": ARTIFACT_FORMAT,
        "python": platform.python_version(),
    }


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    options: Optional[CompileOptions] = None,
    memo_size: int = DEFAULT_MEMO_SIZE,
    verbose: bool = False,
) -> CompilationServer:
    """Bind a :class:`CompilationServer` (``port=0`` = ephemeral).

    ``options`` is the server's base :class:`CompileOptions` — its
    ``cache_dir`` / ``strict_cache`` (and the ``REPRO_CACHE_HMAC_KEY``
    environment variable it resolves) are the deployment's cache policy;
    requests can never override them.  Call ``serve_forever()`` on the
    result, or use :func:`serve_in_thread` for an in-process daemon.
    """
    state = ServiceState(base_options=options, memo_size=memo_size)
    return CompilationServer((host, port), state, verbose=verbose)


@contextmanager
def serve_in_thread(server: CompilationServer) -> Iterator[str]:
    """Run ``server`` on a background thread, yielding its base URL and
    shutting it down cleanly on exit — the harness used by the tests,
    the example demo, the CI smoke step, and the warm-request bench."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    try:
        yield server.base_url
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
