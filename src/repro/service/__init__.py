"""The compilation service: the :class:`~repro.pipeline.Pipeline`
façade behind a long-running HTTP/JSON daemon.

This is the production story for a controller fleet: instead of every
controller linking the compiler, one daemon compiles and serves guarded
flow tables, deduplicating identical requests (single-flight), keeping
compiled pipelines warm in a bounded in-process memo keyed on the
content-addressed artifact key, and sharing the persistent on-disk
:class:`~repro.pipeline.ArtifactCache` behind it.

Layers:

- :mod:`repro.service.protocol` — the JSON wire protocol: programs (the
  concrete syntax of :mod:`repro.netkat.parser`), topologies, state
  vectors, the requestable :class:`~repro.pipeline.CompileOptions`
  subset, and :class:`~repro.pipeline.Delta` round-tripping.
- :mod:`repro.service.state` — the shared server state: pipeline memo
  (LRU), per-key single-flight locks, request/latency stats, aggregated
  health counters.
- :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer`` core
  and endpoint handlers (``POST /compile``, ``POST /compile/batch``,
  ``POST /update``, ``GET /health``, ``GET /stats``, ``GET /version``).
- :mod:`repro.service.client` — a thin urllib client used by the tests,
  the examples, and the CI smoke step.
- :mod:`repro.service.launcher` — the entry point
  (``python -m repro serve`` / ``python -m repro.service.launcher``).

Quickstart::

    from repro.service import create_server, serve_in_thread, ServiceClient

    server = create_server(host="127.0.0.1", port=0)
    with serve_in_thread(server) as base_url:
        client = ServiceClient(base_url)
        result = client.compile(program_source, topology, (0,))
        print(result["artifact_key"], result["source"])
        print(client.stats()["compiles"])
"""

from .client import ServiceClient, ServiceError
from .launcher import main as launcher_main
from .protocol import PROTOCOL_VERSION, ProtocolError
from .server import CompilationServer, create_server, serve_in_thread
from .state import ServiceState, UnknownArtifactError

__all__ = [
    "PROTOCOL_VERSION",
    "CompilationServer",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceState",
    "UnknownArtifactError",
    "create_server",
    "launcher_main",
    "serve_in_thread",
]
