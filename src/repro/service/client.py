"""A thin urllib client for the compilation service.

Used by the end-to-end tests, ``examples/service_demo.py``, the CI
smoke step, and the warm-request bench — and usable as the fleet-side
library: a controller constructs one :class:`ServiceClient` per daemon
and asks it for tables instead of linking the compiler.

Programs may be passed as :class:`~repro.netkat.ast.Policy` objects
(serialized through the pretty-printer) or as concrete-syntax strings;
topologies as :class:`~repro.topology.Topology` objects or wire dicts;
deltas as :class:`~repro.pipeline.Delta` objects or wire dicts.  Error
responses raise :class:`ServiceError` carrying the HTTP status and the
server's structured error body (type, code, message, and — for typed
pipeline failures — stage provenance).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..netkat.ast import Policy
from ..obs import trace as obs_trace
from ..pipeline import Delta
from ..topology import Topology
from . import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A non-2xx response; ``status`` is the HTTP code and ``error`` the
    server's structured body (``{"type", "code", "message", ...}``)."""

    def __init__(self, status: int, error: Mapping[str, Any]):
        code = error.get("code", "error")
        message = error.get("message", "service error")
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.error = dict(error)

    @property
    def code(self) -> str:
        return self.error.get("code", "error")

    @property
    def stage(self) -> Optional[str]:
        return self.error.get("stage")


class ServiceClient:
    """One compilation daemon, addressed by base URL.

    Tracing: every request carries an ``X-Repro-Trace-Id`` header when
    an ID is available — the explicit ``trace_id`` constructor argument,
    else the current :mod:`repro.obs.trace` span's trace ID (so a
    client used inside a ``trace.span(...)`` block correlates its
    requests automatically).  The server echoes the effective ID;
    :attr:`last_trace_id` holds the most recent echo.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        trace_id: Optional[str] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.trace_id = trace_id
        self.last_trace_id: Optional[str] = None

    # -- transport ----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        allow_error_status: bool = False,
    ) -> Tuple[int, Dict[str, Any]]:
        headers = {"Content-Type": "application/json"}
        trace_id = self.trace_id or obs_trace.current_trace_id()
        if trace_id is not None:
            headers["X-Repro-Trace-Id"] = trace_id
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(body).encode() if body is not None else None,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                self.last_trace_id = resp.headers.get("X-Repro-Trace-Id")
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            self.last_trace_id = exc.headers.get("X-Repro-Trace-Id")
            try:
                payload = json.loads(exc.read())
            except (ValueError, OSError):
                payload = {}
            if allow_error_status:
                return exc.code, payload
            raise ServiceError(
                exc.code,
                payload.get("error", {"code": "error", "message": str(exc)}),
            ) from exc

    def _post(self, path: str, body: Mapping[str, Any]) -> Dict[str, Any]:
        return self._request("POST", path, body)[1]

    def _get(self, path: str) -> Dict[str, Any]:
        return self._request("GET", path)[1]

    # -- endpoints ----------------------------------------------------------

    def compile(
        self,
        program: Union[Policy, str],
        topology: Union[Topology, Mapping[str, Any]],
        initial_state: Sequence[int],
        options: Optional[Mapping[str, Any]] = None,
        deadline_seconds: Optional[float] = None,
        include_tables: bool = True,
    ) -> Dict[str, Any]:
        """``POST /compile``: the served artifact key, source, tables,
        and pipeline report."""
        return self._post(
            "/compile",
            protocol.compile_request_to_wire(
                program, topology, initial_state,
                options=options,
                deadline_seconds=deadline_seconds,
                include_tables=include_tables,
            ),
        )

    def compile_batch(
        self, requests: Sequence[Mapping[str, Any]]
    ) -> List[Dict[str, Any]]:
        """``POST /compile/batch``: per-entry results (an entry that
        failed carries ``{"error": ..., "status": ...}`` instead)."""
        return self._post("/compile/batch", {"requests": list(requests)})[
            "results"
        ]

    def compile_request(
        self,
        program: Union[Policy, str],
        topology: Union[Topology, Mapping[str, Any]],
        initial_state: Sequence[int],
        **kwargs,
    ) -> Dict[str, Any]:
        """A batch entry for :meth:`compile_batch`."""
        return protocol.compile_request_to_wire(
            program, topology, initial_state, **kwargs
        )

    def update(
        self,
        artifact_key: str,
        delta: Union[Delta, Mapping[str, Any]],
        include_tables: bool = True,
    ) -> Dict[str, Any]:
        """``POST /update``: incremental recompilation against a
        previously served artifact key."""
        wire = (
            protocol.delta_to_wire(delta)
            if isinstance(delta, Delta)
            else dict(delta)
        )
        return self._post(
            "/update",
            {
                "artifact_key": artifact_key,
                "delta": wire,
                "include_tables": include_tables,
            },
        )

    def health(self) -> Tuple[bool, Dict[str, Any]]:
        """``GET /health`` as ``(ok, body)`` — a 503 (integrity errors
        under strict cache) returns ``ok=False`` instead of raising."""
        status, body = self._request("GET", "/health", allow_error_status=True)
        return status == 200, body

    def stats(self) -> Dict[str, Any]:
        return self._get("/stats")

    def version(self) -> Dict[str, Any]:
        return self._get("/version")
