"""Event structures and network event structures (sections 2-3)."""

from .event import Event, EventSet
from .ets_to_nes import (
    ETSConversionError,
    FiniteCompletenessError,
    UniqueConfigurationError,
    check_finite_complete,
    family_of_ets,
    nes_of_ets,
)
from .locality import (
    is_locally_determined,
    locality_violations,
    minimally_inconsistent_masks,
    minimally_inconsistent_sets,
    minimally_inconsistent_sets_naive,
)
from .nes import NES
from .structure import EventStructure

__all__ = [
    "Event",
    "EventSet",
    "EventStructure",
    "NES",
    "nes_of_ets",
    "family_of_ets",
    "check_finite_complete",
    "ETSConversionError",
    "UniqueConfigurationError",
    "FiniteCompletenessError",
    "minimally_inconsistent_sets",
    "minimally_inconsistent_sets_naive",
    "minimally_inconsistent_masks",
    "locality_violations",
    "is_locally_determined",
]
