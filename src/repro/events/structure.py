"""Event structures (Winskel 1987; Definition 3 of the paper).

An event structure endows a set of events with a *consistency predicate*
``con`` (which finite sets of events may occur in one execution) and an
*enabling relation* ``⊢`` (which sets of events enable a new event).
Both are required to be monotone in the right way: ``con`` is downward
closed, ``⊢`` is upward closed in its first argument.

This implementation is for finite structures.  Consistency is
represented by a family of *covers* -- ``X`` is consistent iff it is a
subset of some cover -- which is automatically downward closed.
Enabling is represented by base pairs ``(X0, e)`` -- ``X ⊢ e`` iff some
``X0 ⊆ X`` is a base -- which is automatically upward closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

E = TypeVar("E", bound=Hashable)

__all__ = ["EventStructure"]


class EventStructure(Generic[E]):
    """A finite event structure ``(E, con, ⊢)``."""

    def __init__(
        self,
        events: Iterable[E],
        consistency_covers: Iterable[AbstractSet[E]],
        enabling_base: Iterable[Tuple[AbstractSet[E], E]],
    ):
        self._events: FrozenSet[E] = frozenset(events)
        self._covers: FrozenSet[FrozenSet[E]] = frozenset(
            frozenset(c) for c in consistency_covers
        )
        for cover in self._covers:
            if not cover <= self._events:
                raise ValueError(f"cover {set(cover)} mentions unknown events")
        base: Dict[E, Set[FrozenSet[E]]] = {}
        for enabler, event in enabling_base:
            enabler_set = frozenset(enabler)
            if event not in self._events:
                raise ValueError(f"enabling base names unknown event {event!r}")
            if not enabler_set <= self._events:
                raise ValueError(
                    f"enabling base {set(enabler_set)} mentions unknown events"
                )
            base.setdefault(event, set()).add(enabler_set)
        # Keep only minimal enablers: supersets are implied by monotonicity.
        self._base: Dict[E, Tuple[FrozenSet[E], ...]] = {}
        for event, enablers in base.items():
            minimal = [
                x
                for x in enablers
                if not any(y < x for y in enablers)
            ]
            self._base[event] = tuple(sorted(minimal, key=sorted_key))

    # -- primitive relations ---------------------------------------------------

    @property
    def events(self) -> FrozenSet[E]:
        return self._events

    @property
    def covers(self) -> FrozenSet[FrozenSet[E]]:
        return self._covers

    def con(self, subset: AbstractSet[E]) -> bool:
        """The consistency predicate (downward closed by construction)."""
        needle = frozenset(subset)
        if not needle:
            return True
        return any(needle <= cover for cover in self._covers)

    def enables(self, enabler: AbstractSet[E], event: E) -> bool:
        """``enabler ⊢ event`` (upward closed by construction)."""
        enabler_set = frozenset(enabler)
        return any(base <= enabler_set for base in self._base.get(event, ()))

    def minimal_enablers(self, event: E) -> Tuple[FrozenSet[E], ...]:
        return self._base.get(event, ())

    # -- derived notions -----------------------------------------------------

    def successors(self, event_set: AbstractSet[E]) -> Iterator[E]:
        """Events that can extend ``event_set`` to a larger event-set."""
        current = frozenset(event_set)
        for event in self._events:
            if event in current:
                continue
            if self.enables(current, event) and self.con(current | {event}):
                yield event

    def event_sets(self, limit: int = 100_000) -> FrozenSet[FrozenSet[E]]:
        """All event-sets (Definition 4): consistent and secured from ∅."""
        found: Set[FrozenSet[E]] = {frozenset()}
        frontier: List[FrozenSet[E]] = [frozenset()]
        while frontier:
            current = frontier.pop()
            for event in self.successors(current):
                extended = current | {event}
                if extended not in found:
                    if len(found) >= limit:
                        raise RuntimeError(
                            f"event-set enumeration exceeded {limit} sets"
                        )
                    found.add(extended)
                    frontier.append(extended)
        return frozenset(found)

    def is_event_set(self, subset: AbstractSet[E]) -> bool:
        """Is ``subset`` consistent and reachable via the enabling relation?"""
        target = frozenset(subset)
        if not self.con(target):
            return False
        # Greedy securing: repeatedly add any enabled member.  Greedy is
        # complete here because enabling is monotone (adding events never
        # disables a member).
        secured: Set[E] = set()
        remaining = set(target)
        while remaining:
            progress = [
                e
                for e in remaining
                if self.enables(frozenset(secured), e)
            ]
            if not progress:
                return False
            secured.update(progress)
            remaining.difference_update(progress)
        return True

    def allows_sequence(self, sequence: Sequence[E]) -> bool:
        """Is ``e0 e1 ... en`` allowed (section 2, "Correct Network Traces")?"""
        prefix: Set[E] = set()
        for event in sequence:
            if event in prefix:
                return False  # an event occurs at most once per execution
            if not self.enables(frozenset(prefix), event):
                return False
            if not self.con(prefix | {event}):
                return False
            prefix.add(event)
        return True

    def allowed_sequences(
        self, max_length: Optional[int] = None
    ) -> Iterator[Tuple[E, ...]]:
        """Enumerate allowed event sequences (breadth-first, shortest first)."""
        queue: List[Tuple[Tuple[E, ...], FrozenSet[E]]] = [((), frozenset())]
        while queue:
            next_queue: List[Tuple[Tuple[E, ...], FrozenSet[E]]] = []
            for sequence, collected in queue:
                yield sequence
                if max_length is not None and len(sequence) >= max_length:
                    continue
                for event in self.successors(collected):
                    next_queue.append((sequence + (event,), collected | {event}))
            queue = next_queue

    def __repr__(self) -> str:
        return (
            f"EventStructure({len(self._events)} events, "
            f"{len(self._covers)} covers, "
            f"{sum(len(v) for v in self._base.values())} enabling bases)"
        )


def sorted_key(s: Iterable) -> Tuple:
    return tuple(sorted(repr(x) for x in s))
