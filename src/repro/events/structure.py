"""Event structures (Winskel 1987; Definition 3 of the paper).

An event structure endows a set of events with a *consistency predicate*
``con`` (which finite sets of events may occur in one execution) and an
*enabling relation* ``⊢`` (which sets of events enable a new event).
Both are required to be monotone in the right way: ``con`` is downward
closed, ``⊢`` is upward closed in its first argument.

This implementation is for finite structures.  Consistency is
represented by a family of *covers* -- ``X`` is consistent iff it is a
subset of some cover -- which is automatically downward closed.
Enabling is represented by base pairs ``(X0, e)`` -- ``X ⊢ e`` iff some
``X0 ⊆ X`` is a base -- which is automatically upward closed.

Internally events are interned to integer indices (in deterministic
``repr`` order) and every event set -- covers, enabling bases, the
arguments of ``con``/``enables``, the frontier of the event-set search
-- is a Python int bitmask.  Subset tests, unions, and intersections are
single machine-word-ish operations instead of frozenset scans, which is
what lets the locality pipeline (:mod:`repro.events.locality`) scale.
The public API still speaks frozensets; ``encode``/``decode`` translate
at the boundary.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

E = TypeVar("E", bound=Hashable)

__all__ = ["EventStructure"]

# Cap on foreign (non-universe) event objects interned into the id fast
# path; beyond it encode() falls back to plain hashing rather than
# pinning an unbounded stream of fresh objects in memory.
_FOREIGN_INTERN_LIMIT = 4096


class EventStructure(Generic[E]):
    """A finite event structure ``(E, con, ⊢)``."""

    def __init__(
        self,
        events: Iterable[E],
        consistency_covers: Iterable[AbstractSet[E]],
        enabling_base: Iterable[Tuple[AbstractSet[E], E]],
    ):
        self._events: FrozenSet[E] = frozenset(events)
        # Intern events in deterministic (repr) order; bit i of every mask
        # in this structure stands for self._universe[i].
        self._universe: Tuple[E, ...] = tuple(sorted(self._events, key=repr))
        self._index: Dict[E, int] = {e: i for i, e in enumerate(self._universe)}
        # id()-keyed shadow of the interning map: most encode() calls pass
        # the very objects interned in the universe, and an identity lookup
        # skips (potentially deep) event hashing.  Safe because the
        # universe tuple keeps those objects alive, so their ids are never
        # reused while this structure exists.
        self._index_by_id: Dict[int, int] = {
            id(e): i for i, e in enumerate(self._universe)
        }
        # Foreign (equal-but-not-interned) events seen by encode() are
        # interned into the shadow index on first miss, so repeated
        # encodes of the same objects (the consistency checker re-encodes
        # trace/runtime event sets every check) take the id fast path
        # instead of re-hashing.  The pin list keeps the interned objects
        # alive -- a dead object's id could be reused by a different
        # event, silently encoding it to the wrong bit.
        self._foreign_pins: List[E] = []
        self._all_mask: int = (1 << len(self._universe)) - 1

        self._covers: FrozenSet[FrozenSet[E]] = frozenset(
            frozenset(c) for c in consistency_covers
        )
        cover_masks: Set[int] = set()
        for cover in self._covers:
            try:
                cover_masks.add(self.encode(cover))
            except KeyError:
                raise ValueError(
                    f"cover {set(cover)} mentions unknown events"
                ) from None
        # Only maximal covers matter for ``X ⊆ some cover`` queries.
        self._maximal_cover_masks: Tuple[int, ...] = tuple(
            sorted(
                m
                for m in cover_masks
                if not any(m != other and m | other == other for other in cover_masks)
            )
        )

        base: Dict[int, Set[int]] = {}
        for enabler, event in enabling_base:
            event_index = self._index.get(event)
            if event_index is None:
                raise ValueError(f"enabling base names unknown event {event!r}")
            try:
                enabler_mask = self.encode(enabler)
            except KeyError:
                raise ValueError(
                    f"enabling base {set(enabler)} mentions unknown events"
                ) from None
            base.setdefault(event_index, set()).add(enabler_mask)
        # Keep only minimal enablers: supersets are implied by monotonicity.
        self._base_masks: Dict[int, Tuple[int, ...]] = {}
        for event_index, enabler_masks in base.items():
            self._base_masks[event_index] = tuple(
                sorted(
                    x
                    for x in enabler_masks
                    if not any(y != x and y | x == x for y in enabler_masks)
                )
            )
        self._base: Dict[E, Tuple[FrozenSet[E], ...]] = {
            self._universe[i]: tuple(
                sorted((self.decode(m) for m in masks), key=sorted_key)
            )
            for i, masks in self._base_masks.items()
        }
        # Memo for the locality pipeline (populated lazily by
        # repro.events.locality.minimally_inconsistent_masks).
        self._transversal_cache: Dict[Optional[int], Tuple[int, ...]] = {}

    # -- bitmask encoding ------------------------------------------------------

    @property
    def universe(self) -> Tuple[E, ...]:
        """Events in interning order: bit ``i`` encodes ``universe[i]``."""
        return self._universe

    @property
    def event_index(self) -> Mapping[E, int]:
        """The interning map (event -> bit position)."""
        return self._index

    @property
    def all_mask(self) -> int:
        """The bitmask of the full event set."""
        return self._all_mask

    @property
    def maximal_cover_masks(self) -> Tuple[int, ...]:
        """Encoded maximal covers; ``con(X)`` iff X ⊆ one of these."""
        return self._maximal_cover_masks

    def encode(self, subset: Iterable[E]) -> int:
        """Event set -> bitmask.  Raises KeyError on unknown events."""
        mask = 0
        index = self._index
        by_id = self._index_by_id
        for event in subset:
            key = id(event)
            i = by_id.get(key)
            if i is None:
                i = index[event]
                self._intern_foreign(key, event, i)
            mask |= 1 << i
        return mask

    def _try_encode(self, subset: Iterable[E]) -> Optional[int]:
        """Like :meth:`encode` but None when an unknown event appears."""
        mask = 0
        index = self._index
        by_id = self._index_by_id
        for event in subset:
            key = id(event)
            i = by_id.get(key)
            if i is None:
                i = index.get(event)
                if i is None:
                    return None
                self._intern_foreign(key, event, i)
            mask |= 1 << i
        return mask

    def _intern_foreign(self, key: int, event: E, i: int) -> None:
        """Record a foreign event in the id fast path (bounded: a caller
        streaming unboundedly many fresh-but-equal event objects must not
        grow the pin list without limit)."""
        if len(self._foreign_pins) < _FOREIGN_INTERN_LIMIT:
            self._index_by_id[key] = i
            self._foreign_pins.append(event)

    def decode(self, mask: int) -> FrozenSet[E]:
        """Bitmask -> event set."""
        universe = self._universe
        out = []
        while mask:
            low = mask & -mask
            out.append(universe[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    # -- primitive relations ---------------------------------------------------

    @property
    def events(self) -> FrozenSet[E]:
        return self._events

    @property
    def covers(self) -> FrozenSet[FrozenSet[E]]:
        return self._covers

    def con(self, subset: AbstractSet[E]) -> bool:
        """The consistency predicate (downward closed by construction)."""
        mask = self._try_encode(subset)
        if mask is None:
            return False  # unknown events belong to no cover
        return self.con_mask(mask)

    def con_mask(self, mask: int) -> bool:
        """``con`` on an encoded event set."""
        if not mask:
            return True
        for cover in self._maximal_cover_masks:
            if mask | cover == cover:
                return True
        return False

    def enables(self, enabler: AbstractSet[E], event: E) -> bool:
        """``enabler ⊢ event`` (upward closed by construction)."""
        index = self._index.get(event)
        if index is None:
            return False
        mask = 0
        for e in enabler:
            i = self._index.get(e)
            if i is not None:  # unknown enabler events cannot shrink ⊢
                mask |= 1 << i
        return self.enables_mask(mask, index)

    def enables_mask(self, enabler_mask: int, event_index: int) -> bool:
        """``⊢`` on an encoded enabler and an interned event index."""
        for base in self._base_masks.get(event_index, ()):
            if base & enabler_mask == base:
                return True
        return False

    def minimal_enablers(self, event: E) -> Tuple[FrozenSet[E], ...]:
        return self._base.get(event, ())

    # -- derived notions -----------------------------------------------------

    def successors_mask(self, mask: int) -> int:
        """Bitmask of events that extend the encoded set to a larger one."""
        out = 0
        for index in range(len(self._universe)):
            bit = 1 << index
            if mask & bit:
                continue
            if self.enables_mask(mask, index) and self.con_mask(mask | bit):
                out |= bit
        return out

    def successors(self, event_set: AbstractSet[E]) -> Iterator[E]:
        """Events that can extend ``event_set`` to a larger event-set."""
        mask = self._try_encode(event_set)
        if mask is None:
            # Unknown events never help con(), so nothing extends the set.
            return iter(())
        return iter(self.decode(self.successors_mask(mask)))

    def event_sets_masks(self, limit: int = 100_000) -> FrozenSet[int]:
        """All event-sets as bitmasks (Definition 4)."""
        found: Set[int] = {0}
        frontier: List[int] = [0]
        while frontier:
            current = frontier.pop()
            free = self.successors_mask(current)
            while free:
                low = free & -free
                free ^= low
                extended = current | low
                if extended not in found:
                    if len(found) >= limit:
                        raise RuntimeError(
                            f"event-set enumeration exceeded {limit} sets"
                        )
                    found.add(extended)
                    frontier.append(extended)
        return frozenset(found)

    def event_sets(self, limit: int = 100_000) -> FrozenSet[FrozenSet[E]]:
        """All event-sets (Definition 4): consistent and secured from ∅."""
        return frozenset(self.decode(m) for m in self.event_sets_masks(limit))

    def is_event_set_mask(self, mask: int) -> bool:
        """:meth:`is_event_set` on an encoded event set."""
        if not self.con_mask(mask):
            return False
        # Greedy securing: repeatedly add any enabled member.  Greedy is
        # complete here because enabling is monotone (adding events never
        # disables a member).
        secured = 0
        remaining = mask
        while remaining:
            progress = 0
            scan = remaining
            while scan:
                low = scan & -scan
                scan ^= low
                if self.enables_mask(secured, low.bit_length() - 1):
                    progress |= low
            if not progress:
                return False
            secured |= progress
            remaining &= ~progress
        return True

    def is_event_set(self, subset: AbstractSet[E]) -> bool:
        """Is ``subset`` consistent and reachable via the enabling relation?"""
        mask = self._try_encode(subset)
        if mask is None:
            return False
        return self.is_event_set_mask(mask)

    def allows_sequence(self, sequence: Sequence[E]) -> bool:
        """Is ``e0 e1 ... en`` allowed (section 2, "Correct Network Traces")?"""
        prefix = 0
        for event in sequence:
            index = self._index.get(event)
            if index is None:
                return False
            bit = 1 << index
            if prefix & bit:
                return False  # an event occurs at most once per execution
            if not self.enables_mask(prefix, index):
                return False
            if not self.con_mask(prefix | bit):
                return False
            prefix |= bit
        return True

    def allowed_sequences(
        self, max_length: Optional[int] = None
    ) -> Iterator[Tuple[E, ...]]:
        """Enumerate allowed event sequences (breadth-first, shortest first)."""
        queue: List[Tuple[Tuple[E, ...], int]] = [((), 0)]
        while queue:
            next_queue: List[Tuple[Tuple[E, ...], int]] = []
            for sequence, collected in queue:
                yield sequence
                if max_length is not None and len(sequence) >= max_length:
                    continue
                free = self.successors_mask(collected)
                while free:
                    low = free & -free
                    free ^= low
                    event = self._universe[low.bit_length() - 1]
                    next_queue.append((sequence + (event,), collected | low))
            queue = next_queue

    def __getstate__(self):
        # The id()-keyed shadow index holds memory addresses of the
        # storing process; unpickled they would be stale keys that a new
        # object's id could collide with, silently encoding an unknown
        # event to an arbitrary bit.  Rebuilt from the universe on load.
        # The foreign-intern pins are an address-keyed cache too, and are
        # simply dropped (they re-intern on the loader's first encodes).
        state = dict(self.__dict__)
        state.pop("_index_by_id", None)
        state.pop("_foreign_pins", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._index_by_id = {id(e): i for i, e in enumerate(self._universe)}
        self._foreign_pins = []

    def __repr__(self) -> str:
        return (
            f"EventStructure({len(self._events)} events, "
            f"{len(self._covers)} covers, "
            f"{sum(len(v) for v in self._base.values())} enabling bases)"
        )


def sorted_key(s: Iterable) -> Tuple:
    return tuple(sorted(repr(x) for x in s))
