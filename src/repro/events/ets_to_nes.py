"""Conversion from ETSs to NESs (section 3.1).

The construction: collect ``W(T)``, the event sequences along paths from
the initial vertex (renaming repeated occurrences of the same event, as
required for chains and loops); form the candidate family
``F(T) = { E(p) | p in W(T) }``; check the two side conditions

1. *unique configuration*: all paths collecting the same event-set end
   at vertices labeled with the same configuration, and
2. *finite completeness*: the family is closed under existing least
   upper bounds;

then build ``con`` and ``⊢`` from the family (Winskel, Theorem 1.1.12):
a set is consistent iff it is covered by a family member, and
``X ⊢ e`` iff some ``E ∖ {e}`` with ``e ∈ E ∈ F`` is contained in ``X``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from ..netkat.ast import Policy
from ..stateful.ast import StateVector
from .event import Event, EventSet

if TYPE_CHECKING:  # avoid a circular import: stateful.ets uses events.event
    from ..stateful.ets import ETS
from .nes import NES
from .structure import EventStructure

__all__ = [
    "ETSConversionError",
    "UniqueConfigurationError",
    "FiniteCompletenessError",
    "family_of_ets",
    "check_finite_complete",
    "check_finite_complete_naive",
    "nes_of_ets",
]


class ETSConversionError(Exception):
    """The ETS does not give rise to an NES."""


class UniqueConfigurationError(ETSConversionError):
    """Two paths with the same event-set end at different configurations."""


class FiniteCompletenessError(ETSConversionError):
    """The family F(T) is not closed under existing least upper bounds."""


def family_of_ets(
    ets: "ETS", max_occurrences: int = 64
) -> Dict[EventSet, StateVector]:
    """Compute ``F(T)``: the event-sets collected along paths from ``v0``.

    Repeated occurrences of the same base event along a path are renamed
    with increasing occurrence indices, so a chain (or unrolled loop)
    labeled with one syntactic event yields distinct NES events.  Loops
    are unrolled until an event would occur more than ``max_occurrences``
    times, which raises (the paper restricts attention to loop-free ETSs;
    bounded unrolling approximates the lazily-computed infinite NES).
    """
    family: Dict[EventSet, StateVector] = {frozenset(): ets.initial}
    visited: Set[Tuple[StateVector, EventSet]] = set()
    stack: List[Tuple[StateVector, EventSet]] = [(ets.initial, frozenset())]
    # Intern renamed events: equal occurrences reached along different
    # paths become the identical object, so the family's frozensets hash
    # cached events and the NES interning can use identity lookups.
    interned: Dict[Event, Event] = {}
    while stack:
        state, collected = stack.pop()
        if (state, collected) in visited:
            continue
        visited.add((state, collected))
        for edge in ets.out_edges(state):
            base = edge.event.base()
            base_guard, base_location = base.guard, base.location
            occurrence = sum(
                1
                for e in collected
                if e.location == base_location and e.guard == base_guard
            )
            if occurrence >= max_occurrences:
                raise ETSConversionError(
                    f"event {base!r} occurred more than {max_occurrences} "
                    "times along a path; is the ETS an unbounded loop?"
                )
            renamed = base.renamed(occurrence)
            renamed = interned.setdefault(renamed, renamed)
            extended = collected | {renamed}
            previous = family.get(extended)
            if previous is None:
                family[extended] = edge.dst
            elif not _same_configuration(ets, previous, edge.dst):
                raise UniqueConfigurationError(
                    f"event-set {set(extended)} is reached at state "
                    f"{previous} and at state {edge.dst}, whose "
                    "configurations differ (condition 1 of section 3.1)"
                )
            stack.append((edge.dst, extended))
    return family


def _same_configuration(ets: "ETS", s1: StateVector, s2: StateVector) -> bool:
    if s1 == s2:
        return True
    return ets.configuration(s1) == ets.configuration(s2)


def _sorted_masks(
    family: Dict[EventSet, StateVector]
) -> Tuple[List[EventSet], List[int]]:
    """Family members in canonical order, and their bitmask encodings."""
    sets = sorted(family, key=lambda s: (len(s), sorted(repr(e) for e in s)))
    index: Dict[Event, int] = {}
    for member in sets:
        for event in member:
            index.setdefault(event, len(index))
    return sets, [_mask_of(member, index) for member in sets]


def check_finite_complete(
    family: Dict[EventSet, StateVector]
) -> List[Tuple[EventSet, EventSet]]:
    """Return the pairs violating finite completeness (empty = OK).

    Pairwise closure implies n-ary closure: if ``E1..En`` share an upper
    bound, so do ``E1 union E2`` and ``E3``, and so on inductively.

    An LUB-closure check driven by the maximal antichain: two members
    have an upper bound in the family iff both lie below one of its
    maximal elements.  Members are grouped by *signature* -- the bitmask
    of maximal elements above them -- and pairs are enumerated once per
    pair of intersecting signature classes, so every pair with a common
    upper bound is visited exactly once (never more pairs than the
    global quadratic scan) and cross-block pairs in wide families --
    disjoint signatures -- are never enumerated at all.
    """
    sets, masks = _sorted_masks(family)
    mask_family = set(masks)
    set_of_mask = dict(zip(masks, sets))
    # Maximal antichain: scan by descending popcount; an element below a
    # previously kept one is dominated, everything else is maximal.
    maximal: List[int] = []
    for m in sorted(mask_family, key=lambda m: -m.bit_count()):
        if not any(m | big == big for big in maximal):
            maximal.append(m)
    # Signature classes, in the canonical member order.
    classes: Dict[int, List[int]] = {}
    for m in masks:
        signature = 0
        for t, big in enumerate(maximal):
            if m | big == big:
                signature |= 1 << t
        classes.setdefault(signature, []).append(m)
    violations: List[Tuple[EventSet, EventSet]] = []
    class_list = list(classes.items())
    for a, (sig_a, members_a) in enumerate(class_list):
        for b in range(a, len(class_list)):
            sig_b, members_b = class_list[b]
            if not sig_a & sig_b:
                continue  # no shared upper bound: no closure obligation
            for i, m1 in enumerate(members_a):
                others = members_a[i + 1 :] if b == a else members_b
                for m2 in others:
                    lub = m1 | m2
                    # Comparable pairs have their lub in the family.
                    if lub == m1 or lub == m2 or lub in mask_family:
                        continue
                    violations.append((set_of_mask[m1], set_of_mask[m2]))
    return violations


def check_finite_complete_naive(
    family: Dict[EventSet, StateVector]
) -> List[Tuple[EventSet, EventSet]]:
    """The retained quadratic reference for :func:`check_finite_complete`.

    Scans every pair of members globally and seeks an upper bound among
    the maximal elements per missing lub.  Kept as the differential
    oracle for the antichain-driven version.
    """
    sets, masks = _sorted_masks(family)
    mask_family = set(masks)
    maximal = [
        m
        for m in mask_family
        if not any(m != other and m | other == other for other in mask_family)
    ]
    violations: List[Tuple[EventSet, EventSet]] = []
    for i, m1 in enumerate(masks):
        for j in range(i + 1, len(masks)):
            lub = m1 | masks[j]
            if lub in mask_family:
                continue
            if any(lub | upper == upper for upper in maximal):
                violations.append((sets[i], sets[j]))
    return violations


def _mask_of(member: EventSet, index: Dict[Event, int]) -> int:
    mask = 0
    for event in member:
        mask |= 1 << index[event]
    return mask


def nes_of_ets(ets: "ETS", max_occurrences: int = 64) -> NES:
    """Convert an ETS to an NES, enforcing both section 3.1 conditions."""
    family = family_of_ets(ets, max_occurrences=max_occurrences)
    violations = check_finite_complete(family)
    if violations:
        e1, e2 = violations[0]
        raise FiniteCompletenessError(
            f"event-sets {set(e1)} and {set(e2)} have an upper bound in "
            f"F(T) but their union is not in F(T) "
            f"({len(violations)} violating pair(s) total; condition 2 of "
            "section 3.1, e.g. Figure 3(c))"
        )

    events: Set[Event] = set()
    for event_set in family:
        events.update(event_set)

    enabling_base: List[Tuple[FrozenSet[Event], Event]] = []
    for event_set in family:
        for event in event_set:
            enabling_base.append((event_set - {event}, event))

    structure = EventStructure(
        events=events,
        consistency_covers=family.keys(),
        enabling_base=enabling_base,
    )
    configurations: Dict[StateVector, Policy] = {
        state: ets.configuration(state) for state in ets.states()
    }
    # States referenced by the family but outside ets.states() cannot occur
    # (family destinations always come from ETS edges), so this is total.
    return NES(structure, family, configurations)
