"""Locality restrictions (section 2, "Locality Restrictions").

A set of events is *inconsistent* when ``con`` rejects it, and
*minimally inconsistent* when all of its proper subsets are consistent.
An NES is *locally determined* iff every minimally-inconsistent set has
all of its events at the same switch -- the condition that makes the
structure implementable without cross-switch synchronization (Lemma 1
shows implementations of non-locally-determined NESs must either buffer
packets or risk wrong decisions).

Performance
-----------
Consistency is "X is a subset of some cover", so a nonempty X is
*inconsistent* exactly when it meets the complement of *every* cover
(only maximal covers matter).  The minimally-inconsistent sets are thus
the **minimal hitting sets (minimal transversals)** of the hypergraph
whose edges are the cover complements.  :func:`minimally_inconsistent_masks`
enumerates them with Berge's incremental algorithm on int bitmasks:
process one edge at a time, keep the transversals that already hit it,
extend each miss by one vertex of the edge, and discard candidates
subsumed by an existing transversal (single AND/OR subset tests).  This
replaces the previous brute force over all 2^n subsets -- structures
where every set is consistent (e.g. the bandwidth-cap chain) now cost
one pass over the covers instead of 2^n ``con`` calls, and results are
memoized on the structure so repeated compiles pay nothing.

Two special cases keep the dual exact: with no covers at all every
nonempty set is inconsistent (the hypergraph degenerates to the single
edge E, whose minimal transversals are the singletons), and a cover
equal to E contributes an empty edge that nothing can hit (every set is
consistent, so there are no inconsistent sets).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .event import Event, EventSet
from .nes import NES
from .structure import EventStructure

__all__ = [
    "minimally_inconsistent_sets",
    "minimally_inconsistent_sets_naive",
    "minimally_inconsistent_masks",
    "is_locally_determined",
    "locality_violations",
]


def minimally_inconsistent_masks(
    structure: EventStructure,
    max_size: Optional[int] = None,
) -> Tuple[int, ...]:
    """Minimally-inconsistent sets as bitmasks (see module docstring).

    Results are cached on the structure per ``max_size``; the unbounded
    result is reused to answer bounded queries by filtering.
    """
    cache = structure._transversal_cache
    cached = cache.get(max_size)
    if cached is not None:
        return cached
    full = cache.get(None)
    if full is not None:  # a bounded query after the unbounded one: filter
        result = tuple(m for m in full if m.bit_count() <= max_size)
        cache[max_size] = result
        return result

    all_mask = structure.all_mask
    edges = sorted(
        {all_mask & ~cover for cover in structure.maximal_cover_masks}
    )
    if not structure.maximal_cover_masks:
        # No covers: every nonempty set is inconsistent, i.e. the single
        # hypergraph edge is the full event set.
        edges = [all_mask] if all_mask else []

    transversals: List[int] = [0]
    for edge in edges:
        if edge == 0:  # a cover equal to E: nothing is inconsistent
            transversals = []
            break
        hit = [t for t in transversals if t & edge]
        miss = [t for t in transversals if not t & edge]
        if not miss:
            continue
        candidates: Set[int] = set()
        for t in miss:
            scan = edge
            while scan:
                low = scan & -scan
                scan ^= low
                candidates.add(t | low)
        if max_size is not None:
            candidates = {c for c in candidates if c.bit_count() <= max_size}
        # Keep candidates not subsumed by a transversal that already hits
        # the edge, then drop non-minimal candidates among themselves.
        fresh = [
            c
            for c in candidates
            if not any(h & c == h for h in hit)
        ]
        fresh = [
            c
            for c in fresh
            if not any(d != c and d & c == d for d in fresh)
        ]
        transversals = hit + fresh
    # The empty set hits every edge only when there are no edges, in
    # which case there are no inconsistent sets at all.
    result = tuple(sorted(t for t in transversals if t))
    cache[max_size] = result
    return result


def minimally_inconsistent_sets(
    structure: EventStructure,
    max_size: Optional[int] = None,
) -> FrozenSet[EventSet]:
    """All minimally-inconsistent subsets of the structure's events."""
    return frozenset(
        structure.decode(mask)
        for mask in minimally_inconsistent_masks(structure, max_size)
    )


def minimally_inconsistent_sets_naive(
    structure: EventStructure,
    max_size: Optional[int] = None,
) -> FrozenSet[EventSet]:
    """Reference brute force over all subsets (golden tests only).

    Enumerates subsets by increasing size, pruning supersets of sets
    already found (any strict superset of an inconsistent set is
    inconsistent but not minimal).  Exponential in the event count; the
    production path is :func:`minimally_inconsistent_sets`.
    """
    events = sorted(structure.events, key=repr)
    bound = max_size if max_size is not None else len(events)
    found: List[FrozenSet[Event]] = []
    for size in range(1, bound + 1):
        for combo in combinations(events, size):
            candidate = frozenset(combo)
            if any(m <= candidate for m in found):
                continue
            if not structure.con(candidate):
                found.append(candidate)
    return frozenset(found)


def _switch_masks(nes: NES) -> Dict[int, int]:
    """Bitmask of this NES's events per switch."""
    structure = nes.structure
    masks: Dict[int, int] = {}
    for event, index in structure.event_index.items():
        masks[event.location.switch] = masks.get(event.location.switch, 0) | (
            1 << index
        )
    return masks


def locality_violations(nes: NES, max_size: Optional[int] = None) -> FrozenSet[EventSet]:
    """Minimally-inconsistent sets whose events span multiple switches."""
    structure = nes.structure
    single_switch = tuple(_switch_masks(nes).values())
    return frozenset(
        structure.decode(mask)
        for mask in minimally_inconsistent_masks(structure, max_size)
        if not any(mask | sw == sw for sw in single_switch)
    )


def is_locally_determined(nes: NES, max_size: Optional[int] = None) -> bool:
    """Does the NES satisfy the locally-determined condition?"""
    return not locality_violations(nes, max_size)
