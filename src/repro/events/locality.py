"""Locality restrictions (section 2, "Locality Restrictions").

A set of events is *inconsistent* when ``con`` rejects it, and
*minimally inconsistent* when all of its proper subsets are consistent.
An NES is *locally determined* iff every minimally-inconsistent set has
all of its events at the same switch -- the condition that makes the
structure implementable without cross-switch synchronization (Lemma 1
shows implementations of non-locally-determined NESs must either buffer
packets or risk wrong decisions).
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from .event import Event, EventSet
from .nes import NES
from .structure import EventStructure

__all__ = [
    "minimally_inconsistent_sets",
    "is_locally_determined",
    "locality_violations",
]


def minimally_inconsistent_sets(
    structure: EventStructure,
    max_size: Optional[int] = None,
) -> FrozenSet[EventSet]:
    """All minimally-inconsistent subsets of the structure's events.

    Enumerates subsets by increasing size, pruning supersets of sets
    already found (any strict superset of an inconsistent set is
    inconsistent but not minimal).  Singleton events are consistent in
    every structure arising from an ETS family, but a size-1 check is
    included for generality.
    """
    events = sorted(structure.events, key=repr)
    bound = max_size if max_size is not None else len(events)
    found: List[FrozenSet[Event]] = []
    for size in range(1, bound + 1):
        for combo in combinations(events, size):
            candidate = frozenset(combo)
            if any(m <= candidate for m in found):
                continue
            if not structure.con(candidate):
                found.append(candidate)
    return frozenset(found)


def locality_violations(nes: NES, max_size: Optional[int] = None) -> FrozenSet[EventSet]:
    """Minimally-inconsistent sets whose events span multiple switches."""
    violations: Set[EventSet] = set()
    for inconsistent in minimally_inconsistent_sets(nes.structure, max_size):
        switches = {event.location.switch for event in inconsistent}
        if len(switches) > 1:
            violations.add(inconsistent)
    return frozenset(violations)


def is_locally_determined(nes: NES, max_size: Optional[int] = None) -> bool:
    """Does the NES satisfy the locally-determined condition?"""
    return not locality_violations(nes, max_size)
