"""Network event structures (Definition 5).

An NES is an event structure over network events together with a map
``g`` assigning a network configuration to every event-set.  In this
reproduction ``g`` maps each event-set to the ETS state vector it came
from, and the NES carries the per-state configuration policies alongside
(two views of the same ``g``: ``state_of`` and ``config_of``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..netkat.ast import Policy
from ..stateful.ast import StateVector
from .event import Event, EventSet
from .structure import EventStructure

__all__ = ["NES"]


class NES:
    """A network event structure ``(E, con, ⊢, g)``."""

    def __init__(
        self,
        structure: EventStructure,
        g_states: Mapping[EventSet, StateVector],
        configurations: Mapping[StateVector, Policy],
    ):
        self.structure = structure
        self._g: Dict[EventSet, StateVector] = {
            frozenset(k): v for k, v in g_states.items()
        }
        self._configurations: Dict[StateVector, Policy] = dict(configurations)
        if frozenset() not in self._g:
            raise ValueError("g must be defined on the empty event-set")
        for event_set, state in self._g.items():
            if state not in self._configurations:
                raise ValueError(
                    f"event-set {set(event_set)} maps to state {state} "
                    "with no configuration"
                )

    # -- the g map ------------------------------------------------------------

    @property
    def events(self) -> FrozenSet[Event]:
        return self.structure.events

    def event_sets(self) -> FrozenSet[EventSet]:
        return frozenset(self._g)

    def state_of(self, event_set: Iterable[Event]) -> StateVector:
        """The ETS state vector for an event-set."""
        key = frozenset(event_set)
        if key not in self._g:
            raise KeyError(f"{set(key)} is not an event-set of this NES")
        return self._g[key]

    def config_of(self, event_set: Iterable[Event]) -> Policy:
        """``g(X)``: the configuration policy active at an event-set."""
        return self._configurations[self.state_of(event_set)]

    def configuration_states(self) -> Tuple[StateVector, ...]:
        return tuple(sorted(self._configurations))

    def configuration_policy(self, state: StateVector) -> Policy:
        return self._configurations[state]

    @property
    def initial_state(self) -> StateVector:
        return self._g[frozenset()]

    # -- convenience passthroughs ---------------------------------------------

    def con(self, subset: Iterable[Event]) -> bool:
        return self.structure.con(frozenset(subset))

    def enables(self, enabler: Iterable[Event], event: Event) -> bool:
        return self.structure.enables(frozenset(enabler), event)

    def allows_sequence(self, sequence) -> bool:
        return self.structure.allows_sequence(sequence)

    def newly_enabled(
        self, known: Iterable[Event], candidates: Optional[Iterable[Event]] = None
    ) -> FrozenSet[Event]:
        """Events enabled and consistent on top of ``known`` (SWITCH rule)."""
        structure = self.structure
        index = structure.event_index
        known_mask = 0
        for e in known:
            i = index.get(e)
            if i is None:
                return frozenset()  # unknown events make every con() false
            known_mask |= 1 << i
        free = structure.successors_mask(known_mask)
        if candidates is not None:
            pool = 0
            for e in candidates:
                i = index.get(e)
                if i is not None:  # unknown candidates are never enabled
                    pool |= 1 << i
            free &= pool
        return structure.decode(free)

    def __repr__(self) -> str:
        return (
            f"NES({len(self.events)} events, {len(self._g)} event-sets, "
            f"{len(self._configurations)} configurations)"
        )
