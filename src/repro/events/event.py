"""Network events.

An event ``e = (phi, sw, pt)_eid`` models the arrival of a packet
satisfying the guard ``phi`` at location ``sw:pt`` (section 2).  The
optional occurrence index ``eid`` implements the paper's event
*renaming*: when the same syntactic event can fire several times in one
execution (the bandwidth-cap chain, or any ETS loop), each occurrence is
a distinct event in the NES.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..netkat.packet import LocatedPacket, Location, Packet
from ..formula import Formula

__all__ = ["Event", "EventSet"]


@dataclass(frozen=True)
class Event:
    """An event: packet guard, location, and occurrence index."""

    guard: Formula
    location: Location
    eid: int = 0

    def matches(self, lp: LocatedPacket) -> bool:
        """``lp |= e``: same location, and the packet satisfies the guard.

        Occurrence indices do not affect matching -- renamed copies of an
        event match the same packets (which one fires is decided by the
        enabling relation of the NES).
        """
        return lp.location == self.location and self.guard.holds(lp.packet)

    def matches_packet(self, packet: Packet, location: Location) -> bool:
        return location == self.location and self.guard.holds(packet)

    def base(self) -> "Event":
        """The un-renamed event (occurrence index 0)."""
        if self.eid == 0:
            return self
        return Event(self.guard, self.location, 0)

    def renamed(self, eid: int) -> "Event":
        return Event(self.guard, self.location, eid)

    def __repr__(self) -> str:
        suffix = f"_{self.eid}" if self.eid else ""
        return f"({self.guard!r}, {self.location}){suffix}"


EventSet = FrozenSet[Event]
