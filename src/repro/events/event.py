"""Network events.

An event ``e = (phi, sw, pt)_eid`` models the arrival of a packet
satisfying the guard ``phi`` at location ``sw:pt`` (section 2).  The
optional occurrence index ``eid`` implements the paper's event
*renaming*: when the same syntactic event can fire several times in one
execution (the bandwidth-cap chain, or any ETS loop), each occurrence is
a distinct event in the NES.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..netkat.packet import LocatedPacket, Location, Packet
from ..formula import Formula

__all__ = ["Event", "EventSet"]


@dataclass(frozen=True)
class Event:
    """An event: packet guard, location, and occurrence index."""

    guard: Formula
    location: Location
    eid: int = 0

    def __hash__(self) -> int:
        # Events live in frozensets (event-sets, covers, enabling bases)
        # and as dict keys throughout the pipeline; the generated
        # dataclass hash re-hashes the guard tuple on every lookup.
        try:
            return self._hash
        except AttributeError:
            h = hash((self.guard, self.location, self.eid))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        # The cached hash is PYTHONHASHSEED-dependent; pickling it would
        # make an unpickled event disagree with freshly built equal
        # events in the loading process.  It is dropped here and lazily
        # recomputed by __hash__.  (The cached repr is deterministic
        # text and safe to keep.)
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def matches(self, lp: LocatedPacket) -> bool:
        """``lp |= e``: same location, and the packet satisfies the guard.

        Occurrence indices do not affect matching -- renamed copies of an
        event match the same packets (which one fires is decided by the
        enabling relation of the NES).
        """
        return lp.location == self.location and self.guard.holds(lp.packet)

    def matches_packet(self, packet: Packet, location: Location) -> bool:
        return location == self.location and self.guard.holds(packet)

    def base(self) -> "Event":
        """The un-renamed event (occurrence index 0)."""
        if self.eid == 0:
            return self
        return Event(self.guard, self.location, 0)

    def renamed(self, eid: int) -> "Event":
        return Event(self.guard, self.location, eid)

    def __repr__(self) -> str:
        # repr is the deterministic sort key for event interning and edge
        # ordering, so it is on the NES-construction hot path.
        try:
            return self._repr
        except AttributeError:
            suffix = f"_{self.eid}" if self.eid else ""
            r = f"({self.guard!r}, {self.location}){suffix}"
            object.__setattr__(self, "_repr", r)
            return r


EventSet = FrozenSet[Event]
