"""Tests for event structures (Definitions 3-4) and their derived notions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events.structure import EventStructure


def chain(*events):
    """A linear structure: e0 enables e1 enables e2 ..."""
    covers = [frozenset(events[: i + 1]) for i in range(len(events))]
    base = [(frozenset(events[:i]), events[i]) for i in range(len(events))]
    return EventStructure(events, covers, base)


def diamond(a, b):
    """Two independent, compatible events."""
    return EventStructure(
        [a, b],
        [frozenset({a, b})],
        [(frozenset(), a), (frozenset(), b)],
    )


def conflict(a, b):
    """Two independently-enabled but mutually-inconsistent events."""
    return EventStructure(
        [a, b],
        [frozenset({a}), frozenset({b})],
        [(frozenset(), a), (frozenset(), b)],
    )


class TestConsistency:
    def test_empty_always_consistent(self):
        assert conflict("a", "b").con(frozenset())

    def test_downward_closed(self):
        es = diamond("a", "b")
        assert es.con({"a", "b"})
        assert es.con({"a"}) and es.con({"b"})

    def test_conflict_detected(self):
        es = conflict("a", "b")
        assert es.con({"a"}) and es.con({"b"})
        assert not es.con({"a", "b"})

    def test_unknown_events_rejected_in_covers(self):
        with pytest.raises(ValueError):
            EventStructure(["a"], [frozenset({"z"})], [])


class TestEnabling:
    def test_base_enabling(self):
        es = chain("a", "b")
        assert es.enables(frozenset(), "a")
        assert not es.enables(frozenset(), "b")
        assert es.enables(frozenset({"a"}), "b")

    def test_upward_closed(self):
        es = chain("a", "b", "c")
        # {a,b} |- c, so any superset enables c too.
        assert es.enables(frozenset({"a", "b"}), "c")
        assert es.enables(frozenset({"a", "b", "c"}), "c")

    def test_minimal_enablers_deduplicated(self):
        es = EventStructure(
            ["a", "b"],
            [frozenset({"a", "b"})],
            [(frozenset(), "b"), (frozenset({"a"}), "b"), (frozenset(), "a")],
        )
        # the {a} enabler is subsumed by {}
        assert es.minimal_enablers("b") == (frozenset(),)

    def test_unknown_event_in_base_rejected(self):
        with pytest.raises(ValueError):
            EventStructure(["a"], [frozenset({"a"})], [(frozenset(), "z")])


class TestEventSets:
    def test_chain_event_sets(self):
        es = chain("a", "b", "c")
        expected = {
            frozenset(),
            frozenset({"a"}),
            frozenset({"a", "b"}),
            frozenset({"a", "b", "c"}),
        }
        assert es.event_sets() == expected

    def test_diamond_event_sets(self):
        es = diamond("a", "b")
        assert es.event_sets() == {
            frozenset(),
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b"}),
        }

    def test_conflict_event_sets(self):
        es = conflict("a", "b")
        assert es.event_sets() == {frozenset(), frozenset({"a"}), frozenset({"b"})}

    def test_is_event_set(self):
        es = chain("a", "b")
        assert es.is_event_set(frozenset())
        assert es.is_event_set({"a"})
        assert es.is_event_set({"a", "b"})
        assert not es.is_event_set({"b"})  # not secured: b needs a

    def test_is_event_set_rejects_inconsistent(self):
        es = conflict("a", "b")
        assert not es.is_event_set({"a", "b"})


class TestSequences:
    def test_chain_allows_in_order(self):
        es = chain("a", "b")
        assert es.allows_sequence(["a", "b"])
        assert not es.allows_sequence(["b", "a"])
        assert not es.allows_sequence(["b"])

    def test_diamond_allows_both_orders(self):
        es = diamond("a", "b")
        assert es.allows_sequence(["a", "b"])
        assert es.allows_sequence(["b", "a"])

    def test_conflict_forbids_both(self):
        es = conflict("a", "b")
        assert es.allows_sequence(["a"])
        assert not es.allows_sequence(["a", "b"])

    def test_allowed_sequences_enumeration(self):
        es = diamond("a", "b")
        seqs = set(es.allowed_sequences(max_length=2))
        assert ("a", "b") in seqs and ("b", "a") in seqs and () in seqs

    def test_repeated_event_not_allowed(self):
        es = chain("a")
        assert not es.allows_sequence(["a", "a"])


class TestForeignInterning:
    """encode() interns equal-but-not-interned event objects on first
    miss so repeated encodes take the id fast path."""

    def test_encode_interns_foreign_equal_events(self):
        e0, e1 = ("ev", 0), ("ev", 1)
        es = diamond(e0, e1)
        foreign = tuple(["ev", 0])
        assert foreign == e0 and foreign is not e0
        assert es.encode([foreign]) == es.encode([e0])
        # The foreign object rides the id fast path now, pinned so its
        # id cannot be recycled by an unrelated object.
        assert id(foreign) in es._index_by_id
        assert any(pin is foreign for pin in es._foreign_pins)
        assert es.encode([foreign]) == es.encode([e0])

    def test_unknown_events_still_raise_and_are_not_pinned(self):
        es = diamond(("ev", 0), ("ev", 1))
        with pytest.raises(KeyError):
            es.encode([("other", 9)])
        assert es._foreign_pins == []
        assert es._try_encode([("other", 9)]) is None
        assert es._foreign_pins == []

    def test_con_uses_the_interned_fast_path(self):
        e0, e1 = ("ev", 0), ("ev", 1)
        es = conflict(e0, e1)
        foreign0, foreign1 = tuple(["ev", 0]), tuple(["ev", 1])
        assert es.con({foreign0})
        assert not es.con({foreign0, foreign1})
        assert id(foreign0) in es._index_by_id

    def test_intern_limit_bounds_the_pin_list(self, monkeypatch):
        from repro.events import structure as structure_module

        monkeypatch.setattr(structure_module, "_FOREIGN_INTERN_LIMIT", 1)
        e0, e1 = ("ev", 0), ("ev", 1)
        es = diamond(e0, e1)
        f0, f1 = tuple(["ev", 0]), tuple(["ev", 1])
        assert es.encode([f0]) == es.encode([e0])
        # Beyond the cap: still encoded correctly, just not pinned.
        assert es.encode([f1]) == es.encode([e1])
        assert len(es._foreign_pins) == 1
        assert id(f1) not in es._index_by_id

    def test_pickle_drops_the_pins(self):
        import pickle

        e0, e1 = ("ev", 0), ("ev", 1)
        es = diamond(e0, e1)
        es.encode([tuple(["ev", 0])])
        clone = pickle.loads(pickle.dumps(es))
        assert clone._foreign_pins == []
        assert set(clone._index_by_id) == {id(e) for e in clone._universe}
        assert clone.encode([tuple(["ev", 1])]) == es.encode([e1])


class TestSuccessors:
    def test_successors_respect_con_and_enabling(self):
        es = conflict("a", "b")
        assert set(es.successors(frozenset())) == {"a", "b"}
        assert set(es.successors(frozenset({"a"}))) == set()


@st.composite
def random_structures(draw):
    n = draw(st.integers(1, 5))
    events = [f"e{i}" for i in range(n)]
    n_covers = draw(st.integers(1, 4))
    covers = [
        frozenset(draw(st.sets(st.sampled_from(events), max_size=n)))
        for _ in range(n_covers)
    ]
    n_base = draw(st.integers(0, 6))
    base = [
        (
            frozenset(draw(st.sets(st.sampled_from(events), max_size=2))),
            draw(st.sampled_from(events)),
        )
        for _ in range(n_base)
    ]
    return EventStructure(events, covers, base)


class TestStructureProperties:
    @given(random_structures())
    @settings(max_examples=100, deadline=None)
    def test_every_event_set_is_event_set(self, es):
        for x in es.event_sets():
            assert es.is_event_set(x)

    @given(random_structures())
    @settings(max_examples=100, deadline=None)
    def test_con_downward_closed(self, es):
        for x in es.event_sets():
            for e in x:
                assert es.con(x - {e})

    @given(random_structures())
    @settings(max_examples=50, deadline=None)
    def test_sequences_land_in_event_sets(self, es):
        for seq in es.allowed_sequences(max_length=3):
            assert es.is_event_set(frozenset(seq))
