"""Unit tests for the runtime state model (queues, registers, recorder)."""

import pytest

from repro.consistency.traces import TraceValidationError
from repro.events.event import Event
from repro.formula import Formula
from repro.netkat.packet import Location, Packet
from repro.runtime.model import (
    NetworkState,
    RuntimePacket,
    SwitchState,
    TraceRecorder,
)


def make_packet(**fields) -> RuntimePacket:
    return RuntimePacket(packet=Packet(fields), tag=frozenset())


class TestRuntimePacket:
    def test_with_digest(self):
        e = Event(Formula(), Location(1, 1))
        p = make_packet(a=1).with_digest(frozenset({e}))
        assert p.digest == frozenset({e})

    def test_with_packet(self):
        p = make_packet(a=1).with_packet(Packet({"a": 2}))
        assert p.packet["a"] == 2

    def test_extend_path(self):
        p = make_packet(a=1).extend_path(3).extend_path(7)
        assert p.trace_path == (3, 7)

    def test_immutability(self):
        p = make_packet(a=1)
        with pytest.raises(Exception):
            p.tag = frozenset({"x"})


class TestSwitchState:
    def test_queue_discipline_fifo(self):
        sw = SwitchState(1)
        sw.enqueue_in(2, make_packet(a=1))
        sw.enqueue_in(2, make_packet(a=2))
        assert sw.in_queues[2].popleft().packet["a"] == 1

    def test_ports_with_input(self):
        sw = SwitchState(1)
        sw.enqueue_in(3, make_packet())
        sw.enqueue_out(1, make_packet())
        assert sw.ports_with_input() == [3]
        assert sw.ports_with_output() == [1]

    def test_pending_packets(self):
        sw = SwitchState(1)
        assert sw.pending_packets() == 0
        sw.enqueue_in(1, make_packet())
        sw.enqueue_out(2, make_packet())
        assert sw.pending_packets() == 2


class TestNetworkState:
    def test_quiescent_initially(self):
        state = NetworkState([1, 4])
        assert state.quiescent()
        assert state.total_pending() == 0

    def test_quiescent_ignores_controller(self):
        state = NetworkState([1])
        state.controller_queue.add(Event(Formula(), Location(1, 1)))
        assert state.quiescent()

    def test_switch_lookup(self):
        state = NetworkState([1, 4])
        assert state.switch(4).switch_id == 4
        with pytest.raises(KeyError):
            state.switch(9)


class TestTraceRecorder:
    def test_record_returns_indices_in_order(self):
        rec = TraceRecorder()
        assert rec.record(Packet({"sw": 1, "pt": 2}), Location(1, 2)) == 0
        assert rec.record(Packet({"sw": 1, "pt": 1}), Location(1, 1)) == 1

    def test_record_relocates_packet(self):
        rec = TraceRecorder()
        rec.record(Packet({"sw": 9, "pt": 9}), Location(1, 2))
        assert rec.positions[0].location == Location(1, 2)
        assert rec.positions[0].packet.switch == 1

    def test_finish_ignores_empty_paths(self):
        rec = TraceRecorder()
        rec.finish(())
        assert rec.finished_paths == []

    def test_network_trace_includes_pending(self):
        rec = TraceRecorder()
        i0 = rec.record(Packet({"sw": 1, "pt": 2}), Location(1, 2))
        trace = rec.network_trace(iter([(i0,)]))
        assert len(trace.trace_indices) == 1

    def test_network_trace_validates(self):
        rec = TraceRecorder()
        rec.record(Packet({"sw": 1, "pt": 2}), Location(1, 2))
        rec.record(Packet({"sw": 1, "pt": 1}), Location(1, 1))
        rec.finish((0,))
        # index 1 uncovered -> the structural validation must fire
        with pytest.raises(TraceValidationError):
            rec.network_trace()
