"""Golden-equivalence tests for the bitset event-structure engine.

The production paths (bitmask ``con``/``enables``, Berge transversal
enumeration of minimally-inconsistent sets) must agree exactly with the
definitional brute force.  Naive references here are deliberately
independent of the engine: consistency straight off the cover family,
enabling straight off the minimal-enabler bases, event sets by frontier
search over frozensets, and minimally-inconsistent sets via the retained
:func:`repro.events.locality.minimally_inconsistent_sets_naive`.
"""

import random

import pytest

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_multi_app,
    learning_switch_app,
    ring_app,
)
from repro.events.event import Event
from repro.events.locality import (
    is_locally_determined,
    locality_violations,
    minimally_inconsistent_masks,
    minimally_inconsistent_sets,
    minimally_inconsistent_sets_naive,
)
from repro.events.nes import NES
from repro.events.structure import EventStructure
from repro.formula import EQ, Formula, Literal
from repro.netkat.ast import ID
from repro.netkat.packet import Location

SEED_APPS = [
    firewall_app,
    learning_switch_app,
    learning_multi_app,
    authentication_app,
    ids_app,
    lambda: ring_app(4),
    lambda: bandwidth_cap_app(5),
    lambda: bandwidth_cap_app(8),
]


# -- engine-independent references -------------------------------------------


def naive_con(structure, subset):
    needle = frozenset(subset)
    if not needle:
        return True
    return any(needle <= cover for cover in structure.covers)


def naive_enables(structure, enabler, event):
    enabler_set = frozenset(enabler)
    return any(base <= enabler_set for base in structure.minimal_enablers(event))


def naive_event_sets(structure):
    found = {frozenset()}
    frontier = [frozenset()]
    while frontier:
        current = frontier.pop()
        for event in structure.events:
            if event in current:
                continue
            if not naive_enables(structure, current, event):
                continue
            extended = current | {event}
            if not naive_con(structure, extended):
                continue
            if extended not in found:
                found.add(extended)
                frontier.append(extended)
    return frozenset(found)


def naive_locality_violations(nes):
    return frozenset(
        s
        for s in minimally_inconsistent_sets_naive(nes.structure)
        if len({e.location.switch for e in s}) > 1
    )


# -- seed applications -------------------------------------------------------


@pytest.mark.parametrize("make_app", SEED_APPS)
def test_seed_app_minimally_inconsistent_sets_match_naive(make_app):
    structure = make_app().nes.structure
    assert minimally_inconsistent_sets(structure) == minimally_inconsistent_sets_naive(
        structure
    )


@pytest.mark.parametrize("make_app", SEED_APPS)
def test_seed_app_event_sets_match_naive(make_app):
    structure = make_app().nes.structure
    assert structure.event_sets() == naive_event_sets(structure)


@pytest.mark.parametrize("make_app", SEED_APPS)
def test_seed_app_locality_matches_naive(make_app):
    nes = make_app().nes
    naive = naive_locality_violations(nes)
    assert locality_violations(nes) == naive
    assert is_locally_determined(nes) == (not naive)


# -- randomized structures ---------------------------------------------------


def random_nes(rng: random.Random) -> NES:
    n = rng.randint(1, 8)
    events = [
        Event(
            Formula((Literal("f", EQ, i),)),
            Location(rng.randint(1, 3), 1),
        )
        for i in range(n)
    ]
    covers = [
        frozenset(rng.sample(events, rng.randint(0, n)))
        for _ in range(rng.randint(0, 5))
    ]
    base = [
        (
            frozenset(rng.sample(events, rng.randint(0, min(2, n)))),
            rng.choice(events),
        )
        for _ in range(rng.randint(0, 8))
    ]
    structure = EventStructure(events, covers, base)
    return NES(structure, {frozenset(): (0,)}, {(0,): ID})


@pytest.mark.parametrize("seed", range(60))
def test_random_structure_matches_naive(seed):
    rng = random.Random(seed)
    nes = random_nes(rng)
    structure = nes.structure
    assert minimally_inconsistent_sets(structure) == minimally_inconsistent_sets_naive(
        structure
    )
    assert structure.event_sets() == naive_event_sets(structure)
    naive = naive_locality_violations(nes)
    assert locality_violations(nes) == naive
    assert is_locally_determined(nes) == (not naive)


@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("max_size", [1, 2, 3])
def test_random_structure_bounded_query_matches_naive(seed, max_size):
    structure = random_nes(random.Random(1000 + seed)).structure
    assert minimally_inconsistent_sets(
        structure, max_size
    ) == minimally_inconsistent_sets_naive(structure, max_size)


@pytest.mark.parametrize("seed", range(20))
def test_bounded_after_unbounded_uses_cache_consistently(seed):
    structure = random_nes(random.Random(2000 + seed)).structure
    unbounded = minimally_inconsistent_sets(structure)
    for k in (1, 2, 3):
        bounded = minimally_inconsistent_sets(structure, k)
        assert bounded == frozenset(s for s in unbounded if len(s) <= k)
        assert bounded == minimally_inconsistent_sets_naive(structure, k)


def test_masks_decode_to_sets():
    structure = random_nes(random.Random(7)).structure
    masks = minimally_inconsistent_masks(structure)
    assert frozenset(structure.decode(m) for m in masks) == minimally_inconsistent_sets(
        structure
    )
    assert all(m.bit_count() >= 1 for m in masks)


def test_no_covers_means_singletons_minimal():
    structure = EventStructure(["a", "b", "c"], [], [])
    assert minimally_inconsistent_sets(structure) == frozenset(
        {frozenset({"a"}), frozenset({"b"}), frozenset({"c"})}
    )
    assert minimally_inconsistent_sets(
        structure
    ) == minimally_inconsistent_sets_naive(structure)


def test_full_cover_means_nothing_inconsistent():
    events = ["a", "b", "c"]
    structure = EventStructure(events, [frozenset(events)], [])
    assert minimally_inconsistent_sets(structure) == frozenset()
    assert minimally_inconsistent_sets(
        structure
    ) == minimally_inconsistent_sets_naive(structure)


def test_empty_cover_only_means_singletons_minimal():
    structure = EventStructure(["a", "b"], [frozenset()], [])
    assert minimally_inconsistent_sets(structure) == frozenset(
        {frozenset({"a"}), frozenset({"b"})}
    )
    assert minimally_inconsistent_sets(
        structure
    ) == minimally_inconsistent_sets_naive(structure)


def test_chain_structure_has_no_inconsistent_sets():
    """The bandwidth-cap regime: every subset of the chain is consistent."""
    structure = bandwidth_cap_app(20).nes.structure
    assert minimally_inconsistent_sets(structure) == frozenset()
