"""Tests for matches, rules, flow tables, and FDD-to-table conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netkat.ast import assign, filter_, neg, seq, test as field_test, union
from repro.netkat.fdd import FDDBuilder, mod_of
from repro.netkat.flowtable import FlowTable, Match, PrefixMatch, Rule, table_of_fdd
from repro.netkat.packet import Packet
from repro.netkat.semantics import eval_packet


class TestPrefixMatch:
    def test_full_exact(self):
        pm = PrefixMatch(value=0b101, wildcard_bits=0, width=3)
        assert pm.matches(0b101) and not pm.matches(0b100)

    def test_wildcard_low_bit(self):
        pm = PrefixMatch(value=0b10, wildcard_bits=1, width=3)
        assert pm.matches(0b100) and pm.matches(0b101)
        assert not pm.matches(0b110)

    def test_all_wildcard(self):
        pm = PrefixMatch(value=0, wildcard_bits=3, width=3)
        assert all(pm.matches(v) for v in range(8))

    def test_covered_values(self):
        pm = PrefixMatch(value=0b1, wildcard_bits=2, width=3)
        assert sorted(pm.covered_values()) == [0b100, 0b101, 0b110, 0b111]

    def test_rejects_oversized_prefix(self):
        with pytest.raises(ValueError):
            PrefixMatch(value=0b100, wildcard_bits=1, width=3)

    def test_rejects_bad_wildcard_count(self):
        with pytest.raises(ValueError):
            PrefixMatch(value=0, wildcard_bits=4, width=3)

    def test_str_shows_stars(self):
        assert str(PrefixMatch(value=0b10, wildcard_bits=1, width=3)) == "10*"


class TestMatch:
    def test_empty_matches_all(self):
        assert Match().matches(Packet({"a": 1}))

    def test_exact_field(self):
        m = Match({"a": 1})
        assert m.matches(Packet({"a": 1, "b": 2}))
        assert not m.matches(Packet({"a": 2}))

    def test_missing_field_fails(self):
        assert not Match({"a": 1}).matches(Packet({}))

    def test_prefix_constraint(self):
        m = Match({"tag": PrefixMatch(value=0b1, wildcard_bits=1, width=2)})
        assert m.matches(Packet({"tag": 0b10}))
        assert m.matches(Packet({"tag": 0b11}))
        assert not m.matches(Packet({"tag": 0b01}))

    def test_extended_and_without(self):
        m = Match({"a": 1}).extended("b", 2)
        assert m.get("b") == 2
        assert m.without("a").get("a") is None

    def test_specificity(self):
        assert Match().specificity() == 0
        assert Match({"a": 1, "b": 2}).specificity() == 2

    def test_value_equality(self):
        assert Match({"a": 1, "b": 2}) == Match({"b": 2, "a": 1})
        assert hash(Match({"a": 1})) == hash(Match({"a": 1}))


class TestRule:
    def test_apply_multicast(self):
        rule = Rule(1, Match({"a": 1}), frozenset({mod_of({"pt": 1}), mod_of({"pt": 2})}))
        outs = rule.apply(Packet({"a": 1, "pt": 0}))
        assert {o["pt"] for o in outs} == {1, 2}

    def test_drop_rule(self):
        rule = Rule(1, Match(), frozenset())
        assert rule.is_drop()
        assert rule.apply(Packet({})) == frozenset()

    def test_identity_action(self):
        rule = Rule(1, Match(), frozenset({()}))
        pkt = Packet({"a": 1})
        assert rule.apply(pkt) == frozenset({pkt})


class TestFlowTable:
    def make(self):
        return FlowTable(
            [
                Rule(10, Match({"a": 1, "b": 1}), frozenset({mod_of({"out": 1})})),
                Rule(5, Match({"a": 1}), frozenset({mod_of({"out": 2})})),
                Rule(1, Match(), frozenset()),
            ]
        )

    def test_highest_priority_wins(self):
        table = self.make()
        (out,) = table.apply(Packet({"a": 1, "b": 1}))
        assert out["out"] == 1

    def test_fallthrough(self):
        table = self.make()
        (out,) = table.apply(Packet({"a": 1, "b": 2}))
        assert out["out"] == 2

    def test_default_drop(self):
        table = self.make()
        assert table.apply(Packet({"a": 9})) == frozenset()

    def test_no_rules_drops(self):
        assert FlowTable().apply(Packet({})) == frozenset()

    def test_lookup_returns_none_when_unmatched(self):
        assert FlowTable().lookup(Packet({})) is None

    def test_rules_sorted_by_priority(self):
        table = FlowTable([Rule(1, Match(), frozenset()), Rule(9, Match({"a": 1}), frozenset())])
        assert [r.priority for r in table] == [9, 1]

    def test_merged_with(self):
        t1 = FlowTable([Rule(1, Match(), frozenset())])
        t2 = FlowTable([Rule(2, Match({"a": 1}), frozenset())])
        assert len(t1.merged_with(t2)) == 2


FIELDS = ["a", "b"]
VALUES = [0, 1, 2]

link_free_policies = st.deferred(
    lambda: st.one_of(
        st.builds(
            lambda f, v: filter_(field_test(f, v)),
            st.sampled_from(FIELDS),
            st.sampled_from(VALUES),
        ),
        st.builds(
            lambda f, v: filter_(neg(field_test(f, v))),
            st.sampled_from(FIELDS),
            st.sampled_from(VALUES),
        ),
        st.builds(assign, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
        st.builds(lambda p, q: union(p, q), link_free_policies, link_free_policies),
        st.builds(lambda p, q: seq(p, q), link_free_policies, link_free_policies),
    )
)

packets = st.builds(
    lambda d: Packet(d),
    st.fixed_dictionaries({f: st.sampled_from(VALUES) for f in FIELDS}),
)


class TestTableOfFDD:
    @given(link_free_policies, packets)
    @settings(max_examples=300, deadline=None)
    def test_table_agrees_with_policy(self, p, pkt):
        """The flow table realizes exactly the policy's packet function."""
        b = FDDBuilder()
        table = table_of_fdd(b, b.of_policy(p))
        assert table.apply(pkt) == eval_packet(p, pkt)

    def test_negative_constraints_become_shadowing(self):
        # if a=1 then drop else out<-1: needs a drop rule shadowing a
        # catch-all; without the drop rule a=1 packets would be forwarded.
        b = FDDBuilder()
        p = union(
            seq(filter_(field_test("a", 1)), filter_(field_test("zz", 5))),
            seq(filter_(neg(field_test("a", 1))), assign("out", 1)),
        )
        table = table_of_fdd(b, b.of_policy(p))
        assert table.apply(Packet({"a": 1})) == frozenset()
        (out,) = table.apply(Packet({"a": 2}))
        assert out["out"] == 1
