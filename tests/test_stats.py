"""Tests for the measurement utilities."""

import math

import pytest

from repro.apps import firewall_app
from repro.network import (
    CorrectLogic,
    SimNetwork,
    deliveries_per_second,
    install_ping_responders,
    latency_summary,
    loss_rate,
    ping_outcomes,
    send_ping,
    success_timeline,
)
from repro.network.traffic import PingOutcome


def run_pings(schedule):
    app = firewall_app()
    net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
    install_ping_responders(net)
    pings = []
    for ident, (src, dst, at) in enumerate(schedule, start=1):
        send_ping(net, src, dst, ident, at)
        pings.append((src, dst, ident, at))
    net.run(until=20.0)
    return net, ping_outcomes(net, pings)


class TestDeliveriesPerSecond:
    def test_bucketing(self):
        net, _ = run_pings([("H1", "H4", 0.5), ("H1", "H4", 1.5)])
        buckets = deliveries_per_second(net, host="H4", flow_prefix=("ping",))
        assert buckets == {0: 1, 1: 1}

    def test_host_filter(self):
        net, _ = run_pings([("H1", "H4", 0.5)])
        assert deliveries_per_second(net, host="H2") == {}


class TestLossRate:
    def test_no_outcomes(self):
        assert loss_rate([]) == 0.0

    def test_mixed(self):
        # H4->H1 before any event is dropped; H1->H4 succeeds.
        net, outcomes = run_pings([("H4", "H1", 0.5), ("H1", "H4", 1.0)])
        assert loss_rate(outcomes) == 0.5


class TestLatencySummary:
    def test_empty(self):
        summary = latency_summary([])
        assert summary.count == 0 and math.isnan(summary.median)

    def test_ordered_stats(self):
        _, outcomes = run_pings(
            [("H1", "H4", 0.5), ("H1", "H4", 1.0), ("H1", "H4", 1.5)]
        )
        summary = latency_summary(outcomes)
        assert summary.count == 3
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum > 0

    def test_failed_pings_excluded(self):
        _, outcomes = run_pings([("H4", "H1", 0.5), ("H1", "H4", 1.0)])
        assert latency_summary(outcomes).count == 1


class TestSuccessTimeline:
    def test_sorted_by_send_time(self):
        _, outcomes = run_pings([("H1", "H4", 1.0), ("H4", "H1", 0.5)])
        timeline = success_timeline(outcomes)
        assert timeline == [(0.5, False), (1.0, True)]
