"""Unit tests for the traffic generators and measurements."""

import pytest

from repro.apps import firewall_app
from repro.network import (
    CorrectLogic,
    Frame,
    SimNetwork,
    goodput,
    install_ping_responders,
    ping_outcomes,
    send_bulk,
    send_ping,
)
from repro.network.traffic import KIND_REPLY, KIND_REQUEST


@pytest.fixture()
def net():
    app = firewall_app()
    network = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
    install_ping_responders(network)
    return network


class TestPings:
    def test_request_carries_fields(self, net):
        send_ping(net, "H1", "H4", 7, 0.1)
        net.run(until=2.0)
        requests = [d for d in net.deliveries if d.frame.flow[:1] == ("ping",)]
        assert requests, "request not delivered"
        pkt = requests[0].frame.packet
        assert pkt["kind"] == KIND_REQUEST
        assert pkt["ident"] == 7
        assert pkt["ip_src"] == 1 and pkt["ip_dst"] == 4

    def test_reply_swaps_addresses(self, net):
        send_ping(net, "H1", "H4", 7, 0.1)
        net.run(until=2.0)
        replies = [d for d in net.deliveries if d.frame.flow[:1] == ("ping-reply",)]
        assert replies
        pkt = replies[0].frame.packet
        assert pkt["kind"] == KIND_REPLY
        assert pkt["ip_src"] == 4 and pkt["ip_dst"] == 1

    def test_extra_fields_forwarded(self, net):
        send_ping(net, "H1", "H4", 1, 0.1, extra_fields={"dscp": 46})
        net.run(until=2.0)
        requests = [d for d in net.deliveries if d.frame.flow[:1] == ("ping",)]
        assert requests[0].frame.packet["dscp"] == 46

    def test_outcomes_match_by_ident(self, net):
        send_ping(net, "H1", "H4", 1, 0.1)
        send_ping(net, "H1", "H4", 2, 0.2)
        net.run(until=3.0)
        outcomes = ping_outcomes(
            net, [("H1", "H4", 1, 0.1), ("H1", "H4", 2, 0.2), ("H1", "H4", 3, 0.3)]
        )
        assert [o.succeeded for o in outcomes] == [True, True, False]

    def test_reply_not_generated_for_reply(self, net):
        """Replies must not ping-pong forever."""
        send_ping(net, "H1", "H4", 1, 0.1)
        net.run(until=5.0)
        replies = [d for d in net.deliveries if d.frame.flow[:1] == ("ping-reply",)]
        assert len(replies) == 1


class TestBulk:
    def test_send_bulk_count(self, net):
        send_bulk(net, "H1", "H4", packets=10)
        net.run(until=10.0)
        assert len(net.delivered_flows(("bulk", "H1", "H4"))) == 10

    def test_goodput_zero_for_tiny_flows(self, net):
        send_bulk(net, "H1", "H4", packets=1)
        net.run(until=5.0)
        assert goodput(net, "H1", "H4") == 0.0

    def test_goodput_positive(self, net):
        send_bulk(net, "H1", "H4", packets=20)
        net.run(until=10.0)
        assert goodput(net, "H1", "H4") > 0

    def test_spacing_paces_flow(self):
        app = firewall_app()
        paced = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        send_bulk(paced, "H1", "H4", packets=5, spacing=0.5)
        paced.run(until=10.0)
        times = sorted(d.time for d in paced.delivered_flows(("bulk", "H1", "H4")))
        assert times[-1] - times[0] >= 1.9  # 4 gaps of 0.5s


class TestFrame:
    def test_with_location(self):
        from repro.netkat.packet import Location, Packet

        f = Frame(packet=Packet({"sw": 1, "pt": 1}))
        moved = f.with_location(Location(4, 2))
        assert moved.packet.location == Location(4, 2)
        assert f.packet.location == Location(1, 1)  # original untouched
