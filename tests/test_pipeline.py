"""Golden tests for the staged pipeline façade.

The pipeline's scale knobs must be invisible in the output: the thread
backend, the persistent artifact cache (cold and warm), and the façade
itself all have to produce guarded tables byte-identical to the legacy
direct ``build_ets -> nes_of_ets -> compile_nes`` path, on every seed
application.  The deprecation shims must keep old spellings working --
with a warning -- and identical results.
"""

import pickle
import warnings
from pathlib import Path

import pytest

from repro import CompileOptions, Delta, Pipeline, compile_app
from repro.apps import bandwidth_cap_app, firewall_app, ids_app
from repro.events.ets_to_nes import nes_of_ets
from repro.netkat.fdd import FDDBuilder
from repro.pipeline import ArtifactCache, artifact_digest
from repro.runtime.compiler import CompiledNES, compile_nes
from repro.stateful.ets import build_ets

from seed_apps import APPS, guarded_bytes


def legacy_compile(app) -> CompiledNES:
    """The pre-pipeline entry points, chained by hand."""
    ets = build_ets(app.program, app.initial_state)
    return compile_nes(nes_of_ets(ets), app.topology)


# ---------------------------------------------------------------------------
# Byte-identity goldens: backend x cache x façade, on all seven seed apps
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_backends_cache_and_facade_byte_identical(name, make, tmp_path):
    app = make()
    reference = guarded_bytes(legacy_compile(app))

    serial = Pipeline(app.program, app.topology, app.initial_state)
    assert guarded_bytes(serial.compiled) == reference

    threaded = Pipeline(
        app.program,
        app.topology,
        app.initial_state,
        CompileOptions(backend="thread", max_workers=4),
    )
    assert guarded_bytes(threaded.compiled) == reference

    cached = CompileOptions(cache_dir=tmp_path / "cache")
    cold = Pipeline(app.program, app.topology, app.initial_state, cached)
    assert guarded_bytes(cold.compiled) == reference
    assert cold.report().artifact_cache == "miss"

    warm = Pipeline(app.program, app.topology, app.initial_state, cached)
    assert guarded_bytes(warm.compiled) == reference
    assert warm.report().artifact_cache == "hit"


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_symbolic_extract_byte_identical(name, make):
    """The symbolic all-states engine (the default) must produce ETS
    vertices/edges and guarded tables byte-identical to the per-state
    extract/project reference walks."""
    app = make()
    fast = Pipeline(app.program, app.topology, app.initial_state)
    reference = Pipeline(
        app.program,
        app.topology,
        app.initial_state,
        CompileOptions(symbolic_extract=False),
    )
    assert fast.ets.initial == reference.ets.initial
    assert fast.ets.vertices == reference.ets.vertices
    assert fast.ets.edges == reference.ets.edges
    assert repr(fast.ets) == repr(reference.ets)
    assert guarded_bytes(fast.compiled) == guarded_bytes(reference.compiled)


def test_symbolic_extract_is_in_the_artifact_key():
    app = firewall_app()
    base = CompileOptions()
    assert artifact_digest(
        app.program, app.topology, app.initial_state, base
    ) != artifact_digest(
        app.program,
        app.topology,
        app.initial_state,
        base.replace(symbolic_extract=False),
    )


def test_report_shows_the_symbolic_vs_instantiate_split():
    app = firewall_app()
    fast = Pipeline(app.program, app.topology, app.initial_state)
    fast.ets
    report = fast.report()
    subs = [name for name, _ in report.substages]
    assert subs == ["ets.symbolic", "ets.instantiate"]
    assert report.substage("ets.symbolic") is not None
    # The substages refine the ets stage; total_seconds() counts each
    # stage once.
    assert report.total_seconds() == pytest.approx(
        sum(s for _, s in report.stage_seconds)
    )
    assert "ets.symbolic" in str(report) and "ets.instantiate" in str(report)

    reference = Pipeline(
        app.program,
        app.topology,
        app.initial_state,
        CompileOptions(symbolic_extract=False),
    )
    reference.ets
    assert reference.report().substages == ()


def test_app_facade_matches_legacy():
    app = firewall_app()
    assert guarded_bytes(app.compiled) == guarded_bytes(legacy_compile(app))
    # The app's staged artifacts are the pipeline's.
    assert app.compiled is app.pipeline.compiled
    assert app.nes is app.pipeline.nes
    # The façade's table accessor forwards the tag_field override.
    assert app.pipeline.guarded_tables() == app.compiled.guarded_tables()
    custom = app.pipeline.guarded_tables(tag_field="cfg")
    rules = [r for t in custom.values() for r in t]
    assert rules and all(r.match.get("cfg") is not None for r in rules)


# ---------------------------------------------------------------------------
# The artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_warm_hit_skips_ets_and_nes_stages(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        Pipeline(app.program, app.topology, app.initial_state, options).compiled

        warm = Pipeline(app.program, app.topology, app.initial_state, options)
        warm.compiled
        stages = [name for name, _ in warm.report().stage_seconds]
        assert stages == ["compile"]
        # The NES is recovered from the artifact, not rebuilt.
        assert warm.nes is warm.compiled.nes
        assert [name for name, _ in warm.report().stage_seconds] == ["compile"]
        # Execution-only fields reflect this run, not the storing one:
        # backends share cache entries, so a serial load of a
        # thread-stored artifact must not claim backend="thread".
        threaded_store = CompileOptions(backend="thread", cache_dir=tmp_path)
        Pipeline(
            app.program, app.topology, app.initial_state, threaded_store
        ).compiled
        serial_load = Pipeline(
            app.program, app.topology, app.initial_state, options
        )
        assert serial_load.compiled.options.backend == "serial"
        assert serial_load.compiled.options.cache_dir == options.cache_dir

    def test_warm_hit_serves_nes_without_building_the_ets(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        Pipeline(app.program, app.topology, app.initial_state, options).compiled

        warm = Pipeline(app.program, app.topology, app.initial_state, options)
        # Touching .nes first (the examples do) must still hit the cache
        # rather than paying for the ETS and NES stages.
        nes = warm.nes
        assert warm.report().artifact_cache == "hit"
        stages = [name for name, _ in warm.report().stage_seconds]
        assert stages == ["compile"]
        assert nes is warm.compiled.nes

    def test_uncreatable_cache_dir_disables_the_cache(self, tmp_path, monkeypatch):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path / "cache")

        def broken_init(self, root):
            raise OSError("read-only filesystem")

        monkeypatch.setattr(ArtifactCache, "__init__", broken_init)
        pipeline = Pipeline(app.program, app.topology, app.initial_state, options)
        assert guarded_bytes(pipeline.compiled) == guarded_bytes(
            legacy_compile(app)
        )
        assert pipeline.report().artifact_cache is None

    def test_artifact_survives_a_different_hash_seed(self, tmp_path):
        """Events/formulas cache PYTHONHASHSEED-dependent hashes; a warm
        artifact stored under another seed must still interoperate with
        freshly built equal events in this process."""
        import os
        import subprocess
        import sys

        store = (
            "from repro import CompileOptions, Pipeline\n"
            "from repro.apps import firewall_app\n"
            "app = firewall_app()\n"
            f"opts = CompileOptions(cache_dir={str(tmp_path)!r})\n"
            "Pipeline(app.program, app.topology, app.initial_state, opts).compiled\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src"
        )
        subprocess.run(
            [sys.executable, "-c", store], env=env, check=True, timeout=120
        )

        app = firewall_app()
        opts = CompileOptions(cache_dir=tmp_path)
        warm = Pipeline(app.program, app.topology, app.initial_state, opts)
        loaded = warm.compiled
        assert warm.report().artifact_cache == "hit"
        for event in loaded.nes.events:
            fresh = type(event)(event.guard, event.location, event.eid)
            assert hash(fresh) == hash(event)
            assert fresh in frozenset(loaded.nes.events)
            assert loaded.nes.structure.event_index.get(fresh) is not None
        assert guarded_bytes(loaded) == guarded_bytes(legacy_compile(app))

    def test_key_covers_program_state_and_semantic_options(self):
        app = firewall_app()
        ids = ids_app()
        base = CompileOptions()
        key = artifact_digest(app.program, app.topology, app.initial_state, base)
        assert key == artifact_digest(
            app.program, app.topology, app.initial_state, base
        )
        assert key != artifact_digest(
            ids.program, ids.topology, ids.initial_state, base
        )
        assert key != artifact_digest(
            app.program, app.topology, (1,), base
        )
        assert key != artifact_digest(
            app.program,
            app.topology,
            app.initial_state,
            base.replace(knowledge_cache=False),
        )

    def test_execution_only_options_share_the_key(self, tmp_path):
        app = firewall_app()
        base = CompileOptions()
        for variant in (
            base.replace(backend="thread"),
            base.replace(max_workers=7),
            base.replace(cache_dir=tmp_path),
        ):
            assert artifact_digest(
                app.program, app.topology, app.initial_state, variant
            ) == artifact_digest(app.program, app.topology, app.initial_state, base)

    def test_key_covers_the_package_version(self, monkeypatch):
        import repro

        app = firewall_app()
        base = CompileOptions()
        key = artifact_digest(app.program, app.topology, app.initial_state, base)
        monkeypatch.setattr(repro, "__version__", "99.0.0")
        assert key != artifact_digest(
            app.program, app.topology, app.initial_state, base
        )

    def test_corrupt_entry_is_a_miss_and_gets_repaired(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        pipeline = Pipeline(app.program, app.topology, app.initial_state, options)
        key = pipeline.artifact_key()
        ArtifactCache(tmp_path).path(key).write_bytes(b"not a pickle")

        assert guarded_bytes(pipeline.compiled) == guarded_bytes(
            legacy_compile(app)
        )
        assert pipeline.report().artifact_cache == "miss"
        # The store overwrote the corrupt entry; the next pipeline hits.
        rerun = Pipeline(app.program, app.topology, app.initial_state, options)
        rerun.compiled
        assert rerun.report().artifact_cache == "hit"

    def test_artifact_pickles_without_guarded_table_memo(self):
        compiled = firewall_app().compiled
        compiled.guarded_tables()
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone._guarded_tables == {}
        # The builder is not shipped either (its AST memos are keyed by
        # id() values from the storing process); the clone gets a fresh
        # one configured by the same options.
        assert clone._builder is not compiled._builder
        assert not clone._builder._memo_of_policy
        # Same for the event structure's id()-keyed shadow index: every
        # key must be a live id of the clone's own universe, never a
        # stale storing-process address.
        structure = clone.nes.structure
        live = {id(e) for e in structure._universe}
        assert set(structure._index_by_id) == live
        assert guarded_bytes(clone) == guarded_bytes(compiled)

    def test_failed_store_does_not_discard_the_compile(self, tmp_path, monkeypatch):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        pipeline = Pipeline(app.program, app.topology, app.initial_state, options)

        def broken_store(self, key, compiled):
            raise OSError("disk full")

        monkeypatch.setattr(ArtifactCache, "store", broken_store)
        assert guarded_bytes(pipeline.compiled) == guarded_bytes(
            legacy_compile(app)
        )

    def test_store_failure_leaves_no_tmp_file(self, tmp_path, monkeypatch):
        compiled = firewall_app().compiled
        cache = ArtifactCache(tmp_path)
        # A pickling failure happens before any file is touched...
        monkeypatch.setattr(
            pickle, "dumps", lambda *a, **k: (_ for _ in ()).throw(OSError("boom"))
        )
        with pytest.raises(OSError):
            cache.store("somekey", compiled)
        assert list(tmp_path.iterdir()) == []
        # ...and a write failure after it cleans its temp file up.
        monkeypatch.undo()
        real_open = open

        def broken_open(path, *args, **kwargs):
            handle = real_open(path, *args, **kwargs)
            if str(path).startswith(str(tmp_path)) and "w" in str(args):
                handle.close()
                raise OSError("disk full")
            return handle

        monkeypatch.setattr("builtins.open", broken_open)
        with pytest.raises(OSError):
            cache.store("somekey", compiled)
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# CompileOptions
# ---------------------------------------------------------------------------


class TestCompileOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompileOptions(backend="fork")
        with pytest.raises(ValueError):
            CompileOptions(max_workers=0)
        with pytest.raises(ValueError):
            CompileOptions(max_frontier=0)
        with pytest.raises(ValueError):
            CompileOptions(tag_field="")

    def test_replace_revalidates(self):
        options = CompileOptions()
        assert options.replace(backend="thread").backend == "thread"
        with pytest.raises(ValueError):
            options.replace(backend="fork")

    def test_cache_dir_is_tilde_expanded(self):
        expanded = CompileOptions(cache_dir="~/repro-cache").cache_dir
        assert "~" not in str(expanded)
        assert expanded == Path("~/repro-cache").expanduser()

    def test_make_builder_carries_the_knobs(self):
        builder = CompileOptions(ordered_insert=False, ast_memo=False).make_builder()
        assert builder.ordered_insert is False
        assert builder.ast_memo is False
        default = CompileOptions().make_builder()
        assert default.ordered_insert is True and default.ast_memo is True


def test_compile_app_forms():
    app = firewall_app()
    reference = guarded_bytes(app.compiled)
    # With no option overrides, the app's own pipeline is reused -- the
    # compile work and the stage report are shared, not redone.
    assert compile_app(app) is app.pipeline.compiled
    assert guarded_bytes(compile_app(app)) == reference
    assert (
        guarded_bytes(compile_app(app.program, app.topology, app.initial_state))
        == reference
    )
    assert guarded_bytes(compile_app(app, backend="thread")) == reference
    with pytest.raises(TypeError):
        compile_app(app.program)
    # An app bundles its own topology/initial_state; a conflicting
    # override must be rejected, never silently ignored.
    with pytest.raises(TypeError):
        compile_app(app, initial_state=(1,))
    with pytest.raises(TypeError):
        compile_app(app, topology=app.topology)


# ---------------------------------------------------------------------------
# Deprecation shims: old spellings warn but produce identical results
# ---------------------------------------------------------------------------


class TestDeprecationShims:
    def test_compile_nes_knowledge_cache_kwarg(self):
        app = firewall_app()
        with pytest.warns(DeprecationWarning, match="CompileOptions"):
            old = compile_nes(app.nes, app.topology, knowledge_cache=False)
        new = compile_nes(
            app.nes, app.topology, options=CompileOptions(knowledge_cache=False)
        )
        assert old.options.knowledge_cache is False
        assert guarded_bytes(old) == guarded_bytes(new) == guarded_bytes(app.compiled)

    def test_fddbuilder_ordered_insert_kwarg(self):
        from repro.netkat.ast import assign, filter_, seq, test, union

        link_free = union(
            seq(filter_(test("pt", 2)), assign("pt", 1), assign("ip_dst", 4)),
            seq(assign("ip_src", 1), filter_(test("pt", 1)), assign("pt", 2)),
        )
        with pytest.warns(DeprecationWarning, match="CompileOptions"):
            old = FDDBuilder(ordered_insert=False, ast_memo=False)
        new = CompileOptions(ordered_insert=False, ast_memo=False).make_builder()
        assert old.ordered_insert is False and old.ast_memo is False
        assert repr(old.of_policy(link_free)) == repr(new.of_policy(link_free))

    def test_default_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            FDDBuilder()
            compile_nes(firewall_app().nes, firewall_app().topology)


# ---------------------------------------------------------------------------
# Per-options guarded-table memo
# ---------------------------------------------------------------------------


class TestGuardedTablesPerOptionsMemo:
    def test_tag_field_variants_do_not_alias(self):
        compiled = firewall_app().compiled
        default = compiled.guarded_tables()
        custom = compiled.guarded_tables(tag_field="cfg")
        # Each variant guards with its own field...
        for tables, field_name in ((default, "tag"), (custom, "cfg")):
            rules = [r for t in tables.values() for r in t]
            assert rules and all(
                r.match.get(field_name) is not None for r in rules
            )
        # ...and asking for the default again returns the default memo,
        # not whichever variant was computed last.
        again = compiled.guarded_tables()
        for switch in default:
            assert again[switch] is default[switch]

    def test_invalidate_clears_every_variant(self):
        compiled = firewall_app().compiled
        default = compiled.guarded_tables()
        custom = compiled.guarded_tables(tag_field="cfg")
        compiled.invalidate_guarded_tables()
        assert any(
            compiled.guarded_tables()[sw] is not default[sw] for sw in default
        )
        assert any(
            compiled.guarded_tables(tag_field="cfg")[sw] is not custom[sw]
            for sw in custom
        )

    def test_options_tag_field_sets_the_default(self):
        app = firewall_app()
        compiled = compile_nes(
            app.nes, app.topology, options=CompileOptions(tag_field="cfg")
        )
        rules = [r for t in compiled.guarded_tables().values() for r in t]
        assert rules and all(r.match.get("cfg") is not None for r in rules)

    def test_colliding_tag_field_is_rejected_not_overwritten(self):
        # Match.extended silently replaces an existing constraint, so a
        # tag field the program already matches on must raise, never
        # corrupt the rule (section 4.1 argues for an *unused* field).
        app = firewall_app()
        compiled = compile_nes(
            app.nes, app.topology, options=CompileOptions(tag_field="pt")
        )
        with pytest.raises(ValueError, match="collides"):
            compiled.guarded_tables()
        # The §5.3 optimizer's guarded merge enforces the same rule.
        from repro.optimize.sharing import optimize_compiled_nes

        with pytest.raises(ValueError, match="collides"):
            optimize_compiled_nes(compiled)
        # repr stays total: it must not force the guarded merge.
        assert "CompiledNES" in repr(compiled)

    def test_options_tag_field_reaches_the_optimizer(self):
        from repro.optimize.sharing import (
            optimize_compiled_nes,
            optimized_table_equivalent,
        )

        app = firewall_app()
        compiled = compile_nes(
            app.nes, app.topology, options=CompileOptions(tag_field="cfg")
        )
        optimization = optimize_compiled_nes(compiled)
        guards = [
            r.match.get("cfg")
            for switch_result in optimization.per_switch
            for r in switch_result.rules
        ]
        assert guards and all(g is not None for g in guards)
        for switch_result in optimization.per_switch:
            assert optimized_table_equivalent(compiled, switch_result)


# ---------------------------------------------------------------------------
# Thread backend details
# ---------------------------------------------------------------------------


def test_thread_backend_preserves_state_order():
    app = bandwidth_cap_app()
    serial = compile_nes(app.nes, app.topology)
    threaded = compile_nes(
        app.nes,
        app.topology,
        options=CompileOptions(backend="thread", max_workers=3),
    )
    assert list(serial.configurations) == list(threaded.configurations)
    assert serial.states == threaded.states


def test_explicit_builder_forces_serial_path():
    app = firewall_app()
    builder = FDDBuilder()
    compiled = compile_nes(
        app.nes,
        app.topology,
        builder,  # old positional spelling must keep binding to builder=
        options=CompileOptions(backend="thread"),
    )
    # The caller-owned builder compiled every configuration (its AST
    # memos are warm), which only the serial path guarantees.
    assert compiled._builder is builder
    assert builder._memo_of_policy
    assert guarded_bytes(compiled) == guarded_bytes(app.compiled)


# ---------------------------------------------------------------------------
# Incremental recompilation: Pipeline.update and Delta
# ---------------------------------------------------------------------------


def cold_after(app, delta):
    """The from-scratch pipeline for the post-delta program."""
    return Pipeline(
        delta.apply_program(app.program),
        delta.apply_topology(app.topology),
        delta.apply_initial_state(app.initial_state),
        app.options,
    )


class TestPipelineUpdate:
    @pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
    def test_noop_delta_is_byte_identical_with_full_reuse(self, name, make):
        app = make()
        base = Pipeline(app.program, app.topology, app.initial_state)
        updated = base.update(Delta())
        assert guarded_bytes(updated.compiled) == guarded_bytes(base.compiled)
        stats = dict(updated.report().stats)
        assert stats["update.reuse_percent"] == 100
        assert stats["update.configurations_recompiled"] == 0
        assert stats["update.states_reinstantiated"] == 0

    @pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
    def test_state_delta_matches_cold_rebuild(self, name, make):
        app = make()
        base = Pipeline(app.program, app.topology, app.initial_state)
        delta = Delta(set_state=((0, 1),))
        assert guarded_bytes(base.update(delta).compiled) == guarded_bytes(
            cold_after(app, delta).compiled
        )

    def test_policy_delta_matches_cold_rebuild(self):
        from repro.netkat.ast import Filter, conj, test

        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        # Widen the outgoing filter: also admit ip_dst=2 traffic.
        old = Filter(conj(test("pt", 2), test("ip_dst", 4)))
        new = Filter(conj(test("pt", 2), test("ip_dst", 2)))
        delta = Delta(replace_policy=old, with_policy=new)
        assert guarded_bytes(base.update(delta).compiled) == guarded_bytes(
            cold_after(app, delta).compiled
        )

    def test_state_test_delta_matches_cold_rebuild(self):
        from repro.netkat.ast import Filter
        from repro.stateful.ast import state_test

        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        delta = Delta(
            replace_policy=Filter(state_test(0, 1)),
            with_policy=Filter(state_test(0, 0)),
        )
        assert guarded_bytes(base.update(delta).compiled) == guarded_bytes(
            cold_after(app, delta).compiled
        )

    def test_reference_extraction_path_matches_cold_rebuild(self):
        app = firewall_app()
        options = CompileOptions(symbolic_extract=False)
        base = Pipeline(app.program, app.topology, app.initial_state, options)
        delta = Delta(set_state=((0, 1),))
        cold = Pipeline(
            app.program,
            app.topology,
            delta.apply_initial_state(app.initial_state),
            options,
        )
        assert guarded_bytes(base.update(delta).compiled) == guarded_bytes(
            cold.compiled
        )

    def test_unaffected_configurations_are_reused_not_recompiled(self):
        app = bandwidth_cap_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        updated = base.update(Delta(set_state=((0, 1),)))
        stats = dict(updated.report().stats)
        # Advancing the counter drops state 0 from the reachable set but
        # leaves every surviving state's guard untouched.
        assert stats["update.configurations_reused"] > 0
        assert stats["update.configurations_recompiled"] == 0
        reused = updated.compiled.configurations
        for state, configuration in base.compiled.configurations.items():
            if state in reused:
                assert reused[state] is configuration

    def test_artifact_key_reflects_the_post_delta_program(self):
        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        delta = Delta(set_state=((0, 1),))
        updated = base.update(delta)
        assert updated.artifact_key() == cold_after(app, delta).artifact_key()
        assert updated.artifact_key() != base.artifact_key()

    def test_zero_hit_replacement_raises(self):
        from repro.netkat.ast import Filter, test

        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        with pytest.raises(ValueError, match="does not occur"):
            base.update(
                Delta(
                    replace_policy=Filter(test("ip_dst", 99)),
                    with_policy=Filter(test("ip_dst", 98)),
                )
            )

    def test_out_of_range_state_component_raises(self):
        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        with pytest.raises(ValueError):
            base.update(Delta(set_state=((5, 1),)))

    def test_update_on_a_warm_cache_is_a_hit(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        delta = Delta(set_state=((0, 1),))
        base = Pipeline(app.program, app.topology, app.initial_state, options)
        base.compiled
        # Prime the cache with the post-delta artifact, then update: the
        # updated pipeline must serve it instead of recompiling.
        reference = guarded_bytes(cold_after(app, delta).compiled)
        base.update(delta)  # stores the post-delta artifact
        again = Pipeline(app.program, app.topology, app.initial_state, options)
        updated = again.update(delta)
        assert updated.report().artifact_cache == "hit"
        assert guarded_bytes(updated.compiled) == reference
        stats = dict(updated.report().stats)
        assert stats["update.reuse_percent"] == 100


# ---------------------------------------------------------------------------
# Report-shape pins: warm-cache and update reports
# ---------------------------------------------------------------------------


class TestReportShapes:
    def test_warm_cache_report_omits_ets_and_nes(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        Pipeline(app.program, app.topology, app.initial_state, options).compiled
        warm = Pipeline(app.program, app.topology, app.initial_state, options)
        warm.compiled
        report = warm.report()
        assert [name for name, _ in report.stage_seconds] == ["compile"]
        assert report.substages == ()
        assert report.artifact_cache == "hit"
        stat_names = [name for name, _ in report.stats]
        assert "ets_states" not in stat_names
        assert "nes_events" not in stat_names

    def test_update_report_shape(self):
        app = firewall_app()
        base = Pipeline(app.program, app.topology, app.initial_state)
        report = base.update(Delta(set_state=((0, 1),))).report()
        stages = [name for name, _ in report.stage_seconds]
        assert stages == ["ets", "nes", "compile"]
        subs = [name for name, _ in report.substages]
        assert subs == ["ets.symbolic", "ets.instantiate", "update.delta"]
        stat_names = [name for name, _ in report.stats]
        assert stat_names[-5:] == [
            "update.states_reinstantiated",
            "update.states_reused",
            "update.configurations_recompiled",
            "update.configurations_reused",
            "update.reuse_percent",
        ]
        # The trailing substage block keeps update.delta visible.
        assert "update.delta" in str(report)


# ---------------------------------------------------------------------------
# App.pipeline memoization is keyed on the pipeline's inputs
# ---------------------------------------------------------------------------


class TestAppPipelineMemo:
    def test_replaced_options_invalidate_the_memo(self):
        app = firewall_app()
        first = app.pipeline
        assert app.pipeline is first  # unchanged inputs share the pipeline
        fresh = CompileOptions(symbolic_extract=False)
        object.__setattr__(app, "options", fresh)
        second = app.pipeline
        assert second is not first
        assert second.options is fresh
        assert app.pipeline is second

    def test_replaced_initial_state_invalidates_the_memo(self):
        app = firewall_app()
        first = app.pipeline
        object.__setattr__(app, "initial_state", (1,))
        second = app.pipeline
        assert second is not first
        assert second.initial_state == (1,)


# ---------------------------------------------------------------------------
# Thread safety: the lazy stage memos under concurrent access
# ---------------------------------------------------------------------------


class TestPipelineThreadSafety:
    def test_barrier_synchronized_threads_compile_once(self, monkeypatch):
        """Two threads released together into ``.compiled`` run the
        compile stage exactly once and observe the same object — the
        service shares memoized pipelines across request threads, so a
        double-compile (or a torn half-built stage) here would be a
        served-table race there."""
        import threading

        import repro.pipeline as pipeline_module

        calls = []
        real_compile = pipeline_module.compile_nes

        def counting_compile(*args, **kwargs):
            calls.append(threading.get_ident())
            return real_compile(*args, **kwargs)

        monkeypatch.setattr(pipeline_module, "compile_nes", counting_compile)

        app = firewall_app()
        pipeline = Pipeline(app.program, app.topology, app.initial_state)
        barrier = threading.Barrier(2)
        results = [None, None]
        errors = []

        def race(slot):
            try:
                barrier.wait()
                results[slot] = pipeline.compiled
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=race, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(calls) == 1
        assert results[0] is not None
        assert results[0] is results[1]
        # Publish-last memoization: anyone who saw the compiled object
        # also sees each stage timing recorded exactly once.
        report = pipeline.report()
        assert [name for name, _ in report.stage_seconds] == [
            "ets", "nes", "compile",
        ]


# ---------------------------------------------------------------------------
# PipelineReport.to_dict: the wire shape /stats and --json serve
# ---------------------------------------------------------------------------


class TestReportToDict:
    def test_shape_is_pinned(self):
        """The exact key set of the JSON report — the service's /compile
        report field and ``repro compile --json`` both serve this, so a
        drift here is a wire-format break."""
        import json

        app = firewall_app()
        pipeline = Pipeline(app.program, app.topology, app.initial_state)
        pipeline.compiled
        report = pipeline.report().to_dict()
        assert sorted(report) == [
            "artifact_cache",
            "backend",
            "health",
            "stages",
            "stats",
            "substages",
            "total_seconds",
        ]
        # JSON-serializable end to end, and faithful to the report.
        rehydrated = json.loads(json.dumps(report))
        assert rehydrated == report
        assert set(report["stages"]) == {"ets", "nes", "compile"}
        assert report["backend"] == "serial"
        assert report["artifact_cache"] is None  # no cache configured
        assert report["total_seconds"] == pytest.approx(
            sum(report["stages"].values())
        )
