"""Tests for packets, locations, and histories."""

import pytest
from hypothesis import given, strategies as st

from repro.netkat.packet import History, LocatedPacket, Location, Packet, PT, SW


field_names = st.sampled_from(["sw", "pt", "ip_src", "ip_dst", "vlan", "proto"])
field_maps = st.dictionaries(field_names, st.integers(0, 7), min_size=0, max_size=6)


class TestLocation:
    def test_parse_roundtrip(self):
        loc = Location.parse("3:14")
        assert loc == Location(3, 14)
        assert str(loc) == "3:14"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Location.parse("3")

    def test_parse_rejects_nonnumeric(self):
        with pytest.raises(ValueError):
            Location.parse("a:b")

    def test_ordering(self):
        assert Location(1, 2) < Location(1, 3) < Location(2, 0)


class TestPacket:
    def test_lookup_and_get(self):
        pkt = Packet({"sw": 1, "pt": 2, "ip_dst": 4})
        assert pkt["ip_dst"] == 4
        assert pkt.get("missing") is None
        assert pkt.get("missing", 9) == 9

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            Packet({})["nope"]

    def test_contains_and_iter(self):
        pkt = Packet({"a": 1, "b": 2})
        assert "a" in pkt and "c" not in pkt
        assert sorted(pkt) == ["a", "b"]

    def test_set_is_functional(self):
        pkt = Packet({"a": 1})
        pkt2 = pkt.set("a", 2)
        assert pkt["a"] == 1 and pkt2["a"] == 2

    def test_set_new_field(self):
        assert Packet({}).set("x", 5)["x"] == 5

    def test_without(self):
        pkt = Packet({"a": 1, "b": 2}).without("a")
        assert "a" not in pkt and pkt["b"] == 2

    def test_equality_is_value_based(self):
        assert Packet({"a": 1, "b": 2}) == Packet({"b": 2, "a": 1})
        assert hash(Packet({"a": 1})) == hash(Packet({"a": 1}))

    def test_usable_in_sets(self):
        assert len({Packet({"a": 1}), Packet({"a": 1}), Packet({"a": 2})}) == 2

    def test_rejects_non_int_values(self):
        with pytest.raises(TypeError):
            Packet({"a": "x"})

    def test_rejects_bool_values(self):
        with pytest.raises(TypeError):
            Packet({"a": True})

    def test_rejects_non_string_fields(self):
        with pytest.raises(TypeError):
            Packet({1: 2})

    def test_location_helpers(self):
        pkt = Packet({SW: 3, PT: 7})
        assert pkt.switch == 3 and pkt.port == 7
        assert pkt.location == Location(3, 7)

    def test_at_relocates(self):
        pkt = Packet({SW: 1, PT: 1, "x": 9}).at(Location(5, 6))
        assert pkt.location == Location(5, 6) and pkt["x"] == 9

    @given(field_maps)
    def test_hash_equals_implies_eq(self, fields):
        assert Packet(fields) == Packet(dict(fields))

    @given(field_maps, field_names, st.integers(0, 7))
    def test_set_then_get(self, fields, name, value):
        assert Packet(fields).set(name, value)[name] == value

    @given(field_maps, field_names)
    def test_without_removes(self, fields, name):
        assert name not in Packet(fields).without(name)


class TestLocatedPacket:
    def test_of_uses_packet_location(self):
        pkt = Packet({SW: 2, PT: 3})
        lp = LocatedPacket.of(pkt)
        assert lp.location == Location(2, 3)

    def test_normalized_syncs_fields(self):
        lp = LocatedPacket(Packet({SW: 1, PT: 1}), Location(9, 9)).normalized()
        assert lp.packet.switch == 9 and lp.packet.port == 9


class TestHistory:
    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            History(())

    def test_head_and_rest(self):
        a, b = Packet({"x": 1}), Packet({"x": 2})
        h = History((a, b))
        assert h.head == a and h.rest == (b,)

    def test_dup_prepends_head(self):
        a = Packet({"x": 1})
        h = History.of(a).dup()
        assert len(h) == 2 and h.head == a

    def test_with_head_replaces(self):
        a, b = Packet({"x": 1}), Packet({"x": 2})
        h = History.of(a).with_head(b)
        assert h.head == b and len(h) == 1

    def test_equality(self):
        a = Packet({"x": 1})
        assert History.of(a) == History.of(a)
        assert hash(History.of(a)) == hash(History.of(a))
