"""Differential testing: the FDD compiler against the denotational semantics.

A seeded random generator produces link-free NetKAT policies (filters,
modifications, union, sequence, star) over the seed apps' field
vocabulary.  Each policy is compiled three ways -- to an FDD with the
ordered-insert splice, to an FDD with the retained mask/union reference
strategy, and on to a prioritized flow table -- and all three are checked
against direct evaluation in :mod:`repro.netkat.semantics` on random
packets.  This is the harness that proves the perf-wave caching layers
invisible: any divergence between the fast paths and the ground-truth
semantics fails loudly with the generating seed in the test id.

A second generator produces random *Stateful* NetKAT programs (state
tests, state-updating links, union/sequence/star over them) and
cross-checks the symbolic all-states engine
(:mod:`repro.stateful.symbolic`) against the per-state ``extract`` /
``project`` reference walks on every state vector of a small box.
"""

import itertools
import random

import pytest

from repro.netkat.ast import (
    FALSE,
    Policy,
    Predicate,
    TRUE,
    assign,
    conj,
    disj,
    filter_,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.ast import link
from repro.netkat.fdd import FDDBuilder
from repro.netkat.flowtable import table_of_fdd
from repro.pipeline import CompileOptions
from repro.netkat.packet import Packet
from repro.netkat.semantics import eval_packet
from repro.stateful.ast import StateTest, link_update
from repro.stateful.events import extract
from repro.stateful.projection import project
from repro.stateful.symbolic import SymbolicProgram

# The field vocabulary shared by the seed applications (plus the two
# location fields, which exercise the head of the FDD field order).
FIELDS = ("sw", "pt", "ip_src", "ip_dst", "ident")
VALUES = (0, 1, 2)


def random_predicate(rng: random.Random, depth: int) -> Predicate:
    if depth <= 0 or rng.random() < 0.45:
        roll = rng.random()
        if roll < 0.06:
            return TRUE
        if roll < 0.12:
            return FALSE
        return field_test(rng.choice(FIELDS), rng.choice(VALUES))
    kind = rng.random()
    if kind < 0.4:
        return conj(
            random_predicate(rng, depth - 1), random_predicate(rng, depth - 1)
        )
    if kind < 0.8:
        return disj(
            random_predicate(rng, depth - 1), random_predicate(rng, depth - 1)
        )
    return neg(random_predicate(rng, depth - 1))


def random_policy(rng: random.Random, depth: int) -> Policy:
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return filter_(random_predicate(rng, 2))
        return assign(rng.choice(FIELDS), rng.choice(VALUES))
    kind = rng.random()
    if kind < 0.4:
        return union(random_policy(rng, depth - 1), random_policy(rng, depth - 1))
    if kind < 0.85:
        return seq(random_policy(rng, depth - 1), random_policy(rng, depth - 1))
    # Star sparingly: the finite field domain keeps both fixpoints small.
    return star(random_policy(rng, depth - 1))


def random_packet(rng: random.Random) -> Packet:
    fields = {}
    for field in FIELDS:
        # Occasionally leave a field unset: tests on absent fields must
        # fail identically in the FDD and the semantics.
        if rng.random() < 0.85:
            fields[field] = rng.choice(VALUES)
    return Packet(fields)


def assert_differential(policy: Policy, packets) -> None:
    """FDD eval, reference-FDD eval, and table apply all match semantics."""
    fast = FDDBuilder()
    ref = CompileOptions(ordered_insert=False).make_builder()
    d_fast = fast.of_policy(policy)
    d_ref = ref.of_policy(policy)
    # The two strategies must build the same canonical diagram.
    assert repr(d_fast) == repr(d_ref)
    table = table_of_fdd(fast, d_fast)
    for packet in packets:
        expected = eval_packet(policy, packet)
        assert fast.eval(d_fast, packet) == expected
        assert ref.eval(d_ref, packet) == expected
        assert table.apply(packet) == expected


@pytest.mark.parametrize("seed", range(40))
def test_random_policies_match_semantics(seed):
    """40 random policies x 5 random packets = 200 differential cases."""
    rng = random.Random(seed)
    policy = random_policy(rng, depth=4)
    packets = [random_packet(rng) for _ in range(5)]
    assert_differential(policy, packets)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(100, 125))
def test_deep_random_policies_match_semantics(seed):
    """Deeper policies (more star/seq nesting) and more packets per case."""
    rng = random.Random(seed)
    policy = random_policy(rng, depth=6)
    packets = [random_packet(rng) for _ in range(12)]
    assert_differential(policy, packets)


def test_known_out_of_order_splice():
    """A hand-picked case that forces _ite_test to reorder branches:
    the assignment decides a later test, then an earlier field is tested."""
    policy = seq(
        assign("ip_dst", 1),
        filter_(disj(field_test("sw", 1), field_test("ip_dst", 1))),
        filter_(neg(field_test("pt", 2))),
    )
    packets = [
        Packet({"sw": 1, "pt": 2, "ip_dst": 0}),
        Packet({"sw": 0, "pt": 1, "ip_dst": 2}),
        Packet({"sw": 1, "pt": 1}),
    ]
    assert_differential(policy, packets)


# ---------------------------------------------------------------------------
# Symbolic all-states extraction vs the per-state reference walks
# ---------------------------------------------------------------------------

# Random stateful programs range over a 2-component state vector with
# values 0..2, so the cross-check below can enumerate the whole box.
STATE_WIDTH = 2
STATE_VALUES = (0, 1, 2)
STATE_BOX = tuple(itertools.product(STATE_VALUES, repeat=STATE_WIDTH))


def random_stateful_predicate(rng: random.Random, depth: int) -> Predicate:
    if depth <= 0 or rng.random() < 0.4:
        roll = rng.random()
        if roll < 0.08:
            return TRUE
        if roll < 0.16:
            return FALSE
        if roll < 0.55:
            return StateTest(
                rng.randrange(STATE_WIDTH), rng.choice(STATE_VALUES)
            )
        return field_test(rng.choice(FIELDS), rng.choice(VALUES))
    kind = rng.random()
    if kind < 0.35:
        return conj(
            random_stateful_predicate(rng, depth - 1),
            random_stateful_predicate(rng, depth - 1),
        )
    if kind < 0.7:
        return disj(
            random_stateful_predicate(rng, depth - 1),
            random_stateful_predicate(rng, depth - 1),
        )
    return neg(random_stateful_predicate(rng, depth - 1))


def random_stateful_policy(rng: random.Random, depth: int) -> Policy:
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.35:
            return filter_(random_stateful_predicate(rng, 2))
        if roll < 0.55:
            return assign(rng.choice(FIELDS), rng.choice(VALUES))
        src = f"{rng.randint(1, 3)}:1"
        dst = f"{rng.randint(1, 3)}:1"
        if roll < 0.85:
            return link_update(
                src,
                dst,
                [(rng.randrange(STATE_WIDTH), rng.choice(STATE_VALUES))],
            )
        return link(src, dst)
    kind = rng.random()
    if kind < 0.4:
        return union(
            random_stateful_policy(rng, depth - 1),
            random_stateful_policy(rng, depth - 1),
        )
    if kind < 0.85:
        return seq(
            random_stateful_policy(rng, depth - 1),
            random_stateful_policy(rng, depth - 1),
        )
    return star(random_stateful_policy(rng, depth - 1))


def assert_symbolic_matches_per_state(program: Policy) -> None:
    """One symbolic pass == per-state extract/project, on every state."""
    symbolic = SymbolicProgram(program)
    for state in STATE_BOX:
        concrete = extract(program, state)
        assert symbolic.edges_at(state) == concrete.edges
        assert symbolic.formulas_at(state) == concrete.formulas
        assert symbolic.configuration_at(state) == project(program, state)


@pytest.mark.parametrize("seed", range(40))
def test_random_stateful_programs_match_per_state_walks(seed):
    """40 random stateful programs x 9 states = 360 differential cases."""
    rng = random.Random(1000 + seed)
    program = random_stateful_policy(rng, depth=4)
    assert_symbolic_matches_per_state(program)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(2000, 2030))
def test_deep_random_stateful_programs_match_per_state_walks(seed):
    """Deeper stateful programs (more star/seq nesting over state)."""
    rng = random.Random(seed)
    program = random_stateful_policy(rng, depth=6)
    assert_symbolic_matches_per_state(program)


def test_star_with_modification_cycle():
    """Star over a field toggle: fixpoints in FDD and semantics agree."""
    toggle = union(
        seq(filter_(field_test("ident", 0)), assign("ident", 1)),
        seq(filter_(field_test("ident", 1)), assign("ident", 0)),
    )
    policy = star(toggle)
    packets = [Packet({"ident": v, "sw": 0, "pt": 0}) for v in VALUES]
    assert_differential(policy, packets)


# ---------------------------------------------------------------------------
# Random delta chains: Pipeline.update vs cold rebuild at every step
# ---------------------------------------------------------------------------
#
# Starting from each seed application, a seeded generator produces a
# chain of random deltas (initial-state component writes and sub-policy
# replacements drawn from the program's own subterms).  At every step
# the incremental path (``Pipeline.update``) is compared against a cold
# pipeline built from the post-delta program: both must yield
# byte-identical guarded tables, or raise the same exception type (in
# which case the chain ends -- the post-delta program is simply not
# compilable, and both paths must agree on that too).

from repro.netkat import ast as _nk
from repro.pipeline import Delta, Pipeline

from seed_apps import APPS, guarded_bytes


def _subpolicies(p: Policy):
    out = [p]
    if isinstance(p, (_nk.Seq, _nk.Union)):
        out += _subpolicies(p.left) + _subpolicies(p.right)
    elif isinstance(p, _nk.Star):
        out += _subpolicies(p.operand)
    return out


def _state_values(p: Policy, initial):
    values = {0, 1}
    values.update(initial)
    for sub in _subpolicies(p):
        if isinstance(sub, _nk.Filter):
            stack = [sub.predicate]
            while stack:
                a = stack.pop()
                if isinstance(a, StateTest):
                    values.add(a.value)
                elif isinstance(a, (_nk.Conj, _nk.Disj)):
                    stack.extend((a.left, a.right))
                elif isinstance(a, _nk.Neg):
                    stack.append(a.operand)
    return sorted(values)


def _random_delta(rng: random.Random, program: Policy, initial) -> Delta:
    if rng.random() < 0.5:
        component = rng.randrange(len(initial))
        value = rng.choice(_state_values(program, initial))
        return Delta(set_state=((component, value),))
    filters = [s for s in _subpolicies(program) if isinstance(s, _nk.Filter)]
    old = rng.choice(filters)
    roll = rng.random()
    if roll < 0.4:
        new = _nk.Filter(TRUE)
    elif roll < 0.8:
        new = filter_(neg(old.predicate))
    else:
        new = _nk.Filter(StateTest(rng.randrange(len(initial)), rng.choice((0, 1))))
    return Delta(replace_policy=old, with_policy=new)


def _outcome(thunk):
    try:
        return ("ok", guarded_bytes(thunk()))
    except Exception as exc:  # noqa: BLE001 - the *type* is the oracle
        return ("error", type(exc))


@pytest.mark.parametrize(
    "app_index,seed", [(i, s) for i in range(len(APPS)) for s in range(2)],
    ids=[f"{APPS[i][0]}-{s}" for i in range(len(APPS)) for s in range(2)],
)
def test_random_delta_chains_match_cold_rebuild(app_index, seed):
    rng = random.Random(3000 + 17 * app_index + seed)
    _, make = APPS[app_index]
    app = make()
    program, topology, initial = app.program, app.topology, app.initial_state
    base = Pipeline(program, topology, initial)
    base.compiled
    for _ in range(3):
        delta = _random_delta(rng, program, initial)
        cold = _outcome(
            lambda: Pipeline(
                delta.apply_program(program),
                topology,
                delta.apply_initial_state(initial),
            ).compiled
        )
        incremental = _outcome(lambda: base.update(delta).compiled)
        assert incremental == cold, (
            f"update diverged from cold rebuild on delta {delta!r}"
        )
        if cold[0] == "error":
            break
        program = delta.apply_program(program)
        initial = delta.apply_initial_state(initial)
        base = base.update(delta)
