"""Tests for the verification extras: exhaustive interleaving
exploration (bounded Theorem 1) and semantic equivalence checks."""

import pytest

from repro.apps import bandwidth_cap_app, firewall_app, learning_switch_app
from repro.netkat.ast import (
    DROP,
    ID,
    assign,
    filter_,
    link,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.compiler import compile_policy
from repro.netkat.flowtable import FlowTable, Match, Rule
from repro.netkat.fdd import mod_of
from repro.runtime.model import RuntimePacket
from repro.runtime.semantics import Runtime
from repro.stateful.ast import link_update, state_eq
from repro.topology import firewall_topology
from repro.verify import (
    configurations_equivalent,
    explore_all_interleavings,
    policies_equivalent,
    predicates_equivalent,
    stateful_projections_equivalent,
    tables_equivalent,
)

H1, H4 = 1, 4


class TestExhaustiveExploration:
    def test_firewall_two_packet_race(self):
        app = firewall_app()
        result = explore_all_interleavings(
            app,
            [
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1}),
                ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 2}),
            ],
        )
        assert result.all_correct
        assert result.states_visited > 1
        assert result.truncated == 0

    def test_firewall_three_packet_race(self):
        app = firewall_app()
        result = explore_all_interleavings(
            app,
            [
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1}),
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
                ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 3}),
            ],
        )
        assert result.all_correct

    def test_learning_switch_race(self):
        app = learning_switch_app()
        result = explore_all_interleavings(
            app,
            [
                ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1}),
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
            ],
        )
        assert result.all_correct

    def test_bandwidth_cap_race(self):
        app = bandwidth_cap_app(1)
        result = explore_all_interleavings(
            app,
            [
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1}),
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
            ],
        )
        assert result.all_correct

    def test_with_controller_transitions(self):
        app = firewall_app()
        result = explore_all_interleavings(
            app,
            [("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1})],
            include_controller=True,
        )
        assert result.all_correct

    def test_depth_bound_reported(self):
        app = firewall_app()
        result = explore_all_interleavings(
            app,
            [("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1})],
            max_depth=1,
        )
        assert result.truncated > 0

    def test_buggy_runtime_caught(self):
        """A runtime that stamps packets with the *final* configuration
        before the event occurs violates 'not too early' -- the explorer
        must find it."""
        app = firewall_app()
        full_event_set = frozenset(app.nes.events)

        class PrematureStampRuntime(Runtime):
            def inject(self, host_name, fields):
                packet = super().inject(host_name, fields)
                # Override the tag to the final event-set: pretend the
                # update already happened everywhere.
                switch = self.state.switch(
                    self.topology.host(host_name).attachment.switch
                )
                queue = switch.in_queues[
                    self.topology.host(host_name).attachment.port
                ]
                stamped = RuntimePacket(
                    packet.packet, full_event_set, packet.digest, packet.trace_path
                )
                queue[-1] = stamped
                return stamped

        result = explore_all_interleavings(
            app,
            [("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1})],
            runtime_factory=lambda: PrematureStampRuntime(app.compiled, seed=0),
        )
        assert not result.all_correct
        assert result.violations


class TestPolicyEquivalence:
    def test_reflexivity(self):
        p = seq(filter_(field_test("a", 1)), assign("b", 2))
        assert policies_equivalent(p, p)

    def test_union_commutativity(self):
        p, q = assign("a", 1), assign("a", 2)
        assert policies_equivalent(union(p, q), union(q, p))

    def test_seq_distributivity(self):
        a, p, q = filter_(field_test("x", 1)), assign("a", 1), assign("a", 2)
        lhs = seq(a, union(p, q))
        rhs = union(seq(a, p), seq(a, q))
        assert policies_equivalent(lhs, rhs)

    def test_test_absorption(self):
        """a; a = a for tests."""
        a = filter_(field_test("x", 1))
        assert policies_equivalent(seq(a, a), a)

    def test_assign_then_test_same_value(self):
        """f<-1; f=1 = f<-1."""
        assert policies_equivalent(
            seq(assign("f", 1), filter_(field_test("f", 1))), assign("f", 1)
        )

    def test_inequivalent_detected(self):
        assert not policies_equivalent(assign("a", 1), assign("a", 2))

    def test_star_unrolling(self):
        p = seq(filter_(field_test("a", 0)), assign("a", 1))
        assert policies_equivalent(star(p), union(ID, p))  # p;p = drop here

    def test_predicate_de_morgan(self):
        a, b = field_test("x", 1), field_test("y", 2)
        assert predicates_equivalent(neg(a & b), neg(a) | neg(b))

    def test_predicate_excluded_middle_on_finite_domain(self):
        a = field_test("x", 1)
        assert predicates_equivalent(a | neg(a), filter_(ID.predicate).predicate)


class TestTableEquivalence:
    def test_priority_shuffle_equivalent(self):
        r1 = Rule(10, Match({"a": 1}), frozenset({mod_of({"out": 1})}))
        r2 = Rule(5, Match({"b": 2}), frozenset({mod_of({"out": 2})}))
        t1 = FlowTable([r1, r2])
        t2 = FlowTable([Rule(7, r1.match, r1.actions), Rule(3, r2.match, r2.actions)])
        assert tables_equivalent(t1, t2)

    def test_overlap_priority_matters(self):
        specific = Rule(10, Match({"a": 1, "b": 1}), frozenset({mod_of({"out": 1})}))
        general = Rule(5, Match({"a": 1}), frozenset({mod_of({"out": 2})}))
        t1 = FlowTable([specific, general])
        # swapped priorities: the general rule shadows the specific one
        t2 = FlowTable(
            [
                Rule(5, specific.match, specific.actions),
                Rule(10, general.match, general.actions),
            ]
        )
        assert not tables_equivalent(t1, t2)

    def test_redundant_rule_equivalent(self):
        r = Rule(10, Match({"a": 1}), frozenset({mod_of({"out": 1})}))
        shadowed = Rule(5, Match({"a": 1}), frozenset({mod_of({"out": 9})}))
        assert tables_equivalent(FlowTable([r]), FlowTable([r, shadowed]))

    def test_empty_tables_equivalent(self):
        assert tables_equivalent(FlowTable(), FlowTable())


class TestConfigurationEquivalence:
    def test_same_policy_compiles_equivalent(self):
        topo = firewall_topology()
        p = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        c1 = compile_policy(p, topo)
        # A syntactically different but equivalent formulation.
        p2 = seq(
            filter_(field_test("ip_dst", 4)),
            filter_(field_test("pt", 2)),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        c2 = compile_policy(p2, topo)
        assert configurations_equivalent(c1, c2)

    def test_different_policies_not_equivalent(self):
        topo = firewall_topology()
        p1 = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        p2 = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 1)),
            assign("pt", 1),
            link("4:1", "1:1"),
            assign("pt", 2),
        )
        assert not configurations_equivalent(
            compile_policy(p1, topo), compile_policy(p2, topo)
        )


class TestStatefulEquivalence:
    def test_projections_compared_per_state(self):
        p = union(
            seq(filter_(state_eq([0])), assign("a", 1)),
            seq(filter_(state_eq([1])), assign("a", 2)),
        )
        q = union(
            seq(filter_(state_eq([0])), assign("a", 1)),
            seq(filter_(state_eq([1])), assign("a", 3)),  # differs at [1]
        )
        differing = stateful_projections_equivalent(p, q, [(0,), (1,)])
        assert differing == [(1,)]

    def test_equivalent_programs(self):
        p = seq(filter_(state_eq([0])), assign("a", 1))
        q = seq(filter_(state_eq([0])), assign("a", 1), filter_(field_test("a", 1)))
        assert stateful_projections_equivalent(p, q, [(0,), (1,)]) == []
