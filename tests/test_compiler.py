"""Tests for the path compiler: alternations, knowledge propagation, and
end-to-end agreement between compiled configurations and the policy's
denotational semantics."""

import pytest

from repro.netkat.ast import (
    DROP,
    ID,
    assign,
    filter_,
    link,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.compiler import (
    Alternation,
    CompileError,
    Configuration,
    alternations,
    compile_policy,
    link_free,
    strip_dup,
)
from repro.netkat.packet import LocatedPacket, Location, Packet
from repro.netkat.semantics import eval_packet
from repro.topology import Topology, firewall_topology, star_topology


class TestLinkFree:
    def test_atoms(self):
        assert link_free(assign("a", 1))
        assert link_free(filter_(field_test("a", 1)))
        assert not link_free(link("1:1", "2:2"))

    def test_composites(self):
        assert not link_free(seq(assign("a", 1), link("1:1", "2:2")))
        assert link_free(star(assign("a", 1)))


class TestStripDup:
    def test_removes_dup(self):
        from repro.netkat.ast import Dup

        assert strip_dup(seq(Dup(), assign("a", 1))) == assign("a", 1)
        assert strip_dup(star(Dup())) == ID


class TestAlternations:
    def test_single_segment(self):
        alts = alternations(assign("a", 1))
        assert len(alts) == 1
        assert alts[0].links == ()

    def test_union_distributes(self):
        p = union(assign("a", 1), assign("a", 2))
        assert len(alternations(p)) == 2

    def test_seq_glues_segments(self):
        p = seq(filter_(field_test("a", 1)), link("1:1", "2:2"), assign("pt", 3))
        (alt,) = alternations(p)
        assert len(alt.links) == 1
        assert len(alt.segments) == 2

    def test_nested_union_of_links(self):
        p = seq(assign("pt", 1), union(link("1:1", "2:2"), link("3:1", "4:2")))
        alts = alternations(p)
        assert len(alts) == 2
        assert all(len(a.links) == 1 for a in alts)

    def test_two_links_in_sequence(self):
        p = seq(link("1:1", "2:2"), assign("pt", 1), link("2:1", "3:2"))
        (alt,) = alternations(p)
        assert len(alt.links) == 2
        assert len(alt.segments) == 3

    def test_star_over_links_rejected(self):
        with pytest.raises(CompileError):
            alternations(star(link("1:1", "2:2")))

    def test_alternation_shape_validated(self):
        with pytest.raises(ValueError):
            Alternation((ID,), (link("1:1", "2:2"),))


def _run_to_completion(config: Configuration, packet: Packet, max_hops: int = 32):
    """Follow the configuration's step relation to all terminal packets."""
    current = {LocatedPacket.of(packet)}
    delivered = set()
    for _ in range(max_hops):
        nxt = set()
        for lp in current:
            switch_outs = config.switch_step(lp)
            if not switch_outs:
                continue
            for out in switch_outs:
                moved = config.link_step(out)
                if moved:
                    nxt |= moved
                else:
                    delivered.add(out)
        if not nxt:
            return delivered
        current = nxt
    raise RuntimeError("packet did not terminate")


class TestCompileFirewallConfig:
    def topo(self):
        return firewall_topology()

    def policy(self):
        out_path = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        in_path = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 1)),
            assign("pt", 1),
            link("4:1", "1:1"),
            assign("pt", 2),
        )
        return union(out_path, in_path)

    def test_rules_land_on_both_switches(self):
        cfg = compile_policy(self.policy(), self.topo())
        assert len(cfg.table(1)) > 0 and len(cfg.table(4)) > 0

    def test_forward_path_delivers(self):
        cfg = compile_policy(self.policy(), self.topo())
        pkt = Packet({"sw": 1, "pt": 2, "ip_dst": 4})
        delivered = _run_to_completion(cfg, pkt)
        assert {lp.location for lp in delivered} == {Location(4, 2)}

    def test_reverse_path_delivers(self):
        cfg = compile_policy(self.policy(), self.topo())
        pkt = Packet({"sw": 4, "pt": 2, "ip_dst": 1})
        delivered = _run_to_completion(cfg, pkt)
        assert {lp.location for lp in delivered} == {Location(1, 2)}

    def test_unmatched_packet_dropped(self):
        cfg = compile_policy(self.policy(), self.topo())
        pkt = Packet({"sw": 1, "pt": 2, "ip_dst": 9})
        assert _run_to_completion(cfg, pkt) == set()

    def test_guard_restricts(self):
        cfg = compile_policy(
            self.policy(), self.topo(), guard=field_test("tag", 1)
        )
        allowed = Packet({"sw": 1, "pt": 2, "ip_dst": 4, "tag": 1})
        refused = Packet({"sw": 1, "pt": 2, "ip_dst": 4, "tag": 0})
        assert _run_to_completion(cfg, allowed)
        assert not _run_to_completion(cfg, refused)

    def test_end_to_end_agrees_with_denotation(self):
        """The compiled step relation's terminal packets equal the
        denotational outputs of the full path policy."""
        cfg = compile_policy(self.policy(), self.topo())
        pkt = Packet({"sw": 1, "pt": 2, "ip_dst": 4})
        expected = eval_packet(self.policy(), pkt)
        delivered = {lp.packet for lp in _run_to_completion(cfg, pkt)}
        assert delivered == expected


class TestKnowledgePropagation:
    def test_downstream_switch_rematches_constraints(self):
        """A field constraint established at hop 0 must be re-tested at
        hop 1 -- otherwise s4 would forward packets that took no valid
        path (the firewall would leak)."""
        topo = firewall_topology()
        p = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        cfg = compile_policy(p, topo)
        # A packet materializing at 4:1 with the wrong dst must be dropped.
        rogue = Packet({"sw": 4, "pt": 1, "ip_dst": 9})
        assert cfg.switch_step(LocatedPacket.of(rogue)) == frozenset()
        legit = Packet({"sw": 4, "pt": 1, "ip_dst": 4})
        assert len(cfg.switch_step(LocatedPacket.of(legit))) == 1

    def test_modified_field_not_rematched(self):
        """A field rewritten before the link is matched at its *new* value
        downstream."""
        topo = firewall_topology()
        p = seq(
            filter_(field_test("pt", 2) & field_test("vlan", 7)),
            assign("vlan", 1),
            assign("pt", 1),
            link("1:1", "4:1"),
            filter_(field_test("vlan", 1)),
            assign("pt", 2),
        )
        cfg = compile_policy(p, topo)
        pkt = Packet({"sw": 1, "pt": 2, "vlan": 7})
        delivered = _run_to_completion(cfg, pkt)
        assert {lp.location for lp in delivered} == {Location(4, 2)}
        assert all(lp.packet["vlan"] == 1 for lp in delivered)


class TestMulticast:
    def test_flooding_produces_two_copies(self):
        topo = star_topology()
        p = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 1)),
            union(
                seq(assign("pt", 1), link("4:1", "1:1")),
                seq(assign("pt", 3), link("4:3", "2:1")),
            ),
            assign("pt", 2),
        )
        cfg = compile_policy(p, topo)
        pkt = Packet({"sw": 4, "pt": 2, "ip_dst": 1})
        delivered = _run_to_completion(cfg, pkt)
        assert {lp.location for lp in delivered} == {Location(1, 2), Location(2, 2)}


class TestConfigurationObject:
    def test_missing_switch_gets_empty_table(self):
        topo = firewall_topology()
        cfg = Configuration({}, topo)
        assert len(cfg.table(1)) == 0
        assert cfg.rule_count() == 0

    def test_link_step_follows_topology(self):
        topo = firewall_topology()
        cfg = Configuration({}, topo)
        lp = LocatedPacket.of(Packet({"sw": 1, "pt": 1}))
        (out,) = cfg.link_step(lp)
        assert out.location == Location(4, 1)

    def test_step_is_union_of_switch_and_link(self):
        topo = firewall_topology()
        cfg = compile_policy(
            seq(
                filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
                assign("pt", 1),
                link("1:1", "4:1"),
                assign("pt", 2),
            ),
            topo,
        )
        lp = LocatedPacket.of(Packet({"sw": 1, "pt": 2, "ip_dst": 4}))
        assert cfg.step(lp) == cfg.switch_step(lp) | cfg.link_step(lp)

    def test_relates(self):
        topo = firewall_topology()
        cfg = Configuration({}, topo)
        src = LocatedPacket.of(Packet({"sw": 1, "pt": 1}))
        dst = LocatedPacket.of(Packet({"sw": 4, "pt": 1}))
        assert cfg.relates(src, dst)


class TestStarCompilation:
    def test_link_free_star_compiles(self):
        topo = firewall_topology()
        bump = union(
            seq(filter_(field_test("hops", 0)), assign("hops", 1)),
            seq(filter_(field_test("hops", 1)), assign("hops", 2)),
        )
        p = seq(
            filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
            star(bump),
            assign("pt", 1),
            link("1:1", "4:1"),
            assign("pt", 2),
        )
        cfg = compile_policy(p, topo)
        pkt = Packet({"sw": 1, "pt": 2, "ip_dst": 4, "hops": 0})
        delivered = _run_to_completion(cfg, pkt)
        assert {lp.packet["hops"] for lp in delivered} == {0, 1, 2}
