"""Property tests: the antichain-driven LUB-closure check agrees with the
retained quadratic reference on randomized event-set families.

``check_finite_complete`` only inspects family keys (hashable,
repr-sortable elements), so the strategies build families of integer
sets directly; a final test runs both checkers over the real
``family_of_ets`` output of seed applications.
"""

import random

import pytest

try:  # hypothesis is optional: the repo declares no third-party deps
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover
    st = None

from repro.apps import bandwidth_cap_app, firewall_app, ids_app
from repro.events.ets_to_nes import (
    check_finite_complete,
    check_finite_complete_naive,
    family_of_ets,
)


def normalized(violations):
    """Violations as an order-insensitive set of unordered pairs."""
    return {frozenset((a, b)) for a, b in violations}


def as_family(members):
    # Real families always contain the empty set (the initial state).
    return {m: None for m in list(members) + [frozenset()]}


if st is not None:

    @given(st.lists(st.frozensets(st.integers(0, 9), max_size=6), max_size=24))
    @settings(max_examples=200, deadline=None)
    def test_agrees_with_naive_on_random_families(members):
        family = as_family(members)
        assert normalized(check_finite_complete(family)) == normalized(
            check_finite_complete_naive(family)
        )


@pytest.mark.parametrize("seed", range(10))
def test_agrees_with_naive_on_seeded_random_families(seed):
    """Plain-random version of the agreement property (no hypothesis)."""
    rng = random.Random(seed)
    for _ in range(40):
        members = [
            frozenset(rng.sample(range(10), rng.randint(0, 6)))
            for _ in range(rng.randint(0, 24))
        ]
        family = as_family(members)
        assert normalized(check_finite_complete(family)) == normalized(
            check_finite_complete_naive(family)
        )


@pytest.mark.parametrize("seed", range(20))
def test_agrees_on_blocky_families(seed):
    """Families shaped like wide structures: independent blocks of subsets
    with random members deleted (deletions create closure violations)."""
    rng = random.Random(seed)
    members = []
    for block in range(rng.randint(1, 4)):
        base = range(block * 4, block * 4 + rng.randint(2, 4))
        subsets = [
            frozenset(e for e in base if rng.random() < 0.6) for _ in range(12)
        ]
        members.extend(s for s in subsets if rng.random() < 0.8)
    family = as_family(members)
    assert normalized(check_finite_complete(family)) == normalized(
        check_finite_complete_naive(family)
    )


def test_detects_the_figure_3c_shape():
    """{a} and {b} below the bound {a,b,c}, but {a,b} missing."""
    family = as_family(
        [
            frozenset({"a"}),
            frozenset({"b"}),
            frozenset({"a", "b", "c"}),
        ]
    )
    violations = normalized(check_finite_complete(family))
    assert violations == normalized(check_finite_complete_naive(family))
    assert frozenset((frozenset({"a"}), frozenset({"b"}))) in violations


def test_union_closed_family_has_no_violations():
    members = [
        frozenset({"a"}),
        frozenset({"b"}),
        frozenset({"a", "b"}),
        frozenset({"a", "b", "c"}),
    ]
    assert check_finite_complete(as_family(members)) == []


def test_incomparable_pair_without_upper_bound_is_fine():
    # {a} and {b} never share an upper bound: no closure obligation.
    assert check_finite_complete(as_family([frozenset("a"), frozenset("b")])) == []


@pytest.mark.parametrize(
    "make", [firewall_app, ids_app, lambda: bandwidth_cap_app(8)]
)
def test_agrees_on_seed_app_families(make):
    family = family_of_ets(make().ets)
    assert check_finite_complete(family) == []
    assert check_finite_complete_naive(family) == []
