"""End-to-end compiler property: for randomly generated path policies,
running the compiled per-switch tables hop by hop produces exactly the
packets the policy's denotational semantics produces."""

from hypothesis import given, settings, strategies as st

from repro.netkat.ast import (
    Policy,
    assign,
    at_location,
    conj,
    filter_,
    link,
    seq,
    test as field_test,
    union,
)
from repro.netkat.compiler import compile_policy
from repro.netkat.packet import LocatedPacket, Location, Packet
from repro.netkat.semantics import eval_packet
from repro.topology import star_topology

# Star topology plumbing (Figure 8(c)): hub s4 with spokes s1/s2/s3.
# Host ports are port 2 everywhere; hub-side ports: 1->1, 2->3, 3->4.
HUB_PORT_OF_SPOKE = {1: 1, 2: 3, 3: 4}

spokes = st.sampled_from([1, 2, 3])
dst_values = st.sampled_from([1, 2, 3, 4])
mark_values = st.sampled_from([0, 1, 2])


@st.composite
def outbound_branch(draw):
    """A hub-to-spoke path: H4's traffic to some internal host."""
    spoke = draw(spokes)
    dst = draw(dst_values)
    hub_port = HUB_PORT_OF_SPOKE[spoke]
    tests = [field_test("pt", 2), field_test("ip_dst", dst)]
    if draw(st.booleans()):
        tests.append(field_test("mark", draw(mark_values)))
    body = [filter_(conj(*tests))]
    if draw(st.booleans()):
        body.append(assign("mark", draw(mark_values)))
    body.append(assign("pt", hub_port))
    body.append(link(Location(4, hub_port), Location(spoke, 1)))
    if draw(st.booleans()):
        body.append(filter_(field_test("ip_dst", dst)))
    body.append(assign("pt", 2))
    return seq(*body)


@st.composite
def inbound_branch(draw):
    """A spoke-to-hub path: an internal host's traffic toward H4."""
    spoke = draw(spokes)
    hub_port = HUB_PORT_OF_SPOKE[spoke]
    tests = [field_test("pt", 2), field_test("sw", spoke)]
    if draw(st.booleans()):
        tests.append(field_test("ip_dst", 4))
    body = [filter_(conj(*tests)), assign("pt", 1)]
    body.append(link(Location(spoke, 1), Location(4, hub_port)))
    body.append(assign("pt", 2))
    return seq(*body)


@st.composite
def path_policies(draw):
    n = draw(st.integers(1, 4))
    branches = [
        draw(st.one_of(outbound_branch(), inbound_branch())) for _ in range(n)
    ]
    return union(*branches)


@st.composite
def ingress_packets(draw):
    sw = draw(st.sampled_from([1, 2, 3, 4]))
    return Packet(
        {
            "sw": sw,
            "pt": 2,
            "ip_dst": draw(dst_values),
            "mark": draw(mark_values),
        }
    )


def run_compiled(config, packet: Packet, max_hops: int = 16):
    """Follow the configuration's step relation to terminal packets."""
    current = {LocatedPacket.of(packet)}
    delivered = set()
    for _ in range(max_hops):
        nxt = set()
        for lp in current:
            outs = config.switch_step(lp)
            for out in outs:
                moved = config.link_step(out)
                if moved:
                    nxt |= moved
                else:
                    delivered.add(out.packet)
        if not nxt:
            return frozenset(delivered)
        current = nxt
    raise AssertionError("packet did not terminate")


class TestCompilerAgainstDenotation:
    @given(path_policies(), ingress_packets())
    @settings(max_examples=200, deadline=None)
    def test_compiled_equals_denotational(self, policy, packet):
        topology = star_topology()
        config = compile_policy(policy, topology)
        expected = eval_packet(policy, packet)
        got = run_compiled(config, packet)
        assert got == expected, (
            f"\npolicy: {policy!r}\npacket: {packet!r}\n"
            f"expected {sorted(map(repr, expected))}\n"
            f"got      {sorted(map(repr, got))}"
        )
