"""Tests for the command-line interface."""

import pytest

from repro.cli import main

FIREWALL_SOURCE = """
pt=2 & ip_dst=4; pt<-1;
  ( state(0)=0; (1:1)->(4:1)<state(0)<-1>
  + !state(0)=0; (1:1)->(4:1) );
pt<-2
+ pt=2 & ip_dst=1; state(0)=1; pt<-1; (4:1)->(1:1); pt<-2
"""

# Two conflicting events at different switches: not locally determined.
NONLOCAL_SOURCE = """
  state(0)=0; (4:1)->(1:1)<state(0)<-1>
+ state(0)=0; (4:3)->(2:1)<state(0)<-2>
"""


@pytest.fixture()
def firewall_file(tmp_path):
    path = tmp_path / "firewall.snk"
    path.write_text(FIREWALL_SOURCE)
    return str(path)


@pytest.fixture()
def nonlocal_file(tmp_path):
    path = tmp_path / "nonlocal.snk"
    path.write_text(NONLOCAL_SOURCE)
    return str(path)


class TestShowETS:
    def test_prints_states_and_edges(self, firewall_file, capsys):
        assert main(["show-ets", firewall_file]) == 0
        out = capsys.readouterr().out
        assert "[0]" in out and "[1]" in out
        assert "2 states, 1 edges" in out

    def test_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["show-ets", str(tmp_path / "nope.snk")])

    def test_parse_error_reported(self, tmp_path):
        bad = tmp_path / "bad.snk"
        bad.write_text("pt=2 &&& oops")
        with pytest.raises(SystemExit):
            main(["show-ets", str(bad)])


class TestCheck:
    def test_valid_program_passes(self, firewall_file, capsys):
        assert main(["check", firewall_file, "--topology", "firewall"]) == 0
        out = capsys.readouterr().out
        assert "implementable" in out

    def test_nonlocal_program_fails(self, nonlocal_file, capsys):
        assert main(["check", nonlocal_file, "--topology", "star"]) == 1
        out = capsys.readouterr().out
        assert "not locally determined" in out


class TestCompile:
    def test_prints_tables_and_counts(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall"]) == 0
        out = capsys.readouterr().out
        assert "switch 1" in out and "switch 4" in out
        assert "total:" in out

    def test_nonlocal_refused(self, nonlocal_file, capsys):
        assert main(["compile", nonlocal_file, "--topology", "star"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_program_matching_on_tag_field_fails_cleanly(self, tmp_path, capsys):
        # The parser accepts "tag" as a field; guarding would overwrite
        # it, so both merge paths refuse with FAIL, not a traceback.
        clash = tmp_path / "clash.snk"
        clash.write_text("tag=1; pt<-2\n")
        assert main(["compile", str(clash), "--topology", "firewall"]) == 1
        assert "collides" in capsys.readouterr().out
        assert main(["optimize", str(clash), "--topology", "firewall"]) == 1
        assert "collides" in capsys.readouterr().out

    def test_thread_backend_matches_serial(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall"]) == 0
        serial = capsys.readouterr().out
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--backend", "thread"]) == 0
        assert capsys.readouterr().out == serial

    def test_no_knowledge_cache_matches_default(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall"]) == 0
        default = capsys.readouterr().out
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--no-knowledge-cache"]) == 0
        assert capsys.readouterr().out == default

    def test_no_symbolic_extract_matches_default(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall"]) == 0
        default = capsys.readouterr().out
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--no-symbolic-extract"]) == 0
        assert capsys.readouterr().out == default

    def test_report_prints_stage_timings(self, firewall_file, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "stage ets" in out and "stage nes" in out
        assert "stage compile" in out
        # The default symbolic path reports its substage split.
        assert "ets.symbolic" in out and "ets.instantiate" in out

    def test_report_without_symbolic_extract_has_no_split(
        self, firewall_file, capsys
    ):
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--no-symbolic-extract", "--report"]) == 0
        out = capsys.readouterr().out
        assert "stage ets" in out
        assert "ets.symbolic" not in out

    def test_cache_dir_warm_hit(self, firewall_file, tmp_path, capsys):
        cache = str(tmp_path / "artifacts")
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--cache-dir", cache, "--report"]) == 0
        cold = capsys.readouterr().out
        assert "artifact_cache=miss" in cold
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--cache-dir", cache, "--report"]) == 0
        warm = capsys.readouterr().out
        assert "artifact_cache=hit" in warm
        assert "stage ets" not in warm  # warm hit skips the front stages
        # The tables themselves are identical either way.
        assert cold.split("pipeline")[0] == warm.split("pipeline")[0]

    def test_report_prints_health(self, firewall_file, tmp_path, capsys):
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--report"]) == 0
        assert "health ok" in capsys.readouterr().out
        # A corrupt cache entry surfaces as a counted (never silent)
        # recovery in the health section.
        import warnings as warnings_module

        from repro.pipeline import ArtifactCache

        cache = tmp_path / "artifacts"
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--cache-dir", str(cache), "--report"]) == 0
        capsys.readouterr()
        entry = next(cache.glob("*.pkl"))
        entry.write_bytes(b"garbage")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore")
            assert main(["compile", firewall_file, "--topology", "firewall",
                         "--cache-dir", str(cache), "--report"]) == 0
        out = capsys.readouterr().out
        assert "health cache.load_corrupt" in out
        assert "health cache.quarantined" in out
        assert "health ok" not in out

    def test_strict_cache_fails_cleanly_on_tamper(
        self, firewall_file, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_HMAC_KEY", "cli-test-key")
        cache = tmp_path / "artifacts"
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        entry = next(cache.glob("*.pkl"))
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0x01
        entry.write_bytes(bytes(blob))
        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--cache-dir", str(cache), "--strict-cache"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_report_json_prints_one_json_object(self, firewall_file, capsys):
        """``--report --json``: the whole stdout is exactly the
        machine-readable report (no tables mixed in), with the pinned
        PipelineReport.to_dict key set."""
        import json

        assert main(["compile", firewall_file, "--topology", "firewall",
                     "--report", "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out)
        assert sorted(report) == [
            "artifact_cache",
            "backend",
            "health",
            "stages",
            "stats",
            "substages",
            "total_seconds",
        ]
        assert set(report["stages"]) == {"ets", "nes", "compile"}

    def test_json_requires_report(self, firewall_file):
        with pytest.raises(SystemExit):
            main(["compile", firewall_file, "--topology", "firewall",
                  "--json"])


class TestOptimize:
    def test_reports_savings(self, firewall_file, capsys):
        assert main(["optimize", firewall_file, "--topology", "firewall"]) == 0
        out = capsys.readouterr().out
        assert "saved" in out


class TestApps:
    def test_lists_case_studies(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "stateful-firewall" in out
        assert "bandwidth-cap-10" in out


class TestArgumentHandling:
    def test_ring_topology_spec(self, firewall_file):
        # ring topology has no 4:1 port structure for this program, but
        # parsing the spec itself must work (compile may place 0 rules).
        assert main(["compile", firewall_file, "--topology", "ring:2"]) == 0

    def test_unknown_topology(self, firewall_file):
        with pytest.raises(SystemExit):
            main(["compile", firewall_file, "--topology", "mesh"])

    def test_bad_initial_vector(self, firewall_file):
        with pytest.raises(SystemExit):
            main(["show-ets", firewall_file, "--initial", "a,b"])

    def test_multi_component_initial(self, tmp_path, capsys):
        src = tmp_path / "two.snk"
        src.write_text("state(0)=0 & state(1)=0; (1:1)->(4:1)<state(1)<-1>")
        assert main(["show-ets", str(src), "--initial", "0,0"]) == 0
        assert "[0, 1]" in capsys.readouterr().out


class TestUpdate:
    def test_noop_update_prints_tables_and_full_reuse(self, firewall_file, capsys):
        assert main(["update", firewall_file, "--topology", "firewall"]) == 0
        out = capsys.readouterr().out
        assert "switch 1" in out and "switch 4" in out
        assert "reuse: 100% of configurations" in out

    def test_set_state_delta(self, firewall_file, capsys):
        assert main([
            "update", firewall_file, "--topology", "firewall",
            "--set-state", "0=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "reuse:" in out

    def test_new_program_replacement(self, firewall_file, tmp_path, capsys):
        changed = tmp_path / "changed.snk"
        changed.write_text(FIREWALL_SOURCE.replace("ip_dst=1", "ip_dst=2"))
        assert main([
            "update", firewall_file, "--topology", "firewall",
            "--new-program", str(changed),
        ]) == 0
        out = capsys.readouterr().out
        assert "ip_dst=2" in out
        assert "recompiled" in out

    def test_report_flag_shows_update_stats(self, firewall_file, capsys):
        assert main([
            "update", firewall_file, "--topology", "firewall", "--report",
        ]) == 0
        out = capsys.readouterr().out
        assert "update.delta" in out
        assert "update.reuse_percent" in out

    def test_malformed_set_state_is_rejected(self, firewall_file):
        with pytest.raises(SystemExit):
            main(["update", firewall_file, "--topology", "firewall",
                  "--set-state", "zero=one"])

    def test_out_of_range_component_fails_cleanly(self, firewall_file, capsys):
        assert main([
            "update", firewall_file, "--topology", "firewall",
            "--set-state", "7=1",
        ]) == 1
        assert "FAIL:" in capsys.readouterr().out
