"""The converse of Theorem 1: executions that ignore the event-driven
machinery produce traces the Definition 6 checker *rejects*.

We model a worst-case uncoordinated runtime inside the untimed
operational semantics: switches forward with whatever configuration the
controller last installed (initially C0, never updated within the test
window), with no tags or digests.  The firewall workload then yields a
"update happened too late" trace, and a prematurely-updated variant
yields "too early" -- demonstrating the checker separates correct from
incorrect implementations in both directions.
"""

import pytest

from repro.apps import bandwidth_cap_app, firewall_app
from repro.consistency.checker import NESChecker
from repro.netkat.packet import Location
from repro.runtime.semantics import Runtime

H1, H4 = 1, 4


class StaleConfigRuntime(Runtime):
    """Forwards every packet with a fixed installed configuration,
    regardless of tags -- an uncoordinated switch before the push."""

    def __init__(self, compiled, installed_event_set=frozenset(), seed=0):
        super().__init__(compiled, seed=seed)
        self._installed = frozenset(installed_event_set)

    def _step_switch(self, switch_id, port):
        switch = self.state.switch(switch_id)
        packet = switch.in_queues[port].popleft()
        location = Location(switch_id, port)
        # Event detection still happens (the paper's uncoordinated
        # controller is notified), but forwarding uses the stale table.
        structure = self.compiled.nes.structure
        known = frozenset(switch.known_events) | packet.digest
        for event in sorted(self.compiled.nes.events, key=repr):
            if (
                event not in known
                and event.matches_packet(packet.packet, location)
                and structure.enables(known, event)
                and structure.con(known | {event})
            ):
                switch.known_events.add(event)
                break
        config = self.compiled.config_for_event_set(self._installed)
        outputs = config.table(switch_id).apply(packet.packet.at(location))
        if not outputs:
            self.recorder.finish(packet.trace_path)
            self.state.dropped.append((location, packet))
            return
        for out_packet in sorted(outputs, key=repr):
            egress = Location(switch_id, out_packet["pt"])
            index = self.recorder.record(out_packet, egress)
            child = packet.with_packet(out_packet.at(egress)).extend_path(index)
            switch.enqueue_out(egress.port, child)


class TestTooLateViolation:
    def test_stale_firewall_trace_rejected(self):
        """H1 contacts H4 (the event fires at s4), then H4's reply is
        dropped because s4 still runs C0: 'too late'."""
        app = firewall_app()
        rt = StaleConfigRuntime(app.compiled)
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1})
        rt.run_until_quiescent(policy="fifo")
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4, "ident": 2})
        rt.run_until_quiescent(policy="fifo")
        report = NESChecker(app.nes, app.topology).check(rt.network_trace())
        assert not report
        assert "too late" in report.reason or "no configuration" in report.reason

    def test_stale_cap_exceeds_budget(self):
        """With C0 pinned, the cap never closes: replies keep flowing
        past the budget, and the trace is incorrect."""
        cap = 2
        app = bandwidth_cap_app(cap)
        rt = StaleConfigRuntime(app.compiled)
        for i in range(cap + 2):
            rt.inject("H1", {"ip_dst": H4, "ip_src": H1, "ident": i})
            rt.run_until_quiescent(policy="fifo")
            rt.inject("H4", {"ip_dst": H1, "ip_src": H4, "ident": 100 + i})
            rt.run_until_quiescent(policy="fifo")
        # All cap+2 replies delivered: more than the cap allows.
        deliveries_to_h1 = sum(
            1
            for loc, _ in rt.state.delivered
            if app.topology.host_at(loc).name == "H1"
        )
        assert deliveries_to_h1 == cap + 2
        report = NESChecker(app.nes, app.topology).check(rt.network_trace())
        assert not report


class TestTooEarlyViolation:
    def test_premature_firewall_trace_rejected(self):
        """A runtime running Cf from the start delivers H4's packet
        before any event: 'too early'."""
        app = firewall_app()
        final = frozenset(app.nes.events)
        rt = StaleConfigRuntime(app.compiled, installed_event_set=final)
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1})
        rt.run_until_quiescent(policy="fifo")
        report = NESChecker(app.nes, app.topology).check(rt.network_trace())
        assert not report


class TestCorrectRuntimeContrast:
    def test_same_workloads_pass_with_real_runtime(self):
        """Sanity: the identical workloads are correct under the real
        tag-based runtime."""
        app = firewall_app()
        rt = app.runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1})
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4, "ident": 2})
        rt.run_until_quiescent()
        report = NESChecker(app.nes, app.topology).check(rt.network_trace())
        assert report, report.reason
