"""Tests for the two-phase per-packet consistent update baseline."""

import pytest

from repro.apps import bandwidth_cap_app, firewall_app
from repro.baselines import TwoPhaseLogic, VERSION_FIELD
from repro.network import (
    SimNetwork,
    install_ping_responders,
    ping_outcomes,
    send_ping,
)

H1, H4 = 1, 4


def firewall_run(flip_delay=0.5, n_pings=6, interval=0.3, seed=7):
    app = firewall_app()
    logic = TwoPhaseLogic(app.compiled, flip_delay=flip_delay)
    net = SimNetwork(app.topology, logic, seed=seed)
    install_ping_responders(net)
    pings = []
    for i in range(n_pings):
        at = 0.5 + i * interval
        send_ping(net, "H1", "H4", i + 1, at)
        pings.append(("H1", "H4", i + 1, at))
    net.run(until=15.0)
    return net, logic, ping_outcomes(net, pings)


class TestVersionStamping:
    def test_ingress_stamps_current_version(self):
        net, logic, _ = firewall_run()
        stamped = [
            d.frame.packet.get(VERSION_FIELD)
            for d in net.deliveries
            if d.frame.flow[:1] == ("ping",)
        ]
        assert stamped and all(v is not None for v in stamped)

    def test_per_packet_consistency_holds(self):
        """Every delivered packet carries a single version end to end --
        the guarantee two-phase updates do provide."""
        net, logic, _ = firewall_run()
        for delivery in net.deliveries:
            version = delivery.frame.packet.get(VERSION_FIELD)
            assert version in (0, 1)

    def test_flip_advances_stamping(self):
        net, logic, _ = firewall_run()
        assert logic.flips_completed_at is not None
        assert all(v == 1 for v in logic.stamp_version.values())


class TestInsufficiency:
    def test_replies_dropped_despite_consistency(self):
        """The section 1 claim: per-packet consistency alone leaves the
        firewall broken during the flip window."""
        _, _, outcomes = firewall_run(flip_delay=0.8)
        dropped = [o for o in outcomes if not o.succeeded]
        assert dropped, "expected early replies to be dropped"
        assert outcomes[-1].succeeded  # converges after the flip

    def test_longer_flip_delay_drops_more(self):
        _, _, fast = firewall_run(flip_delay=0.2)
        _, _, slow = firewall_run(flip_delay=1.5)
        assert sum(not o.succeeded for o in fast) <= sum(
            not o.succeeded for o in slow
        )

    def test_cap_overshoots_under_two_phase(self):
        """Version flips lag the count, so extra replies sneak through."""
        cap = 3
        app = bandwidth_cap_app(cap)
        logic = TwoPhaseLogic(app.compiled, flip_delay=1.5)
        net = SimNetwork(app.topology, logic, seed=3)
        install_ping_responders(net)
        pings = []
        for i in range(cap + 6):
            at = 0.5 + i * 0.3
            send_ping(net, "H1", "H4", i + 1, at)
            pings.append(("H1", "H4", i + 1, at))
        net.run(until=20.0)
        successes = sum(1 for o in ping_outcomes(net, pings) if o.succeeded)
        assert successes > cap


class TestControllerStateMachine:
    def test_chain_advances_monotonically(self):
        cap = 2
        app = bandwidth_cap_app(cap)
        logic = TwoPhaseLogic(app.compiled, flip_delay=0.1)
        net = SimNetwork(app.topology, logic, seed=1)
        install_ping_responders(net)
        for i in range(cap + 3):
            send_ping(net, "H1", "H4", i + 1, 0.5 + i * 0.4)
        net.run(until=15.0)
        # The controller saw exactly cap+1 chain events (0..cap).
        assert len(logic.controller_events) == cap + 1
        # Stamping never moves backward.
        assert all(
            v == max(logic.stamp_version.values())
            for v in logic.stamp_version.values()
        )
