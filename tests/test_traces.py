"""Tests for network traces, happens-before, and Traces(C) membership."""

import pytest

from repro.consistency.traces import (
    HappensBefore,
    NetworkTrace,
    TraceValidationError,
    packet_trace_follows,
    packet_trace_in_traces,
)
from repro.netkat.ast import assign, filter_, link, seq, test as field_test, union
from repro.netkat.compiler import compile_policy
from repro.netkat.packet import LocatedPacket, Location, Packet
from repro.topology import firewall_topology


def lp(sw, pt, **fields):
    pkt = Packet({"sw": sw, "pt": pt, **fields})
    return LocatedPacket.of(pkt)


class TestNetworkTraceValidation:
    def test_simple_valid_trace(self):
        trace = NetworkTrace(
            (lp(1, 2), lp(1, 1), lp(4, 1)), frozenset({(0, 1, 2)})
        )
        assert len(trace) == 3

    def test_uncovered_position_rejected(self):
        with pytest.raises(TraceValidationError):
            NetworkTrace((lp(1, 2), lp(1, 1)), frozenset({(0,)}))

    def test_non_increasing_indices_rejected(self):
        with pytest.raises(TraceValidationError):
            NetworkTrace((lp(1, 2), lp(1, 1)), frozenset({(1, 0)}))

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceValidationError):
            NetworkTrace((lp(1, 2),), frozenset({(0, 5)}))

    def test_empty_sequence_rejected(self):
        with pytest.raises(TraceValidationError):
            NetworkTrace((lp(1, 2),), frozenset({(0,), ()}))

    def test_two_parents_rejected(self):
        # positions 0 and 1 both claim position 2 as successor
        with pytest.raises(TraceValidationError):
            NetworkTrace(
                (lp(1, 2), lp(1, 3), lp(1, 1)),
                frozenset({(0, 2), (1, 2)}),
            )

    def test_multicast_tree_allowed(self):
        # one root forking into two branches (shared prefix)
        trace = NetworkTrace(
            (lp(4, 2), lp(4, 1), lp(4, 3)),
            frozenset({(0, 1), (0, 2)}),
        )
        assert trace.traces_through(0) == frozenset({(0, 1), (0, 2)})

    def test_root_cannot_be_child(self):
        with pytest.raises(TraceValidationError):
            NetworkTrace(
                (lp(1, 2), lp(1, 1)),
                frozenset({(0, 1), (1,)}),
            )

    def test_projections(self):
        trace = NetworkTrace((lp(1, 2), lp(1, 1)), frozenset({(0, 1)}))
        assert trace.packet_trace((0, 1)) == (trace.packets[0], trace.packets[1])


class TestHappensBefore:
    def test_same_switch_order(self):
        trace = NetworkTrace(
            (lp(1, 2, ident=1), lp(1, 2, ident=2)),
            frozenset({(0,), (1,)}),
        )
        hb = trace.happens_before()
        assert hb.before(0, 1)
        assert not hb.before(1, 0)

    def test_same_packet_order_across_switches(self):
        trace = NetworkTrace(
            (lp(1, 2), lp(4, 1)), frozenset({(0, 1)})
        )
        hb = trace.happens_before()
        assert hb.before(0, 1)

    def test_unrelated_positions_incomparable(self):
        trace = NetworkTrace(
            (lp(1, 2, ident=1), lp(4, 2, ident=2)),
            frozenset({(0,), (1,)}),
        )
        hb = trace.happens_before()
        assert not hb.before(0, 1) and not hb.before(1, 0)

    def test_transitivity(self):
        # pkt A: 1:2 -> 4:1 ; pkt B enters at s4 afterwards
        trace = NetworkTrace(
            (lp(1, 2, ident=1), lp(4, 1, ident=1), lp(4, 2, ident=2)),
            frozenset({(0, 1), (2,)}),
        )
        hb = trace.happens_before()
        assert hb.before(0, 1)
        assert hb.before(1, 2)  # same switch order at s4
        assert hb.before(0, 2)  # transitive closure

    def test_irreflexive(self):
        trace = NetworkTrace((lp(1, 2),), frozenset({(0,)}))
        assert not trace.happens_before().before(0, 0)

    def test_all_before_and_all_after(self):
        trace = NetworkTrace(
            (lp(1, 2, ident=1), lp(1, 2, ident=2), lp(1, 2, ident=3)),
            frozenset({(0,), (1,), (2,)}),
        )
        hb = trace.happens_before()
        assert hb.all_before([0, 1], 2)
        assert hb.all_after(0, [1, 2])


FIREWALL_POLICY = union(
    seq(
        filter_(field_test("pt", 2) & field_test("ip_dst", 4)),
        assign("pt", 1),
        link("1:1", "4:1"),
        assign("pt", 2),
    ),
)


class TestTracesMembership:
    def config(self):
        return compile_policy(FIREWALL_POLICY, firewall_topology())

    def full_trace(self):
        return (
            lp(1, 2, ip_dst=4),
            lp(1, 1, ip_dst=4),
            lp(4, 1, ip_dst=4),
            lp(4, 2, ip_dst=4),
        )

    def test_complete_delivery_accepted(self):
        assert packet_trace_in_traces(self.config(), self.full_trace())

    def test_must_start_at_host(self):
        assert not packet_trace_in_traces(self.config(), self.full_trace()[1:])

    def test_prefix_rejected_as_incomplete(self):
        """A packet abandoned mid-path is in no configuration's traces."""
        assert not packet_trace_in_traces(self.config(), self.full_trace()[:2])

    def test_prefix_accepted_without_completeness(self):
        assert packet_trace_in_traces(
            self.config(), self.full_trace()[:2], require_complete=False
        )

    def test_dropped_at_ingress_when_config_drops(self):
        # ip_dst=9 has no rule: the one-position trace is complete.
        trace = (lp(1, 2, ip_dst=9),)
        assert packet_trace_in_traces(self.config(), trace)

    def test_dropped_at_ingress_when_config_forwards_rejected(self):
        # ip_dst=4 *should* be forwarded; a drop is incorrect.
        trace = (lp(1, 2, ip_dst=4),)
        assert not packet_trace_in_traces(self.config(), trace)

    def test_wrong_step_rejected(self):
        bad = (
            lp(1, 2, ip_dst=4),
            lp(4, 1, ip_dst=4),  # skipped the 1:1 egress step
        )
        assert not packet_trace_follows(self.config(), bad)

    def test_empty_trace_rejected(self):
        assert not packet_trace_in_traces(self.config(), ())
