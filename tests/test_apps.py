"""Per-application checks: each case study's ETS and NES must have
exactly the shape stated in section 5.1 of the paper."""

import pytest

from repro.apps import (
    HOSTS,
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
    ring_app,
)
from repro.events.locality import is_locally_determined
from repro.formula import EQ, Formula, Literal
from repro.netkat.packet import Location


def guard(field, value):
    return Formula((Literal(field, EQ, value),))


class TestFirewallShapes:
    """The NES has the form {E0=∅ -> E1={(dst=H4, 4:1)}}."""

    def test_two_states(self):
        app = firewall_app()
        assert app.ets.states() == ((0,), (1,))

    def test_single_event(self):
        app = firewall_app()
        (event,) = app.nes.events
        assert event.location == Location(4, 1)
        assert event.guard == guard("ip_dst", HOSTS["H4"])

    def test_event_sets(self):
        app = firewall_app()
        assert app.nes.event_sets() == {
            frozenset(),
            frozenset(app.nes.events),
        }

    def test_locally_determined(self):
        assert is_locally_determined(firewall_app().nes)


class TestLearningSwitchShapes:
    """The NES has the form {E0=∅ -> E1={(dst=H4, 4:1)}}."""

    def test_shape(self):
        app = learning_switch_app()
        assert len(app.compiled.states) == 2
        (event,) = app.nes.events
        assert event.location == Location(4, 1)
        assert event.guard == guard("ip_dst", HOSTS["H4"])

    def test_locally_determined(self):
        assert is_locally_determined(learning_switch_app().nes)


class TestAuthenticationShapes:
    """NES: {∅ -> {(dst=H1,1:1)} -> {(dst=H1,1:1),(dst=H2,2:1)}}."""

    def test_three_states_two_events(self):
        app = authentication_app()
        assert len(app.compiled.states) == 3
        assert len(app.nes.events) == 2

    def test_event_locations(self):
        app = authentication_app()
        locations = {e.location for e in app.nes.events}
        assert locations == {Location(1, 1), Location(2, 1)}

    def test_chain_enabling(self):
        app = authentication_app()
        e1 = next(e for e in app.nes.events if e.location == Location(1, 1))
        e2 = next(e for e in app.nes.events if e.location == Location(2, 1))
        assert app.nes.enables(frozenset(), e1)
        assert not app.nes.enables(frozenset(), e2)
        assert app.nes.enables(frozenset({e1}), e2)

    def test_event_sets_form_chain(self):
        app = authentication_app()
        sizes = sorted(len(s) for s in app.nes.event_sets())
        assert sizes == [0, 1, 2]

    def test_locally_determined(self):
        assert is_locally_determined(authentication_app().nes)


class TestBandwidthCapShapes:
    """NES: a chain of renamed copies (dst=H4,4:1)_0 ... (dst=H4,4:1)_n."""

    @pytest.mark.parametrize("cap", [1, 3, 10])
    def test_state_count(self, cap):
        app = bandwidth_cap_app(cap)
        assert len(app.compiled.states) == cap + 2

    def test_renamed_event_copies(self):
        cap = 4
        app = bandwidth_cap_app(cap)
        assert len(app.nes.events) == cap + 1
        eids = sorted(e.eid for e in app.nes.events)
        assert eids == list(range(cap + 1))
        bases = {e.base() for e in app.nes.events}
        assert len(bases) == 1  # all copies of the same syntactic event

    def test_event_sets_form_chain(self):
        cap = 3
        app = bandwidth_cap_app(cap)
        sizes = sorted(len(s) for s in app.nes.event_sets())
        assert sizes == list(range(cap + 2))

    def test_copies_enabled_in_order(self):
        app = bandwidth_cap_app(2)
        by_eid = {e.eid: e for e in app.nes.events}
        assert app.nes.enables(frozenset(), by_eid[0])
        assert not app.nes.enables(frozenset(), by_eid[1])
        assert app.nes.enables(frozenset({by_eid[0]}), by_eid[1])

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            bandwidth_cap_app(0)

    def test_locally_determined(self):
        assert is_locally_determined(bandwidth_cap_app(5).nes)


class TestIDSShapes:
    """NES: {∅ -> {(dst=H1,1:1)} -> {(dst=H1,1:1),(dst=H2,2:1)}}."""

    def test_shape(self):
        app = ids_app()
        assert len(app.compiled.states) == 3
        assert {e.location for e in app.nes.events} == {
            Location(1, 1),
            Location(2, 1),
        }

    def test_locally_determined(self):
        assert is_locally_determined(ids_app().nes)


class TestRingShapes:
    @pytest.mark.parametrize("diameter", [1, 2, 4])
    def test_two_states_one_event(self, diameter):
        app = ring_app(diameter)
        assert len(app.compiled.states) == 2
        (event,) = app.nes.events
        assert event.location == Location(diameter + 1, 2)

    def test_rules_grow_with_diameter(self):
        small = ring_app(2).compiled.total_rule_count()
        large = ring_app(6).compiled.total_rule_count()
        assert large > small

    def test_rejects_zero_diameter(self):
        with pytest.raises(ValueError):
            ring_app(0)


class TestRuleCountOrdering:
    def test_paper_rule_count_ordering(self):
        """Section 5.1's counts (18 < 43 < 72 < 152 < 158) order the apps
        firewall < learning < auth < IDS ~ cap; our absolute numbers
        differ (different compiler and counting), but the ordering must
        hold."""
        counts = {
            "firewall": firewall_app().compiled.total_rule_count(),
            "learning": learning_switch_app().compiled.total_rule_count(),
            "auth": authentication_app().compiled.total_rule_count(),
            "ids": ids_app().compiled.total_rule_count(),
            "cap": bandwidth_cap_app(10).compiled.total_rule_count(),
        }
        assert counts["firewall"] < counts["learning"] < counts["auth"]
        assert counts["auth"] < counts["ids"] < counts["cap"]

    def test_compile_times_are_interactive(self):
        """The paper reports 13-23 ms compiles; ours must stay well under
        a second per app."""
        import time

        for make in [firewall_app, learning_switch_app, authentication_app]:
            app = make()
            start = time.perf_counter()
            app.compiled  # noqa: B018 -- force the cached property
            assert time.perf_counter() - start < 1.0
