"""The public API surface: everything advertised in ``__all__`` exists,
and the README quickstart runs as documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.netkat",
    "repro.stateful",
    "repro.events",
    "repro.consistency",
    "repro.runtime",
    "repro.network",
    "repro.baselines",
    "repro.optimize",
    "repro.apps",
    "repro.verify",
    "repro.pipeline",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.{entry} is advertised but missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart():
    """The exact quickstart from README.md."""
    from repro.apps import firewall_app
    from repro.consistency import check_trace_against_nes

    app = firewall_app()
    rt = app.runtime(seed=0)
    rt.inject("H4", {"ip_dst": 1, "ip_src": 4})
    rt.run_until_quiescent()
    rt.inject("H1", {"ip_dst": 4, "ip_src": 1})
    rt.run_until_quiescent()
    rt.inject("H4", {"ip_dst": 1, "ip_src": 4})
    rt.run_until_quiescent()

    report = check_trace_against_nes(rt.network_trace(), app.nes, app.topology)
    assert report.correct


def test_readme_parse_example():
    from repro.netkat import parse_policy

    program = parse_policy(
        """
        pt=2 & ip_dst=4; pt<-1;
          ( state(0)=0; (1:1)->(4:1)<state(0)<-1>
          + !state(0)=0; (1:1)->(4:1) );
        pt<-2
        + pt=2 & ip_dst=1; state(0)=1; pt<-1; (4:1)->(1:1); pt<-2
        """
    )
    from repro.apps import firewall_app

    assert program == firewall_app().program
