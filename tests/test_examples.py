"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "ring_scalability.py":
        args.append("2")  # keep the smoke test fast
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
