"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


# Scripts ported to the Pipeline façade must actually exercise it: the
# per-stage report ends up in their output.
PIPELINE_EXAMPLES = {"quickstart.py", "custom_app.py"}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "ring_scalability.py":
        args.append("2")  # keep the smoke test fast
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
    if script.name in PIPELINE_EXAMPLES:
        for marker in ("stage ets", "stage nes", "stage compile"):
            assert marker in result.stdout, f"{script.name} lost the report"
