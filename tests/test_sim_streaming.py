"""Heavy-traffic streaming goldens: the SimOptions knobs change speed,
never behaviour.

Every test here pins the record-identity contract of
:class:`repro.sim_options.SimOptions`: the off-position
(``mask_digests=False, batch=False``) is the retained frozenset
reference path, and every knob combination must produce byte-identical
``DeliveryRecord``/``DropRecord`` sequences and checker verdicts.  The
satellites ride along: the static egress map, the lazy checker
enumeration, the delivery indices, and seeded determinism.
"""

import pytest

from repro.apps import (
    SIGNAL_FIELD,
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_multi_app,
    learning_switch_app,
    ring_app,
)
from repro.apps.base import HOSTS
from repro.consistency import NESChecker
from repro.netkat.packet import Packet
from repro.network import (
    CorrectLogic,
    Frame,
    FrameBatch,
    SimNetwork,
    SimOptions,
)
from repro.sim_options import REFERENCE_SIM_OPTIONS
from repro.topology import Host

# Every knob combination; index 0 is the reference path.
ALL_OPTIONS = (
    REFERENCE_SIM_OPTIONS,
    SimOptions(mask_digests=False, batch=True),
    SimOptions(mask_digests=True, batch=False),
    SimOptions(mask_digests=True, batch=True),
)

APPS = (
    ("firewall", firewall_app),
    ("ids", ids_app),
    ("authentication", authentication_app),
    ("ring", lambda: ring_app(2)),
    ("bandwidth_cap", bandwidth_cap_app),
    ("learning_switch", learning_switch_app),
    ("learning_multi", learning_multi_app),
)


def _stream_records(make_app, options, src, dst, count, spacing=1e-5,
                    signal=None):
    """Run a constant-header stream (plus an optional mid-stream signal
    frame) and return the full record sequences."""
    app = make_app()
    logic = CorrectLogic(app.compiled, options=options)
    net = SimNetwork(app.topology, logic, seed=7, options=options)
    batch = FrameBatch(
        {"ip_src": HOSTS[src], "ip_dst": HOSTS[dst], "kind": 0, "ident": 0},
        count,
        payload_bytes=64,
        flow=("bulk", src, dst),
        spacing=spacing,
    )
    net.inject_stream(src, batch)
    if signal is not None:
        at, host, fields = signal
        net.inject(host, Frame(packet=Packet(fields), flow=("signal",)), at=at)
    net.run()
    return net, tuple(net.deliveries), tuple(net.drops)


class TestRecordIdentityGoldens:
    """Same records under every knob combination, on every seed app."""

    @pytest.mark.parametrize("name,make_app", APPS, ids=[n for n, _ in APPS])
    def test_stream_records_identical_across_knobs(self, name, make_app):
        hosts = [h.name for h in make_app().topology.hosts]
        src, dst = hosts[0], hosts[-1]
        _, ref_deliveries, ref_drops = _stream_records(
            make_app, REFERENCE_SIM_OPTIONS, src, dst, 120
        )
        # Every scenario must actually exercise the data plane.
        assert len(ref_deliveries) + len(ref_drops) >= 120
        for options in ALL_OPTIONS[1:]:
            _, deliveries, drops = _stream_records(
                make_app, options, src, dst, 120
            )
            assert deliveries == ref_deliveries, f"{name} @ {options}"
            assert drops == ref_drops, f"{name} @ {options}"

    def test_firewall_blocked_direction_drop_records_identical(self):
        # Figure 10/11 shape: H4->H1 is dropped until a request goes out.
        _, ref_deliveries, ref_drops = _stream_records(
            firewall_app, REFERENCE_SIM_OPTIONS, "H4", "H1", 80
        )
        assert not ref_deliveries and len(ref_drops) == 80
        for options in ALL_OPTIONS[1:]:
            _, deliveries, drops = _stream_records(
                firewall_app, options, "H4", "H1", 80
            )
            assert deliveries == ref_deliveries
            assert drops == ref_drops

    def test_ring_signal_under_traffic_identical(self):
        # Figure 16 shape: a signal frame flips the ring configuration
        # in the middle of a packet stream, so plan caches and register
        # masks are invalidated while the backlog drains.
        signal = (
            2e-3,
            "H1",
            {"ip_src": 1, SIGNAL_FIELD: 1, "kind": 0, "ident": 0},
        )
        _, ref_deliveries, ref_drops = _stream_records(
            lambda: ring_app(2), REFERENCE_SIM_OPTIONS, "H1", "H2", 400,
            signal=signal,
        )
        assert len(ref_deliveries) == 401  # 400 stream + the signal
        for options in ALL_OPTIONS[1:]:
            _, deliveries, drops = _stream_records(
                lambda: ring_app(2), options, "H1", "H2", 400, signal=signal
            )
            assert deliveries == ref_deliveries
            assert drops == ref_drops

    def test_bandwidth_cap_stream_identical(self):
        # Figure 14 shape: a bulk stream through the capped chain.
        _, ref_deliveries, ref_drops = _stream_records(
            bandwidth_cap_app, REFERENCE_SIM_OPTIONS, "H1", "H4", 200,
            spacing=1e-6,
        )
        for options in ALL_OPTIONS[1:]:
            _, deliveries, drops = _stream_records(
                bandwidth_cap_app, options, "H1", "H4", 200, spacing=1e-6
            )
            assert deliveries == ref_deliveries
            assert drops == ref_drops

    def test_unsorted_times_column_identical(self):
        # An explicitly unsorted times column defeats the lazy one-ahead
        # chain; the eager fallback must stay record-identical too.
        def run(options):
            app = ring_app(2)
            net = SimNetwork(
                app.topology,
                CorrectLogic(app.compiled, options=options),
                seed=7,
                options=options,
            )
            batch = FrameBatch(
                {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": 0},
                6,
                payload_bytes=64,
                times=[5e-4, 1e-4, 3e-4, 2e-4, 6e-4, 0.0],
            )
            net.inject_stream("H1", batch)
            net.run()
            return tuple(net.deliveries), tuple(net.drops)

        reference = run(REFERENCE_SIM_OPTIONS)
        for options in ALL_OPTIONS[1:]:
            assert run(options) == reference


class TestCheckerVerdictIdentity:
    """Definition 6 verdicts agree between the mask path and the
    frozenset reference path on runtime traces from the seed apps."""

    @pytest.mark.parametrize("name,make_app", APPS, ids=[n for n, _ in APPS])
    def test_verdicts_identical(self, name, make_app):
        app = make_app()
        rt = app.runtime(seed=0)
        hosts = [h.name for h in app.topology.hosts]
        src, dst = hosts[0], hosts[-1]
        for i in range(3):
            rt.inject(src, {"ip_dst": HOSTS[dst], "ip_src": HOSTS[src], "ident": i})
            rt.run_until_quiescent()
        trace = rt.network_trace()
        masked = NESChecker(
            app.nes, app.topology, options=SimOptions(mask_digests=True)
        ).check(trace)
        reference = NESChecker(
            app.nes, app.topology, options=SimOptions(mask_digests=False)
        ).check(trace)
        assert bool(masked) == bool(reference)
        assert masked.reason == reference.reason


class TestLazyCheckerEnumeration:
    def test_early_exit_tries_fewer_sequences_than_exist(self):
        # A correct trace firing two independent events: four candidate
        # sequences exist (each event alone plus both orders), but the
        # lazy generator stops at the first match instead of
        # materializing them all.
        app = learning_multi_app()
        rt = app.runtime(seed=0)
        shots = [("H1", 4, 1), ("H2", 4, 2), ("H4", 1, 4)]
        for i, (host, dst, src) in enumerate(shots * 2):
            rt.inject(host, {"ip_dst": dst, "ip_src": src, "ident": i})
            rt.run_until_quiescent()
        trace = rt.network_trace()
        checker = NESChecker(app.nes, app.topology)
        report = checker.check(trace)
        assert report
        total = sum(1 for _ in checker._candidate_sequences(trace))
        assert 1 <= checker.sequences_tried < total


class TestEgressMap:
    def test_ports_table_static_and_first_link_wins(self):
        # The egress map is built once from the topology -- switch ->
        # port -> host-or-link with hosts shadowing links and the first
        # link in (switch, port) order winning -- so per-packet egress
        # resolution never re-sorts link lists.
        app = ring_app(2)
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        links = sorted(app.topology.links())
        for src, dst in links:
            target = net._ports[src.switch][src.port]
            if isinstance(target, Host):
                continue  # a host attachment shadows this link
            first = next(d for s, d in links if s == src)
            assert target.dst == first
        for host in app.topology.hosts:
            at = host.attachment
            assert net._ports[at.switch][at.port] is host

    def test_flood_emission_order_identical_across_knobs(self):
        # Multi-emit (flood) outputs must come out in the same port
        # order on the plan-replay path as on the reference path.
        _, ref_deliveries, ref_drops = _stream_records(
            learning_switch_app, REFERENCE_SIM_OPTIONS, "H1", "H4", 60
        )
        for options in ALL_OPTIONS[1:]:
            _, deliveries, drops = _stream_records(
                learning_switch_app, options, "H1", "H4", 60
            )
            assert deliveries == ref_deliveries
            assert drops == ref_drops


class TestDeliveryIndices:
    def _mixed_flow_net(self, options):
        app = ring_app(2)
        net = SimNetwork(
            app.topology,
            CorrectLogic(app.compiled, options=options),
            seed=7,
            options=options,
        )
        for ident, flow in enumerate(
            [("bulk", "H1", "H2"), ("ping", "H1", "H2"), ("bulk", "H1", "H2")]
        ):
            batch = FrameBatch(
                {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": ident},
                40,
                payload_bytes=64,
                flow=flow,
                start=ident * 1e-5,
                spacing=3e-5,
            )
            net.inject_stream("H1", batch)
        net.run()
        return net

    @pytest.mark.parametrize("options", ALL_OPTIONS, ids=str)
    def test_indices_match_full_scan(self, options):
        net = self._mixed_flow_net(options)
        assert len(net.deliveries) == 120
        for host in ("H1", "H2"):
            scan = [r for r in net.deliveries if r.host == host]
            assert net.deliveries_to(host) == scan
        for prefix in ((), ("bulk",), ("ping",), ("bulk", "H1", "H2"), ("no",)):
            scan = [
                r
                for r in net.deliveries
                if r.frame.flow[: len(prefix)] == prefix
            ]
            assert net.delivered_flows(prefix) == scan

    def test_indices_fold_incrementally_between_runs(self):
        net = self._mixed_flow_net(SimOptions())
        first = net.deliveries_to("H2")
        batch = FrameBatch(
            {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": 9},
            10,
            payload_bytes=64,
            flow=("late", "H1", "H2"),
            start=net.now + 1e-4,
            spacing=1e-5,
        )
        net.inject_stream("H1", batch)
        net.run()
        assert len(net.deliveries_to("H2")) == len(first) + 10
        assert net.delivered_flows(("late",)) == net.deliveries[-10:]


class TestDeterminismAndOptions:
    def test_same_seed_same_records_in_one_process(self):
        runs = [
            _stream_records(lambda: ring_app(2), SimOptions(), "H1", "H2", 300)
            for _ in range(2)
        ]
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2]
        assert runs[0][0].sim.events_processed == runs[1][0].sim.events_processed

    def test_sim_options_frozen_defaults(self):
        options = SimOptions()
        assert options.mask_digests and options.batch
        assert REFERENCE_SIM_OPTIONS == SimOptions(
            mask_digests=False, batch=False
        )
        with pytest.raises(Exception):
            options.batch = False

    def test_plan_cache_invalidated_by_external_register_mutation(self):
        # Mutating logic.registers[sw] directly (the documented test
        # surface) must bump the plan generation so stale emission plans
        # are never replayed.
        app = ring_app(2)
        options = SimOptions()
        logic = CorrectLogic(app.compiled, options=options)
        net = SimNetwork(app.topology, logic, seed=7, options=options)
        net.inject_stream(
            "H1",
            FrameBatch(
                {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": 0},
                20,
                payload_bytes=64,
                spacing=1e-5,
            ),
        )
        net.run()
        switch = app.topology.hosts[0].attachment.switch
        before = logic.plan_generations[switch]
        event = next(iter(app.nes.events))
        logic.registers[switch].add(event)
        assert logic.plan_generations[switch] > before


@pytest.mark.slow
class TestMillionFrameSoak:
    def test_million_frame_stream_delivers_all_and_matches_reference_prefix(self):
        count = 1_000_000
        app = ring_app(2)
        options = SimOptions()
        net = SimNetwork(
            app.topology, CorrectLogic(app.compiled, options=options),
            seed=7, options=options,
        )
        batch = FrameBatch(
            {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": 0},
            count,
            payload_bytes=64,
            flow=("bulk", "H1", "H2"),
            spacing=1e-6,
        )
        net.inject_stream("H1", batch)
        net.run()
        assert len(net.deliveries) == count
        assert net.sim.events_processed == 6 * count
        # Switch service is FIFO, so the first frames' records are
        # unaffected by the later backlog: the soak's prefix must be
        # byte-identical to a reference-path run of just that prefix.
        sample = 2000
        ref = SimNetwork(
            app.topology,
            CorrectLogic(app.compiled, options=REFERENCE_SIM_OPTIONS),
            seed=7,
            options=REFERENCE_SIM_OPTIONS,
        )
        ref.inject_stream(
            "H1",
            FrameBatch(
                {"ip_src": 1, "ip_dst": 2, "kind": 0, "ident": 0},
                sample,
                payload_bytes=64,
                flow=("bulk", "H1", "H2"),
                spacing=1e-6,
            ),
        )
        ref.run()
        assert tuple(net.deliveries[:sample]) == tuple(ref.deliveries)
