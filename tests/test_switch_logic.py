"""Unit tests for the correct simulation logic (tags, digests, and the
controller broadcast) and encoding details of the runtime compiler."""

import pytest

from repro.apps import authentication_app, bandwidth_cap_app, firewall_app
from repro.baselines import ReferenceLogic
from repro.netkat.packet import Location, Packet
from repro.network import CorrectLogic, Frame, SimNetwork
from repro.runtime.compiler import TAG_FIELD


class TestHeaderSizing:
    def test_digest_grows_with_event_count(self):
        small = CorrectLogic(firewall_app().compiled)  # 1 event
        large = CorrectLogic(bandwidth_cap_app(10).compiled)  # 11 events
        frame = Frame(packet=Packet({}))
        assert large.header_bytes(frame) >= small.header_bytes(frame)
        assert large.digest_bytes == 2  # 11 events need two bytes
        assert small.digest_bytes == 1

    def test_tag_bytes_minimum_one(self):
        logic = CorrectLogic(firewall_app().compiled)
        assert logic.tag_bytes == 1


class TestIngressStamping:
    def test_stamp_uses_local_register(self):
        app = firewall_app()
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        (event,) = app.nes.events
        logic.registers[1].add(event)
        frame = Frame(packet=Packet({"ip_dst": 4}))
        stamped = logic.on_ingress(net, Location(1, 2), frame)
        assert stamped.tag == frozenset({event})
        assert stamped.digest == frozenset()

    def test_stamp_empty_initially(self):
        app = firewall_app()
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        stamped = logic.on_ingress(net, Location(1, 2), Frame(packet=Packet({})))
        assert stamped.tag == frozenset()


class TestProcessing:
    def test_outputs_carry_updated_digest(self):
        app = firewall_app()
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        (event,) = app.nes.events
        # The event-matching packet arrives at s4 port 1.
        frame = Frame(
            packet=Packet({"sw": 4, "pt": 1, "ip_dst": 4}),
            tag=frozenset(),
        )
        outputs = logic.process(net, Location(4, 1), frame)
        assert outputs
        for _, out in outputs:
            assert event in out.digest

    def test_forwarding_uses_packet_tag_not_register(self):
        """Per-packet consistency: a C0-tagged packet is dropped at s4
        even after s4's register knows the event."""
        app = firewall_app()
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        (event,) = app.nes.events
        logic.registers[4].add(event)
        reply = Frame(
            packet=Packet({"sw": 4, "pt": 2, "ip_dst": 1}),
            tag=frozenset(),  # stamped before the event
        )
        assert logic.process(net, Location(4, 2), reply) == []

    def test_new_tag_uses_new_config(self):
        app = firewall_app()
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        (event,) = app.nes.events
        reply = Frame(
            packet=Packet({"sw": 4, "pt": 2, "ip_dst": 1}),
            tag=frozenset({event}),
        )
        outputs = logic.process(net, Location(4, 2), reply)
        assert [port for port, _ in outputs] == [1]


class TestControllerBroadcast:
    def test_broadcast_respects_enabling_order(self):
        """The controller never installs a chain suffix without its
        prefix, even if its own view arrived out of order."""
        app = authentication_app()
        logic = CorrectLogic(app.compiled, controller_assist=True)
        net = SimNetwork(app.topology, logic, seed=0)
        e1 = next(e for e in app.nes.events if e.location == Location(1, 1))
        e2 = next(e for e in app.nes.events if e.location == Location(2, 1))
        logic.controller_view = {e2}  # suffix only: must NOT be installed
        logic._broadcast(net)
        for register in logic.registers.values():
            assert e2 not in register
        logic.controller_view = {e1, e2}  # full chain: installs both
        logic._broadcast(net)
        for register in logic.registers.values():
            assert register == {e1, e2}


class TestGuardedTablesSemantics:
    def test_guarded_lookup_selects_configuration(self):
        """The merged table with an explicit tag field reproduces each
        per-configuration table (the deployable §4 artifact)."""
        app = firewall_app()
        compiled = app.compiled
        merged = compiled.guarded_tables()
        for state, config in compiled.configurations.items():
            tag = compiled.config_ids[state]
            for switch, table in config.tables.items():
                for rule in table:
                    probe_fields = {
                        f: c for f, c in rule.match.entries() if isinstance(c, int)
                    }
                    probe_fields.setdefault("sw", switch)
                    probe = Packet(probe_fields).set(TAG_FIELD, tag)
                    got = merged[switch].apply(probe)
                    want = {
                        p.set(TAG_FIELD, tag) for p in table.apply(probe.without(TAG_FIELD))
                    }
                    assert got == frozenset(want)
