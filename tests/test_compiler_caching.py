"""Golden tests: the perf-wave caches must be invisible.

The ordered-insert ITE strategy in the FDD algebra and the per-builder
knowledge-FDD cache in the path compiler are pure optimizations; both
can be switched off (``CompileOptions(ordered_insert=False,
knowledge_cache=False)``), and this module asserts the guarded tables
they produce are byte-identical on every seed application.  It also
covers the memoized ``CompiledNES.guarded_tables``: cache reuse,
defensive copies, and explicit invalidation.
"""

import pytest

from repro import CompileOptions, Pipeline
from repro.apps import bandwidth_cap_app, firewall_app, ids_app
from repro.netkat.compiler import Knowledge, knowledge_fdd
from repro.netkat.fdd import FDDBuilder
from repro.runtime.compiler import CompiledNES

from seed_apps import APPS, guarded_bytes


def reference_compile(app) -> CompiledNES:
    """Recompile with every perf-wave cache disabled."""
    options = CompileOptions(
        ordered_insert=False, ast_memo=False, knowledge_cache=False
    )
    return CompiledNES(app.nes, app.topology, options=options)


def reference_pipeline_compile(app) -> CompiledNES:
    """The full toolchain with every fast path off: per-state
    extract/project ETS construction plus every perf-wave cache
    disabled."""
    options = CompileOptions(
        symbolic_extract=False,
        ordered_insert=False,
        ast_memo=False,
        knowledge_cache=False,
    )
    return Pipeline(app.program, app.topology, app.initial_state, options).compiled


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_guarded_tables_byte_identical(name, make):
    app = make()
    assert guarded_bytes(app.compiled) == guarded_bytes(reference_compile(app))


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_guarded_tables_byte_identical_symbolic_off(name, make):
    """Symbolic all-states extraction stacked with the cache
    off-switches: the full fast-path pipeline (app defaults) against the
    everything-off reference, end to end."""
    app = make()
    assert guarded_bytes(app.compiled) == guarded_bytes(
        reference_pipeline_compile(app)
    )


@pytest.mark.slow
def test_guarded_tables_byte_identical_deep_chain():
    """The deep bandwidth-cap chain, where the caches do the most work."""
    app = bandwidth_cap_app(16)
    assert guarded_bytes(app.compiled) == guarded_bytes(reference_compile(app))


class TestKnowledgeFddCache:
    def test_cache_hit_returns_same_node(self):
        builder = FDDBuilder()
        k = Knowledge(pos=(("ip_dst", 4), ("sw", 1)), neg=(("pt", (2, 3)),))
        assert knowledge_fdd(builder, k) is knowledge_fdd(builder, k)

    def test_equal_knowledge_shares_the_entry(self):
        builder = FDDBuilder()
        k1 = Knowledge(pos=(("sw", 1),))
        k2 = Knowledge(pos=(("sw", 1),))
        assert k1 == k2
        assert knowledge_fdd(builder, k1) is knowledge_fdd(builder, k2)

    def test_cache_is_per_builder(self):
        k = Knowledge(pos=(("sw", 1),))
        b1, b2 = FDDBuilder(), FDDBuilder()
        d1 = knowledge_fdd(b1, k)
        d2 = knowledge_fdd(b2, k)
        assert d1 is not d2  # separate hash-cons universes
        assert repr(d1) == repr(d2)

    def test_cached_fdd_matches_uncached_compile(self):
        builder = FDDBuilder()
        k = Knowledge(pos=(("sw", 2),), neg=(("ip_src", (0, 1)),))
        assert knowledge_fdd(builder, k) is builder.of_predicate(k.predicate())


class TestGuardedTableMemo:
    def test_repeated_calls_reuse_cached_flowtables(self):
        compiled = firewall_app().compiled
        t1 = compiled.guarded_tables()
        t2 = compiled.guarded_tables()
        assert t1 is not t2  # fresh mapping each call
        assert t1.keys() == t2.keys()
        for switch in t1:
            assert t1[switch] is t2[switch]  # memo hit: same FlowTable objects

    def test_mutating_returned_mapping_does_not_corrupt_cache(self):
        compiled = firewall_app().compiled
        before = guarded_bytes(compiled)
        compiled.guarded_tables().clear()
        assert guarded_bytes(compiled) == before

    def test_invalidate_forces_rebuild(self):
        compiled = firewall_app().compiled
        t1 = compiled.guarded_tables()
        compiled.invalidate_guarded_tables()
        t2 = compiled.guarded_tables()
        assert any(t1[switch] is not t2[switch] for switch in t1)
        assert {sw: t.rules for sw, t in t1.items()} == {
            sw: t.rules for sw, t in t2.items()
        }

    def test_invalidate_picks_up_configuration_replacement(self):
        from repro.netkat.compiler import Configuration

        compiled = firewall_app().compiled
        stale_count = compiled.forwarding_rule_count()
        state = compiled.states[0]
        compiled.configurations[state] = Configuration({}, compiled.topology)
        # The memo intentionally does not observe the mutation...
        assert compiled.forwarding_rule_count() == stale_count
        # ...until it is invalidated.
        compiled.invalidate_guarded_tables()
        assert compiled.forwarding_rule_count() < stale_count

    def test_rule_counts_agree_with_tables(self):
        compiled = ids_app().compiled
        tables = compiled.guarded_tables()
        assert compiled.forwarding_rule_count() == sum(
            len(t) for t in tables.values()
        )
        assert (
            compiled.total_rule_count()
            == compiled.forwarding_rule_count() + compiled.stamp_rule_count()
        )
