"""Tests for the NetKAT AST and smart constructors."""

import pytest

from repro.netkat.ast import (
    Assign,
    Conj,
    DROP,
    Disj,
    Dup,
    FALSE,
    Filter,
    ID,
    Link,
    Neg,
    PFalse,
    PTrue,
    Seq,
    Star,
    Test,
    TRUE,
    Union,
    assign,
    at_location,
    conj,
    disj,
    filter_,
    link,
    neg,
    policy_fields,
    policy_links,
    policy_size,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.packet import Location


class TestPredicateConstructors:
    def test_neg_constants(self):
        assert neg(TRUE) is FALSE
        assert neg(FALSE) is TRUE

    def test_double_negation(self):
        a = field_test("f", 1)
        assert neg(neg(a)) == a

    def test_conj_identity(self):
        a = field_test("f", 1)
        assert conj(TRUE, a) == a
        assert conj(a, TRUE) == a

    def test_conj_annihilator(self):
        assert conj(field_test("f", 1), FALSE) is FALSE
        assert conj(FALSE, field_test("f", 1)) is FALSE

    def test_disj_identity(self):
        a = field_test("f", 1)
        assert disj(FALSE, a) == a

    def test_disj_annihilator(self):
        assert disj(field_test("f", 1), TRUE) is TRUE

    def test_empty_conj_is_true(self):
        assert conj() is TRUE

    def test_empty_disj_is_false(self):
        assert disj() is FALSE

    def test_operator_sugar(self):
        a, b = field_test("f", 1), field_test("g", 2)
        assert a & b == conj(a, b)
        assert a | b == disj(a, b)
        assert ~a == neg(a)

    def test_nary_conj_builds_left_nested(self):
        a, b, c = field_test("f", 1), field_test("g", 2), field_test("h", 3)
        assert conj(a, b, c) == Conj(Conj(a, b), c)


class TestPolicyConstructors:
    def test_union_drop_elimination(self):
        p = assign("f", 1)
        assert union(DROP, p) == p
        assert union(p, DROP) == p
        assert union() == DROP

    def test_seq_identity_elimination(self):
        p = assign("f", 1)
        assert seq(ID, p) == p
        assert seq(p, ID) == p
        assert seq() == ID

    def test_seq_drop_annihilates(self):
        p = assign("f", 1)
        assert seq(p, DROP) == DROP
        assert seq(DROP, p) == DROP

    def test_star_constants(self):
        assert star(DROP) == ID
        assert star(ID) == ID

    def test_star_wraps(self):
        p = assign("f", 1)
        assert star(p) == Star(p)

    def test_operator_sugar(self):
        p, q = assign("f", 1), assign("g", 2)
        assert p + q == union(p, q)
        assert p >> q == seq(p, q)

    def test_link_parses_strings(self):
        l = link("1:2", "3:4")
        assert isinstance(l, Link)
        assert l.src == Location(1, 2) and l.dst == Location(3, 4)

    def test_at_location(self):
        a = at_location(Location(2, 5))
        assert a == conj(field_test("sw", 2), field_test("pt", 5))


class TestStructuralQueries:
    def test_policy_fields(self):
        p = seq(filter_(field_test("a", 1) & ~field_test("b", 2)), assign("c", 3))
        assert policy_fields(p) == frozenset({"a", "b", "c"})

    def test_policy_fields_link(self):
        assert policy_fields(link("1:1", "2:2")) == frozenset({"sw", "pt"})

    def test_policy_links_in_order(self):
        l1, l2 = link("1:1", "2:2"), link("3:3", "4:4")
        p = union(seq(filter_(field_test("a", 1)), l1), l2)
        assert policy_links(p) == (l1, l2)

    def test_policy_size_positive(self):
        assert policy_size(assign("f", 1)) == 1
        assert policy_size(seq(assign("f", 1), assign("g", 2))) == 3

    def test_size_counts_predicates(self):
        assert policy_size(filter_(field_test("a", 1) & field_test("b", 2))) == 4

    def test_immutability(self):
        node = Test("f", 1)
        with pytest.raises(Exception):
            node.value = 2

    def test_nodes_hashable(self):
        assert len({field_test("f", 1), field_test("f", 1), field_test("f", 2)}) == 2
