"""Tests for the denotational semantics of NetKAT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netkat.ast import (
    DROP,
    Dup,
    ID,
    assign,
    filter_,
    link,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.packet import History, Packet
from repro.netkat.semantics import (
    eval_packet,
    eval_policy,
    eval_predicate,
    reachable_packets,
)


PKT = Packet({"sw": 1, "pt": 2, "f": 3})


class TestPredicates:
    def test_test_matches(self):
        assert eval_predicate(field_test("f", 3), PKT)
        assert not eval_predicate(field_test("f", 4), PKT)

    def test_missing_field_is_false(self):
        assert not eval_predicate(field_test("zzz", 0), PKT)

    def test_negation(self):
        assert eval_predicate(~field_test("f", 4), PKT)
        assert not eval_predicate(~field_test("f", 3), PKT)

    def test_conj_disj(self):
        assert eval_predicate(field_test("f", 3) & field_test("sw", 1), PKT)
        assert not eval_predicate(field_test("f", 3) & field_test("sw", 2), PKT)
        assert eval_predicate(field_test("f", 9) | field_test("sw", 1), PKT)


class TestPolicies:
    def test_filter_passes_or_drops(self):
        assert eval_packet(filter_(field_test("f", 3)), PKT) == frozenset({PKT})
        assert eval_packet(filter_(field_test("f", 4)), PKT) == frozenset()

    def test_id_and_drop(self):
        assert eval_packet(ID, PKT) == frozenset({PKT})
        assert eval_packet(DROP, PKT) == frozenset()

    def test_assign(self):
        (out,) = eval_packet(assign("f", 7), PKT)
        assert out["f"] == 7

    def test_union_is_set_union(self):
        p = union(assign("f", 5), assign("f", 6))
        assert {o["f"] for o in eval_packet(p, PKT)} == {5, 6}

    def test_seq_composes(self):
        p = seq(assign("f", 5), assign("g", 6))
        (out,) = eval_packet(p, PKT)
        assert out["f"] == 5 and out["g"] == 6

    def test_seq_assign_then_test(self):
        p = seq(assign("f", 5), filter_(field_test("f", 5)))
        assert len(eval_packet(p, PKT)) == 1
        p2 = seq(assign("f", 5), filter_(field_test("f", 3)))
        assert eval_packet(p2, PKT) == frozenset()

    def test_assign_overwrites_in_seq(self):
        p = seq(assign("f", 5), assign("f", 6))
        (out,) = eval_packet(p, PKT)
        assert out["f"] == 6

    def test_star_zero_iterations(self):
        p = star(assign("f", 9))
        outs = eval_packet(p, PKT)
        assert PKT in outs  # zero iterations pass the packet through

    def test_star_fixpoint(self):
        # f<-(f is 3 -> 4; 4 -> 5) via union of guarded assignments
        step = union(
            seq(filter_(field_test("f", 3)), assign("f", 4)),
            seq(filter_(field_test("f", 4)), assign("f", 5)),
        )
        outs = {o["f"] for o in eval_packet(star(step), PKT)}
        assert outs == {3, 4, 5}

    def test_dup_extends_history(self):
        h = History.of(PKT)
        (out,) = eval_policy(Dup(), h)
        assert len(out) == 2

    def test_link_moves_matching_packet(self):
        p = link("1:2", "7:8")
        (out,) = eval_packet(p, PKT)
        assert out.switch == 7 and out.port == 8

    def test_link_drops_elsewhere(self):
        p = link("9:9", "7:8")
        assert eval_packet(p, PKT) == frozenset()

    def test_link_records_dup(self):
        (out,) = eval_policy(link("1:2", "7:8"), History.of(PKT))
        assert len(out) == 2
        assert out.rest[0] == PKT


class TestKATLaws:
    """Spot-check KAT axioms on concrete packets."""

    policies = [
        ID,
        DROP,
        filter_(field_test("f", 3)),
        assign("f", 4),
        seq(filter_(field_test("sw", 1)), assign("g", 2)),
        union(assign("f", 1), assign("f", 2)),
    ]

    @pytest.mark.parametrize("p", policies)
    @pytest.mark.parametrize("q", policies)
    def test_union_commutes(self, p, q):
        assert eval_packet(union(p, q), PKT) == eval_packet(union(q, p), PKT)

    @pytest.mark.parametrize("p", policies)
    def test_union_idempotent(self, p):
        assert eval_packet(union(p, p), PKT) == eval_packet(p, PKT)

    @pytest.mark.parametrize("p", policies)
    @pytest.mark.parametrize("q", policies)
    def test_seq_distributes_over_union(self, p, q):
        r = assign("h", 9)
        lhs = eval_packet(seq(union(p, q), r), PKT)
        rhs = eval_packet(union(seq(p, r), seq(q, r)), PKT)
        assert lhs == rhs

    @pytest.mark.parametrize("p", policies)
    def test_star_unfolds_once(self, p):
        lhs = eval_packet(star(p), PKT)
        rhs = eval_packet(union(ID, seq(p, star(p))), PKT)
        assert lhs == rhs


class TestReachablePackets:
    def test_reaches_fixpoint(self):
        step = union(
            seq(filter_(field_test("f", 3)), assign("f", 4)),
            seq(filter_(field_test("f", 4)), assign("f", 3)),
        )
        reached = reachable_packets(step, [PKT])
        assert {p["f"] for p in reached} == {3, 4}
