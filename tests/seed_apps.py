"""Shared helpers for the byte-identity golden tests.

One definition of the seven seed applications and of the canonical
guarded-table serialization, imported by both
``test_compiler_caching.py`` (cache off-switches) and
``test_pipeline.py`` (backend/cache/façade identity) — so adding a seed
app or changing the serialization updates every golden suite at once.
"""

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_multi_app,
    learning_switch_app,
    ring_app,
)
from repro.runtime.compiler import CompiledNES

APPS = (
    ("firewall", firewall_app),
    ("ids", ids_app),
    ("authentication", authentication_app),
    ("ring", lambda: ring_app(4)),
    ("bandwidth_cap", bandwidth_cap_app),
    ("learning_switch", learning_switch_app),
    ("learning_multi", learning_multi_app),
)


def guarded_bytes(compiled: CompiledNES) -> bytes:
    """A canonical byte serialization of the guarded merged tables."""
    tables = compiled.guarded_tables()
    lines = [f"switch {sw}:\n{tables[sw]!r}" for sw in sorted(tables)]
    return "\n".join(lines).encode()
