"""Tests for conjunctive formulas (event guards)."""

import pytest
from hypothesis import given, strategies as st

from repro.formula import EQ, Formula, Literal, NE
from repro.netkat.packet import Packet
from repro.netkat.semantics import eval_predicate


FIELDS = ["a", "b", "c"]
VALUES = [0, 1, 2]

literals = st.builds(
    Literal,
    st.sampled_from(FIELDS),
    st.sampled_from([EQ, NE]),
    st.sampled_from(VALUES),
)
packets = st.builds(
    lambda d: Packet(d),
    st.fixed_dictionaries({f: st.sampled_from(VALUES) for f in FIELDS}),
)


class TestLiteral:
    def test_eq_holds(self):
        assert Literal("a", EQ, 1).holds(Packet({"a": 1}))
        assert not Literal("a", EQ, 1).holds(Packet({"a": 2}))

    def test_ne_holds(self):
        assert Literal("a", NE, 1).holds(Packet({"a": 2}))
        assert not Literal("a", NE, 1).holds(Packet({"a": 1}))

    def test_ne_on_missing_field_holds(self):
        assert Literal("a", NE, 1).holds(Packet({}))

    def test_negated(self):
        assert Literal("a", EQ, 1).negated() == Literal("a", NE, 1)
        assert Literal("a", NE, 1).negated() == Literal("a", EQ, 1)

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Literal("a", "<", 1)


class TestFormulaConstruction:
    def test_true_formula(self):
        assert Formula.true().is_true()
        assert Formula.true().holds(Packet({}))

    def test_conjoin_builds(self):
        phi = Formula.true().conjoin(Literal("a", EQ, 1))
        assert phi is not None and not phi.is_true()

    def test_conjoin_contradiction_eq_eq(self):
        phi = Formula((Literal("a", EQ, 1),))
        assert phi.conjoin(Literal("a", EQ, 2)) is None

    def test_conjoin_contradiction_eq_ne(self):
        phi = Formula((Literal("a", EQ, 1),))
        assert phi.conjoin(Literal("a", NE, 1)) is None

    def test_direct_contradiction_rejected(self):
        with pytest.raises(ValueError):
            Formula((Literal("a", EQ, 1), Literal("a", EQ, 2)))

    def test_canonicalization_drops_redundant_ne(self):
        phi = Formula((Literal("a", EQ, 1), Literal("a", NE, 2)))
        assert phi == Formula((Literal("a", EQ, 1),))

    def test_conjoin_all(self):
        phi = Formula.true().conjoin_all(
            [Literal("a", EQ, 1), Literal("b", NE, 2)]
        )
        assert phi is not None and len(phi.literals) == 2

    def test_without_field(self):
        phi = Formula((Literal("a", EQ, 1), Literal("b", EQ, 2)))
        assert phi.without_field("a") == Formula((Literal("b", EQ, 2),))

    def test_equality_and_hash(self):
        p1 = Formula((Literal("a", EQ, 1), Literal("b", NE, 2)))
        p2 = Formula((Literal("b", NE, 2), Literal("a", EQ, 1)))
        assert p1 == p2 and hash(p1) == hash(p2)


class TestFormulaSemantics:
    @given(st.lists(literals, max_size=4), packets)
    def test_holds_iff_all_literals_hold(self, lits, pkt):
        phi = Formula.true().conjoin_all(lits)
        if phi is None:
            return  # contradictory: nothing to check
        assert phi.holds(pkt) == all(l.holds(pkt) for l in lits)

    @given(st.lists(literals, max_size=4), packets)
    def test_to_predicate_agrees(self, lits, pkt):
        phi = Formula.true().conjoin_all(lits)
        if phi is None:
            return
        assert eval_predicate(phi.to_predicate(), pkt) == phi.holds(pkt)

    @given(st.lists(literals, max_size=3), literals, packets)
    def test_conjoin_refines(self, lits, extra, pkt):
        phi = Formula.true().conjoin_all(lits)
        if phi is None:
            return
        refined = phi.conjoin(extra)
        if refined is None:
            return
        if refined.holds(pkt):
            assert phi.holds(pkt)


class TestImplication:
    def test_reflexive(self):
        phi = Formula((Literal("a", EQ, 1),))
        assert phi.implies(phi)

    def test_stronger_implies_weaker(self):
        strong = Formula((Literal("a", EQ, 1), Literal("b", EQ, 2)))
        weak = Formula((Literal("a", EQ, 1),))
        assert strong.implies(weak)
        assert not weak.implies(strong)

    def test_eq_implies_ne_other_value(self):
        phi = Formula((Literal("a", EQ, 1),))
        assert phi.implies(Formula((Literal("a", NE, 2),)))

    def test_everything_implies_true(self):
        assert Formula((Literal("a", EQ, 1),)).implies(Formula.true())
