"""Tests for ETS construction, ETS->NES conversion (section 3.1), and
locality (section 2) -- including the paper's own examples: the Figure 3
transition systems and the P1/P2 locality programs."""

import pytest

from repro.events.ets_to_nes import (
    FiniteCompletenessError,
    UniqueConfigurationError,
    check_finite_complete,
    family_of_ets,
    nes_of_ets,
)
from repro.events.event import Event
from repro.events.locality import (
    is_locally_determined,
    locality_violations,
    minimally_inconsistent_sets,
)
from repro.formula import EQ, Formula, Literal
from repro.netkat.ast import assign, filter_, link, seq, test as field_test, union
from repro.netkat.packet import Location
from repro.stateful.ast import link_update, state_eq
from repro.stateful.ets import ETS, build_ets
from repro.stateful.events import EventEdge


def ev(field, value, sw, pt, eid=0):
    return Event(Formula((Literal(field, EQ, value),)), Location(sw, pt), eid)


def make_ets(initial, vertex_configs, edges):
    """Hand-build an ETS; vertex_configs maps state -> distinct policy."""
    vertices = tuple((s, vertex_configs[s]) for s in vertex_configs)
    return ETS(initial=initial, vertices=vertices, edges=frozenset(edges))


def distinct_policies(states):
    return {s: assign("cfg", i) for i, s in enumerate(states)}


class TestBuildETS:
    def test_firewall_shape(self):
        prog = union(
            seq(
                filter_(field_test("ip_dst", 4)),
                union(
                    seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
                    seq(filter_(~state_eq([0])), link("1:1", "4:1")),
                ),
            ),
            seq(filter_(field_test("ip_dst", 1) & state_eq([1])), link("4:1", "1:1")),
        )
        ets = build_ets(prog, (0,))
        assert ets.states() == ((0,), (1,))
        (edge,) = ets.edges
        assert edge.src == (0,) and edge.dst == (1,)

    def test_identity_updates_skipped(self):
        prog = seq(filter_(state_eq([1])), link_update("1:1", "4:1", [1]))
        ets = build_ets(prog, (1,))
        assert ets.edges == frozenset()

    def test_unreachable_states_excluded_by_default(self):
        prog = seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1]))
        ets = build_ets(prog, (0,))
        assert set(ets.states()) == {(0,), (1,)}

    def test_explicit_state_space(self):
        prog = seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1]))
        ets = build_ets(prog, (0,), state_space=[(0,), (1,), (2,)])
        assert set(ets.states()) == {(0,), (1,), (2,)}

    def test_state_space_must_contain_initial(self):
        with pytest.raises(ValueError):
            build_ets(assign("a", 1), (0,), state_space=[(1,)])

    def test_state_space_must_cover_reachable(self):
        prog = seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1]))
        with pytest.raises(ValueError):
            build_ets(prog, (0,), state_space=[(0,)])

    def test_loop_detection(self):
        prog = union(
            seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
            seq(filter_(state_eq([1])), link_update("1:1", "4:1", [0])),
        )
        ets = build_ets(prog, (0,))
        assert ets.has_loops()

    def test_chain_is_not_loop(self):
        prog = union(
            seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
            seq(filter_(state_eq([1])), link_update("1:1", "4:1", [2])),
        )
        assert not build_ets(prog, (0,)).has_loops()

    def test_has_loops_survives_chains_beyond_the_recursion_limit(self):
        # The symbolic engine makes very deep state chains cheap to
        # build; the explicit-stack DFS must not hit CPython's
        # recursion limit walking them.
        import sys

        depth = sys.getrecursionlimit() + 100
        states = [(i,) for i in range(depth)]
        event = ev("ip_dst", 4, 4, 1)
        chain_edges = [
            EventEdge(states[i], event, states[i + 1])
            for i in range(depth - 1)
        ]
        configs = {s: assign("cfg", s[0]) for s in states}
        assert not make_ets(states[0], configs, chain_edges).has_loops()
        back_edge = EventEdge(states[-1], event, states[0])
        assert make_ets(
            states[0], configs, chain_edges + [back_edge]
        ).has_loops()


class TestFamilyOfETS:
    def test_figure_3a_compatible_events(self):
        """Two events in any order -> the full diamond family."""
        e1, e2 = ev("a", 1, 1, 1), ev("b", 1, 2, 1)
        states = [(0,), (1,), (2,), (3,)]
        ets = make_ets(
            (0,),
            distinct_policies(states),
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e2, (2,)),
                EventEdge((1,), e2, (3,)),
                EventEdge((2,), e1, (3,)),
            ],
        )
        family = family_of_ets(ets)
        assert set(family) == {
            frozenset(),
            frozenset({e1}),
            frozenset({e2}),
            frozenset({e1, e2}),
        }

    def test_figure_3b_incompatible_events(self):
        """Two events, only one of which may occur."""
        e1, e2 = ev("a", 1, 1, 1), ev("b", 1, 1, 1)
        states = [(0,), (1,), (2,)]
        ets = make_ets(
            (0,),
            distinct_policies(states),
            [EventEdge((0,), e1, (1,)), EventEdge((0,), e2, (2,))],
        )
        family = family_of_ets(ets)
        assert set(family) == {frozenset(), frozenset({e1}), frozenset({e2})}
        nes = nes_of_ets(ets)
        assert not nes.con({e1, e2})

    def test_figure_3c_violates_finite_completeness(self):
        """E1={e1}, E2={e3} have upper bound {e1,e4,e3} but {e1,e3} is
        missing -- the paper's counterexample."""
        e1, e3, e4 = ev("a", 1, 1, 1), ev("c", 1, 1, 1), ev("d", 1, 1, 1)
        states = [(0,), (1,), (2,), (3,), (4,)]
        ets = make_ets(
            (0,),
            distinct_policies(states),
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e3, (2,)),
                EventEdge((1,), e4, (3,)),
                EventEdge((3,), e3, (4,)),
            ],
        )
        family = family_of_ets(ets)
        assert check_finite_complete(family)
        with pytest.raises(FiniteCompletenessError):
            nes_of_ets(ets)

    def test_unique_configuration_violation(self):
        """Same event reaching states with different configurations."""
        e1, e2 = ev("a", 1, 1, 1), ev("b", 1, 1, 1)
        states = [(0,), (1,), (2,), (3,), (4,)]
        ets = make_ets(
            (0,),
            distinct_policies(states),
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e2, (2,)),
                EventEdge((1,), e2, (3,)),
                EventEdge((2,), e1, (4,)),  # {e1,e2} again, different config
            ],
        )
        with pytest.raises(UniqueConfigurationError):
            family_of_ets(ets)

    def test_same_event_set_same_config_allowed(self):
        """A true diamond: both orders reach the same configuration."""
        e1, e2 = ev("a", 1, 1, 1), ev("b", 1, 1, 1)
        configs = distinct_policies([(0,), (1,), (2,), (3,)])
        ets = make_ets(
            (0,),
            configs,
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e2, (2,)),
                EventEdge((1,), e2, (3,)),
                EventEdge((2,), e1, (3,)),
            ],
        )
        nes = nes_of_ets(ets)
        assert nes.state_of({e1, e2}) == (3,)

    def test_chain_renames_repeated_events(self):
        """The bandwidth-cap pattern: one syntactic event per chain level."""
        e = ev("a", 1, 1, 1)
        states = [(0,), (1,), (2,)]
        ets = make_ets(
            (0,),
            distinct_policies(states),
            [EventEdge((0,), e, (1,)), EventEdge((1,), e, (2,))],
        )
        family = family_of_ets(ets)
        assert frozenset({e.renamed(0)}) in family
        assert frozenset({e.renamed(0), e.renamed(1)}) in family

    def test_unbounded_loop_detected(self):
        e = ev("a", 1, 1, 1)
        ets = make_ets(
            (0,),
            distinct_policies([(0,), (1,)]),
            [EventEdge((0,), e, (1,)), EventEdge((1,), e, (0,))],
        )
        from repro.events.ets_to_nes import ETSConversionError

        with pytest.raises(ETSConversionError):
            family_of_ets(ets, max_occurrences=8)


class TestNES:
    def make_firewall_nes(self):
        prog = union(
            seq(
                filter_(field_test("ip_dst", 4)),
                union(
                    seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
                    seq(filter_(~state_eq([0])), link("1:1", "4:1")),
                ),
            ),
        )
        return nes_of_ets(build_ets(prog, (0,)))

    def test_g_total_on_event_sets(self):
        nes = self.make_firewall_nes()
        for es in nes.event_sets():
            nes.config_of(es)  # must not raise

    def test_g_rejects_non_event_sets(self):
        nes = self.make_firewall_nes()
        bogus = ev("zzz", 1, 9, 9)
        with pytest.raises(KeyError):
            nes.state_of({bogus})

    def test_initial_state(self):
        assert self.make_firewall_nes().initial_state == (0,)

    def test_structure_event_sets_equal_family(self):
        """The reconstructed structure's event-sets are exactly F(T)."""
        nes = self.make_firewall_nes()
        assert nes.structure.event_sets() == nes.event_sets()

    def test_newly_enabled(self):
        nes = self.make_firewall_nes()
        (event,) = nes.events
        assert nes.newly_enabled(frozenset()) == frozenset({event})
        assert nes.newly_enabled(frozenset({event})) == frozenset()


class TestLocality:
    def test_program_p1_not_locally_determined(self):
        """Section 2's P1: incompatible events at *different* switches."""
        e1, e2 = ev("src", 1, 2, 1), ev("src", 1, 4, 1)
        es_states = [(0,), (1,), (2,)]
        ets = make_ets(
            (0,),
            distinct_policies(es_states),
            [EventEdge((0,), e1, (1,)), EventEdge((0,), e2, (2,))],
        )
        nes = nes_of_ets(ets)
        assert not is_locally_determined(nes)
        (violation,) = locality_violations(nes)
        assert violation == frozenset({e1, e2})

    def test_program_p2_locally_determined(self):
        """Section 2's P2: incompatible events at the *same* switch."""
        e1, e2 = ev("src", 1, 2, 1), ev("src", 3, 2, 1)
        es_states = [(0,), (1,), (2,)]
        ets = make_ets(
            (0,),
            distinct_policies(es_states),
            [EventEdge((0,), e1, (1,)), EventEdge((0,), e2, (2,))],
        )
        nes = nes_of_ets(ets)
        assert is_locally_determined(nes)

    def test_compatible_events_never_violate(self):
        e1, e2 = ev("a", 1, 1, 1), ev("b", 1, 9, 1)
        ets = make_ets(
            (0,),
            distinct_policies([(0,), (1,), (2,), (3,)]),
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e2, (2,)),
                EventEdge((1,), e2, (3,)),
                EventEdge((2,), e1, (3,)),
            ],
        )
        nes = nes_of_ets(ets)
        assert is_locally_determined(nes)
        assert minimally_inconsistent_sets(nes.structure) == frozenset()

    def test_minimally_inconsistent_excludes_supersets(self):
        e1, e2, e3 = ev("a", 1, 1, 1), ev("b", 1, 1, 1), ev("c", 1, 1, 1)
        ets = make_ets(
            (0,),
            distinct_policies([(0,), (1,), (2,), (3,)]),
            [
                EventEdge((0,), e1, (1,)),
                EventEdge((0,), e2, (2,)),
                EventEdge((0,), e3, (3,)),
            ],
        )
        nes = nes_of_ets(ets)
        minimal = minimally_inconsistent_sets(nes.structure)
        # all pairs are minimally inconsistent; the triple is not minimal
        assert frozenset({e1, e2}) in minimal
        assert frozenset({e1, e2, e3}) not in minimal
