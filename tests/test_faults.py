"""The seeded chaos suite for the fault-tolerance layer.

Every injected fault must end in exactly one of three outcomes:

1. **retry-success** — the executor's bounded retry (or the thread ->
   serial degradation) absorbs it and the tables are byte-identical to
   a fault-free compile;
2. **clean degradation** — the cache path absorbs it (recorded miss,
   quarantine, one-shot warning, health counter) and the pipeline
   recompiles to byte-identical tables;
3. **a typed error** — ``StageError`` / ``ArtifactIntegrityError`` with
   stage provenance.

Never wrong tables, and never a stale/forged artifact served.  Fast
deterministic cases run in the smoke target; the deep randomized plans
carry ``slow`` on top of ``chaos``.
"""

import os
import pickle
import warnings

import pytest

import repro
from repro import faults
from repro.apps import firewall_app, ids_app
from repro.pipeline import (
    ArtifactCache,
    ArtifactCacheWarning,
    ArtifactIntegrityError,
    CompileOptions,
    Pipeline,
    PipelineError,
    StageError,
    _QUARANTINE_SLOTS,
    _SIGNED_MAGIC,
)

from seed_apps import guarded_bytes

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """A test that dies mid-``injected`` must not poison its neighbors."""
    yield
    faults.uninstall()


def fresh_pipeline(app, options=None):
    return Pipeline(app.program, app.topology, app.initial_state, options)


@pytest.fixture(scope="module")
def reference_tables():
    """Fault-free firewall tables, the byte-identity oracle."""
    return guarded_bytes(fresh_pipeline(firewall_app()).compiled)


# ---------------------------------------------------------------------------
# The FaultPlan registry itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_unknown_site_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultPlan({"cache.laod": 1.0})

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            faults.FaultRule(probability=1.5)
        with pytest.raises(ValueError):
            faults.FaultRule(max_fires=-1)
        with pytest.raises(ValueError):
            faults.FaultRule(skip=-1)

    def test_float_shorthand(self):
        plan = faults.FaultPlan({"cache.load": 0.5})
        assert plan.rules["cache.load"] == faults.FaultRule(probability=0.5)

    def test_same_seed_replays_the_same_schedule(self):
        def schedule(seed, n=200):
            plan = faults.FaultPlan({"executor.worker": 0.3}, seed=seed)
            fired = []
            for i in range(n):
                try:
                    plan.check("executor.worker")
                except faults.FaultInjected:
                    fired.append(i)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        # ~30% of hits fire; the stream is seeded, not degenerate.
        assert 30 <= len(schedule(7)) <= 90

    def test_site_streams_are_independent(self):
        """Interleaving hits of another site must not perturb a site's
        own schedule (per-site RNG streams)."""

        def worker_schedule(interleave):
            plan = faults.FaultPlan(
                {"executor.worker": 0.3, "cache.load": 0.3}, seed=3
            )
            fired = []
            for i in range(100):
                if interleave:
                    try:
                        plan.check("cache.load")
                    except faults.FaultInjected:
                        pass
                try:
                    plan.check("executor.worker")
                except faults.FaultInjected:
                    fired.append(i)
            return fired

        assert worker_schedule(False) == worker_schedule(True)

    def test_skip_and_max_fires(self):
        plan = faults.FaultPlan(
            {"cache.load": faults.FaultRule(skip=2, max_fires=3)}
        )
        outcomes = []
        for _ in range(8):
            try:
                plan.check("cache.load")
                outcomes.append("pass")
            except faults.FaultInjected:
                outcomes.append("fire")
        assert outcomes == ["pass"] * 2 + ["fire"] * 3 + ["pass"] * 3
        assert plan.hits("cache.load") == 8
        assert plan.fires("cache.load") == 3

    def test_exception_carries_site_and_hit(self):
        plan = faults.FaultPlan({"stage.ets": faults.FaultRule(skip=1)})
        plan.check("stage.ets")
        with pytest.raises(faults.FaultInjected) as info:
            plan.check("stage.ets")
        assert info.value.site == "stage.ets"
        assert info.value.hit == 2

    def test_check_without_a_plan_is_a_no_op(self):
        assert faults.active() is None
        faults.check("stage.ets")  # must not raise

    def test_install_uninstall_and_no_nesting(self):
        plan = faults.FaultPlan({})
        with faults.injected(plan) as installed:
            assert installed is plan
            assert faults.active() is plan
            with pytest.raises(RuntimeError, match="already installed"):
                faults.install(faults.FaultPlan({}))
        assert faults.active() is None
        faults.uninstall()  # idempotent
        with pytest.raises(TypeError):
            faults.install("not a plan")

    def test_unruled_sites_never_fire(self):
        plan = faults.FaultPlan({"cache.load": 1.0})
        plan.check("cache.store")
        assert plan.hits("cache.store") == 1
        assert plan.fires("cache.store") == 0


# ---------------------------------------------------------------------------
# Executor: retry, degradation, deadline
# ---------------------------------------------------------------------------


class TestExecutorRecovery:
    def test_serial_retry_absorbs_a_transient_worker_fault(self, reference_tables):
        plan = faults.FaultPlan({"executor.worker": faults.FaultRule(max_fires=1)})
        with faults.injected(plan):
            pipeline = fresh_pipeline(firewall_app())
            assert guarded_bytes(pipeline.compiled) == reference_tables
        assert plan.fires("executor.worker") == 1
        assert pipeline.report().health["executor.retries"] == 1

    def test_thread_backend_degrades_to_serial(self, reference_tables):
        """The acceptance scenario: worker failures in the thread
        backend, no retry budget -> the pool fails, the pipeline falls
        back to the serial executor, and the tables are byte-identical,
        with the recovery visible in health."""
        plan = faults.FaultPlan({"executor.worker": faults.FaultRule(max_fires=1)})
        with faults.injected(plan):
            pipeline = fresh_pipeline(
                firewall_app(),
                CompileOptions(backend="thread", compile_retries=0),
            )
            with pytest.warns(RuntimeWarning, match="degrading to the serial"):
                tables = guarded_bytes(pipeline.compiled)
        assert tables == reference_tables
        health = pipeline.report().health
        assert health["executor.fallback_serial"] == 1

    def test_thread_retry_succeeds_without_degrading(self, reference_tables):
        """With a retry budget, transient worker faults are absorbed
        inside the pool and no fallback happens."""
        plan = faults.FaultPlan({"executor.worker": faults.FaultRule(max_fires=2)})
        with faults.injected(plan):
            pipeline = fresh_pipeline(
                firewall_app(),
                CompileOptions(backend="thread", compile_retries=2, max_workers=2),
            )
            assert guarded_bytes(pipeline.compiled) == reference_tables
        health = pipeline.report().health
        assert health.get("executor.retries", 0) >= 1
        assert "executor.fallback_serial" not in health

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_unbounded_worker_faults_end_in_a_typed_error(self, backend):
        with faults.injected(faults.FaultPlan({"executor.worker": 1.0})):
            pipeline = fresh_pipeline(
                firewall_app(), CompileOptions(backend=backend, compile_retries=1)
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with pytest.raises(StageError) as info:
                    pipeline.compiled
        assert info.value.stage == "compile"
        assert isinstance(info.value, PipelineError)

    def test_retries_are_bounded(self):
        plan = faults.FaultPlan({"executor.worker": 1.0})
        with faults.injected(plan):
            pipeline = fresh_pipeline(
                firewall_app(), CompileOptions(compile_retries=3)
            )
            with pytest.raises(StageError):
                pipeline.compiled
        # First configuration: 1 attempt + 3 retries, then typed failure.
        assert plan.fires("executor.worker") == 4

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_deadline_exceeded_is_a_typed_error(self, backend):
        pipeline = fresh_pipeline(
            firewall_app(),
            CompileOptions(backend=backend, deadline_seconds=1e-9),
        )
        with pytest.raises(StageError, match="deadline_seconds"):
            pipeline.compiled
        assert "executor.fallback_serial" not in pipeline.report().health

    def test_generous_deadline_is_invisible(self, reference_tables):
        pipeline = fresh_pipeline(
            firewall_app(), CompileOptions(deadline_seconds=300.0)
        )
        assert guarded_bytes(pipeline.compiled) == reference_tables
        assert pipeline.report().health == {}

    def test_deadline_does_not_retry(self):
        """A deadline miss is not transient: no retry burn-down."""
        plan = faults.FaultPlan({})
        with faults.injected(plan):
            pipeline = fresh_pipeline(
                firewall_app(),
                CompileOptions(deadline_seconds=1e-9, compile_retries=5),
            )
            with pytest.raises(StageError):
                pipeline.compiled
        assert "executor.retries" not in pipeline.report().health

    def test_new_knob_validation(self):
        with pytest.raises(ValueError):
            CompileOptions(compile_retries=-1)
        with pytest.raises(ValueError):
            CompileOptions(deadline_seconds=0)
        with pytest.raises(ValueError):
            CompileOptions(deadline_seconds=-1.0)


# ---------------------------------------------------------------------------
# Stage boundaries
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("stage", ["ets", "nes", "compile"])
def test_stage_faults_surface_as_stage_errors(stage):
    with faults.injected(faults.FaultPlan({f"stage.{stage}": 1.0})):
        pipeline = fresh_pipeline(firewall_app())
        with pytest.raises(StageError) as info:
            pipeline.compiled
    assert info.value.stage == stage
    assert isinstance(info.value.__cause__, faults.FaultInjected)


def test_stage_fault_does_not_poison_the_pipeline():
    """A stage that failed under a (since-removed) plan can be retried
    on the same Pipeline object: nothing was cached half-built."""
    with faults.injected(faults.FaultPlan({"stage.ets": faults.FaultRule(max_fires=1)})):
        pipeline = fresh_pipeline(firewall_app())
        with pytest.raises(StageError):
            pipeline.ets
        ets = pipeline.ets  # second boundary crossing: the fault is spent
    assert ets.states()


# ---------------------------------------------------------------------------
# Cache faults: load/store errors are absorbed, warned, and counted
# ---------------------------------------------------------------------------


class TestCacheFaults:
    def test_load_fault_is_a_recorded_miss(self, tmp_path, reference_tables):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        fresh_pipeline(app, options).compiled  # warm the cache

        with faults.injected(faults.FaultPlan({"cache.load": faults.FaultRule(max_fires=1)})):
            pipeline = fresh_pipeline(app, options)
            with pytest.warns(ArtifactCacheWarning, match="load failed"):
                assert guarded_bytes(pipeline.compiled) == reference_tables
        report = pipeline.report()
        assert report.artifact_cache == "miss"
        assert report.health["cache.load_error"] == 1

    def test_store_fault_keeps_the_compile_and_is_counted(self, tmp_path, reference_tables):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        with faults.injected(faults.FaultPlan({"cache.store": 1.0})):
            pipeline = fresh_pipeline(app, options)
            with pytest.warns(ArtifactCacheWarning, match="store failed"):
                assert guarded_bytes(pipeline.compiled) == reference_tables
        assert pipeline.report().health["cache.store_error"] == 1
        # Nothing was written; the next pipeline is a cold miss.
        rerun = fresh_pipeline(app, options)
        rerun.compiled
        assert rerun.report().artifact_cache == "miss"

    def test_corrupt_entry_is_quarantined_not_rereead(self, tmp_path):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)
        pipeline = fresh_pipeline(app, options)
        key = pipeline.artifact_key()
        cache = ArtifactCache(tmp_path)
        cache.path(key).write_bytes(b"garbage, not a pickle")

        with pytest.warns(ArtifactCacheWarning, match="corrupt"):
            pipeline.compiled
        report = pipeline.report()
        assert report.artifact_cache == "miss"
        assert report.health["cache.load_corrupt"] == 1
        assert report.health["cache.quarantined"] == 1
        assert cache.bad_path(key).exists()
        # The store repaired the entry; a rerun hits without re-reading
        # the quarantined bytes.
        rerun = fresh_pipeline(app, options)
        rerun.compiled
        assert rerun.report().artifact_cache == "hit"

    def test_wrong_type_entry_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.path("k").write_bytes(pickle.dumps({"not": "a CompiledNES"}))
        with pytest.warns(ArtifactCacheWarning, match="not a CompiledNES"):
            assert cache.load("k") is None
        assert cache.bad_path("k").exists()
        assert cache.health["cache.load_corrupt"] == 1

    def test_cache_warnings_are_one_shot_per_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.path("a").write_bytes(b"junk a")
        cache.path("b").write_bytes(b"junk b")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert cache.load("a") is None
            assert cache.load("b") is None
        assert len([w for w in caught if issubclass(w.category, ArtifactCacheWarning)]) == 1
        assert cache.health["cache.load_corrupt"] == 2


# ---------------------------------------------------------------------------
# Artifact integrity: the signed cache
# ---------------------------------------------------------------------------


KEY = "chaos-suite-key"


class TestSignedArtifacts:
    def options(self, tmp_path, **overrides):
        return CompileOptions(cache_dir=tmp_path, cache_hmac_key=KEY, **overrides)

    def test_signed_roundtrip_hits(self, tmp_path, reference_tables):
        app = firewall_app()
        options = self.options(tmp_path)
        cold = fresh_pipeline(app, options)
        assert guarded_bytes(cold.compiled) == reference_tables
        blob = ArtifactCache(tmp_path).path(cold.artifact_key()).read_bytes()
        assert blob.startswith(_SIGNED_MAGIC)

        warm = fresh_pipeline(app, options)
        assert guarded_bytes(warm.compiled) == reference_tables
        assert warm.report().artifact_cache == "hit"
        assert warm.report().health == {}

    @pytest.mark.parametrize("flip_at", ["payload", "digest", "magic"])
    def test_tampered_artifact_is_rejected_and_recompiled(
        self, tmp_path, reference_tables, flip_at
    ):
        """The acceptance scenario: a bit-flipped signed artifact is an
        integrity miss, quarantined, and the pipeline recompiles to
        byte-identical tables."""
        app = firewall_app()
        options = self.options(tmp_path)
        cold = fresh_pipeline(app, options)
        cold.compiled
        key = cold.artifact_key()
        path = ArtifactCache(tmp_path).path(key)
        blob = bytearray(path.read_bytes())
        offset = {"magic": 2, "digest": len(_SIGNED_MAGIC) + 5, "payload": len(blob) - 7}
        blob[offset[flip_at]] ^= 0x04
        path.write_bytes(bytes(blob))

        pipeline = fresh_pipeline(app, options)
        with pytest.warns(ArtifactCacheWarning, match="rejected"):
            assert guarded_bytes(pipeline.compiled) == reference_tables
        report = pipeline.report()
        assert report.artifact_cache == "miss"
        assert report.health["cache.integrity_rejected"] == 1
        assert report.health["cache.quarantined"] == 1
        assert ArtifactCache(tmp_path).bad_path(key).exists()
        # The recompile re-stored a good signed entry: self-healing.
        rerun = fresh_pipeline(app, options)
        rerun.compiled
        assert rerun.report().artifact_cache == "hit"

    def test_strict_cache_raises_on_tamper(self, tmp_path):
        app = firewall_app()
        options = self.options(tmp_path)
        cold = fresh_pipeline(app, options)
        cold.compiled
        path = ArtifactCache(tmp_path).path(cold.artifact_key())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))

        strict = fresh_pipeline(app, self.options(tmp_path, strict_cache=True))
        with pytest.raises(ArtifactIntegrityError, match="HMAC"):
            strict.compiled
        assert strict.report().health["cache.integrity_rejected"] == 1

    def test_truncated_signed_artifact_is_rejected(self, tmp_path, reference_tables):
        app = firewall_app()
        options = self.options(tmp_path)
        cold = fresh_pipeline(app, options)
        cold.compiled
        path = ArtifactCache(tmp_path).path(cold.artifact_key())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # torn write

        pipeline = fresh_pipeline(app, options)
        with pytest.warns(ArtifactCacheWarning):
            assert guarded_bytes(pipeline.compiled) == reference_tables
        assert pipeline.report().health["cache.integrity_rejected"] == 1

    def test_forged_artifact_signed_with_another_key_is_rejected(
        self, tmp_path, reference_tables
    ):
        """A forger without the key cannot get an artifact served: an
        entry signed under a different key fails verification."""
        app = firewall_app()
        pipeline = fresh_pipeline(app, self.options(tmp_path))
        key = pipeline.artifact_key()
        forged = ids_app().compiled  # wrong tables entirely
        ArtifactCache(tmp_path, hmac_key=b"attacker-key").store(key, forged)

        with pytest.warns(ArtifactCacheWarning, match="rejected"):
            tables = guarded_bytes(pipeline.compiled)
        assert tables == reference_tables  # never the forged tables
        assert pipeline.report().health["cache.integrity_rejected"] == 1

    def test_unsigned_entry_in_a_keyed_cache_is_rejected(self, tmp_path, reference_tables):
        app = firewall_app()
        unkeyed = CompileOptions(cache_dir=tmp_path)
        fresh_pipeline(app, unkeyed).compiled  # legacy unsigned entry

        keyed = fresh_pipeline(app, self.options(tmp_path))
        with pytest.warns(ArtifactCacheWarning, match="unsigned"):
            assert guarded_bytes(keyed.compiled) == reference_tables
        assert keyed.report().health["cache.integrity_rejected"] == 1
        # The keyed recompile stored a signed replacement.
        rerun = fresh_pipeline(app, self.options(tmp_path))
        rerun.compiled
        assert rerun.report().artifact_cache == "hit"

    def test_keyless_reader_still_reads_signed_entries(self, tmp_path, reference_tables):
        """Cross-format: dropping the key keeps the cache warm (same
        trust model as the legacy unsigned format)."""
        app = firewall_app()
        fresh_pipeline(app, self.options(tmp_path)).compiled

        keyless = fresh_pipeline(app, CompileOptions(cache_dir=tmp_path))
        assert guarded_bytes(keyless.compiled) == reference_tables
        assert keyless.report().artifact_cache == "hit"

    def test_env_var_supplies_the_key(self, tmp_path, monkeypatch):
        app = firewall_app()
        monkeypatch.setenv("REPRO_CACHE_HMAC_KEY", KEY)
        options = CompileOptions(cache_dir=tmp_path)
        assert options.resolved_cache_hmac_key() == KEY.encode()
        cold = fresh_pipeline(app, options)
        cold.compiled
        blob = ArtifactCache(tmp_path).path(cold.artifact_key()).read_bytes()
        assert blob.startswith(_SIGNED_MAGIC)
        # The explicit field wins over the environment.
        explicit = CompileOptions(cache_dir=tmp_path, cache_hmac_key=b"other")
        assert explicit.resolved_cache_hmac_key() == b"other"
        monkeypatch.delenv("REPRO_CACHE_HMAC_KEY")
        assert options.resolved_cache_hmac_key() is None


# ---------------------------------------------------------------------------
# The off-position goldens: the new knobs never change the artifact
# ---------------------------------------------------------------------------


class TestKnobsAreExecutionOnly:
    def test_byte_identity_across_all_new_knobs(self, tmp_path, reference_tables):
        app = firewall_app()
        for options in (
            CompileOptions(),
            CompileOptions(cache_hmac_key=KEY, cache_dir=tmp_path / "signed"),
            CompileOptions(strict_cache=True),
            CompileOptions(compile_retries=0),
            CompileOptions(compile_retries=7),
            CompileOptions(deadline_seconds=600.0),
        ):
            assert guarded_bytes(fresh_pipeline(app, options).compiled) == reference_tables

    def test_new_knobs_are_excluded_from_the_artifact_key(self):
        from repro.pipeline import artifact_digest

        app = firewall_app()
        base = CompileOptions()
        reference = artifact_digest(app.program, app.topology, app.initial_state, base)
        for variant in (
            base.replace(cache_hmac_key=KEY),
            base.replace(strict_cache=True),
            base.replace(compile_retries=9),
            base.replace(deadline_seconds=1.5),
        ):
            assert (
                artifact_digest(app.program, app.topology, app.initial_state, variant)
                == reference
            )


# ---------------------------------------------------------------------------
# Health reporting
# ---------------------------------------------------------------------------


def test_clean_run_reports_empty_health_and_ok_line():
    pipeline = fresh_pipeline(firewall_app())
    pipeline.compiled
    report = pipeline.report()
    assert report.health == {}
    assert "health ok" in str(report)


def test_health_counters_render_in_the_report():
    plan = faults.FaultPlan({"executor.worker": faults.FaultRule(max_fires=1)})
    with faults.injected(plan):
        pipeline = fresh_pipeline(firewall_app())
        pipeline.compiled
    rendered = str(pipeline.report())
    assert "health executor.retries" in rendered
    assert "health ok" not in rendered


# ---------------------------------------------------------------------------
# Randomized chaos: any plan, one of the three sanctioned outcomes
# ---------------------------------------------------------------------------


def run_chaos(seed: int, tmp_path, reference: bytes) -> None:
    """One randomized plan over every site; the pipeline must produce
    byte-identical tables or a typed error — nothing else."""
    import random

    rng = random.Random(seed)
    rules = {}
    for site in faults.SITES:
        if rng.random() < 0.7:
            rules[site] = faults.FaultRule(
                probability=rng.choice([0.3, 0.6, 1.0]),
                max_fires=rng.choice([1, 2, 3, None]),
                skip=rng.choice([0, 0, 1]),
            )
    app = firewall_app()
    options = CompileOptions(
        cache_dir=tmp_path / f"cache{seed}",
        cache_hmac_key=KEY,
        backend=rng.choice(["serial", "thread"]),
        compile_retries=rng.choice([0, 1, 2]),
    )
    with faults.injected(faults.FaultPlan(rules, seed=seed)):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            pipeline = fresh_pipeline(app, options)
            try:
                tables = guarded_bytes(pipeline.compiled)
            except PipelineError as exc:
                assert exc.stage in ("ets", "nes", "compile", "cache")
                return
            assert tables == reference
    # Whatever the plan did to the cache, a fault-free rerun must also
    # be right — a stale/forged entry must never have been stored.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rerun = fresh_pipeline(app, options)
        assert guarded_bytes(rerun.compiled) == reference


@pytest.mark.parametrize("seed", range(8))
def test_randomized_plans_quick(seed, tmp_path, reference_tables):
    run_chaos(seed, tmp_path, reference_tables)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8, 60))
def test_randomized_plans_deep(seed, tmp_path, reference_tables):
    run_chaos(seed, tmp_path, reference_tables)


# ---------------------------------------------------------------------------
# Torn signed headers and quarantine slot preservation
# ---------------------------------------------------------------------------


class TestTornHeaderAndQuarantineSlots:
    """Regressions: an entry truncated *inside* the magic+HMAC header
    must be an integrity rejection (not unpickled garbage miscounted as
    ``cache.load_corrupt``), and repeated quarantines of one key must
    preserve the earlier forensic copies in numbered slots."""

    def torn_blob(self):
        # Recognizably signed, but cut off 10 bytes into the digest.
        return _SIGNED_MAGIC + b"\x5a" * 10

    @pytest.mark.parametrize("hmac_key", [None, b"some-key"],
                             ids=["keyless", "keyed"])
    def test_torn_header_is_an_integrity_rejection(self, tmp_path, hmac_key):
        cache = ArtifactCache(tmp_path, hmac_key=hmac_key)
        cache.path("k").write_bytes(self.torn_blob())
        with pytest.warns(ArtifactCacheWarning, match="torn signed header"):
            assert cache.load("k") is None
        assert cache.health["cache.integrity_rejected"] == 1
        assert cache.health.get("cache.load_corrupt", 0) == 0
        assert cache.health["cache.quarantined"] == 1
        assert cache.bad_path("k").exists()
        assert not cache.path("k").exists()

    def test_torn_header_is_strict_mode_fatal(self, tmp_path):
        cache = ArtifactCache(tmp_path, strict=True)
        cache.path("k").write_bytes(self.torn_blob())
        with pytest.raises(ArtifactIntegrityError, match="torn signed header"):
            cache.load("k")

    def test_torn_header_pipeline_recompiles_byte_identically(
        self, tmp_path, reference_tables
    ):
        app = firewall_app()
        options = CompileOptions(cache_dir=tmp_path)  # keyless reader
        cold = fresh_pipeline(app, options)
        cold.compiled
        path = ArtifactCache(tmp_path).path(cold.artifact_key())
        # Simulate a keyed writer's store torn off mid-header.
        path.write_bytes(self.torn_blob())

        pipeline = fresh_pipeline(app, options)
        with pytest.warns(ArtifactCacheWarning, match="rejected"):
            assert guarded_bytes(pipeline.compiled) == reference_tables
        report = pipeline.report()
        assert report.artifact_cache == "miss"
        assert report.health["cache.integrity_rejected"] == 1
        assert "cache.load_corrupt" not in report.health

    def test_repeated_quarantines_preserve_earlier_copies(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ArtifactCacheWarning)
            for round_number in range(3):
                cache.path("k").write_bytes(b"garbage %d" % round_number)
                assert cache.load("k") is None
        for slot in range(3):
            assert cache.bad_path("k", slot).read_bytes() == (
                b"garbage %d" % slot
            )
        assert cache.health["cache.quarantined"] == 3

    def test_quarantine_slots_are_bounded_and_recycle_the_last(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        rounds = _QUARANTINE_SLOTS + 2
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ArtifactCacheWarning)
            for round_number in range(rounds):
                cache.path("k").write_bytes(b"garbage %d" % round_number)
                assert cache.load("k") is None
        # The first slots keep the earliest copies; overflow recycles
        # only the final slot, which holds the most recent rejection.
        for slot in range(_QUARANTINE_SLOTS - 1):
            assert cache.bad_path("k", slot).read_bytes() == (
                b"garbage %d" % slot
            )
        assert cache.bad_path("k", _QUARANTINE_SLOTS - 1).read_bytes() == (
            b"garbage %d" % (rounds - 1)
        )
        assert not cache.bad_path("k", _QUARANTINE_SLOTS).exists()
        assert cache.health["cache.quarantined"] == rounds
