"""Empirical Theorem 1: every execution of the implementation yields a
network trace that is correct with respect to the NES (Definition 6).

Random seeded interleavings of the operational semantics are run for
every case study, with workloads chosen to exercise the apps' event
transitions; each resulting trace goes through the Definition 6 checker.
"""

import pytest

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
)
from repro.consistency.checker import NESChecker

H1, H2, H3, H4 = 1, 2, 3, 4

SEEDS = [0, 1, 2, 7, 13, 42]


def run_workload(app, injections, seed, controller_assist=False, interleaved=False):
    """Inject packets and run; ``interleaved`` injects all up front so the
    scheduler can interleave them arbitrarily."""
    rt = app.runtime(seed=seed, controller_assist=controller_assist)
    if interleaved:
        for host, fields in injections:
            rt.inject(host, fields)
        rt.run_until_quiescent()
    else:
        for host, fields in injections:
            rt.inject(host, fields)
            rt.run_until_quiescent()
    rt.drain_controller()
    return rt.network_trace()


FIREWALL_WORKLOADS = [
    [("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1})],
    [
        ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1}),
        ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 2}),
    ],
    [
        ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1}),
        ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
        ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 3}),
        ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 4}),
    ],
]


class TestFirewallTheorem1:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workload", range(len(FIREWALL_WORKLOADS)))
    def test_sequential_traces_correct(self, seed, workload):
        app = firewall_app()
        trace = run_workload(app, FIREWALL_WORKLOADS[workload], seed)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason

    @pytest.mark.parametrize("seed", SEEDS)
    def test_interleaved_traces_correct(self, seed):
        """Packets racing through arbitrary interleavings stay correct."""
        app = firewall_app()
        trace = run_workload(
            app, FIREWALL_WORKLOADS[2], seed, interleaved=True
        )
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_with_controller_assist(self, seed):
        app = firewall_app()
        trace = run_workload(
            app, FIREWALL_WORKLOADS[1], seed, controller_assist=True
        )
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason


class TestLearningSwitchTheorem1:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_flood_then_learn(self, seed):
        app = learning_switch_app()
        workload = [
            ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1}),
            ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
            ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 3}),
        ]
        trace = run_workload(app, workload, seed)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_interleaved(self, seed):
        app = learning_switch_app()
        workload = [
            ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1}),
            ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
        ]
        trace = run_workload(app, workload, seed, interleaved=True)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason


class TestAuthenticationTheorem1:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_knock_sequence(self, seed):
        app = authentication_app()
        workload = [
            ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 1}),
            ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 2}),
            ("H4", {"ip_dst": H2, "ip_src": H4, "ident": 3}),
            ("H2", {"ip_dst": H4, "ip_src": H2, "ident": 4}),
            ("H4", {"ip_dst": H3, "ip_src": H4, "ident": 5}),
        ]
        trace = run_workload(app, workload, seed)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason


class TestBandwidthCapTheorem1:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_cap_chain(self, seed):
        app = bandwidth_cap_app(2)
        workload = []
        for i in range(4):
            workload.append(("H1", {"ip_dst": H4, "ip_src": H1, "ident": i}))
            workload.append(("H4", {"ip_dst": H1, "ip_src": H4, "ident": 100 + i}))
        trace = run_workload(app, workload, seed)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason


class TestIDSTheorem1:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_scan_sequence(self, seed):
        app = ids_app()
        workload = [
            ("H4", {"ip_dst": H3, "ip_src": H4, "ident": 1}),
            ("H4", {"ip_dst": H1, "ip_src": H4, "ident": 2}),
            ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 3}),
            ("H4", {"ip_dst": H2, "ip_src": H4, "ident": 4}),
            ("H2", {"ip_dst": H4, "ip_src": H2, "ident": 5}),
            ("H4", {"ip_dst": H3, "ip_src": H4, "ident": 6}),
        ]
        trace = run_workload(app, workload, seed)
        report = NESChecker(app.nes, app.topology).check(trace)
        assert report, report.reason
