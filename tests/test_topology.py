"""Tests for topologies."""

import pytest

from repro.netkat.packet import Location
from repro.topology import (
    Topology,
    firewall_topology,
    learning_topology,
    ring_topology,
    star_topology,
)


class TestTopologyBasics:
    def test_add_link_registers_switches(self):
        topo = Topology().add_link("1:1", "2:2")
        assert topo.switches == frozenset({1, 2})

    def test_duplex_link_both_directions(self):
        topo = Topology().add_duplex_link("1:1", "2:2")
        assert topo.has_link(Location(1, 1), Location(2, 2))
        assert topo.has_link(Location(2, 2), Location(1, 1))

    def test_link_targets_and_sources(self):
        topo = Topology().add_link("1:1", "2:2")
        assert topo.link_targets(Location(1, 1)) == frozenset({Location(2, 2)})
        assert topo.link_sources(Location(2, 2)) == frozenset({Location(1, 1)})
        assert topo.link_targets(Location(9, 9)) == frozenset()

    def test_hosts(self):
        topo = Topology().add_host("H1", "1:2")
        assert topo.host("H1").attachment == Location(1, 2)
        assert topo.host_at(Location(1, 2)).name == "H1"
        assert topo.host_at(Location(1, 3)) is None

    def test_duplicate_host_name_rejected(self):
        topo = Topology().add_host("H1", "1:2")
        with pytest.raises(ValueError):
            topo.add_host("H1", "2:2")

    def test_two_hosts_one_port_rejected(self):
        topo = Topology().add_host("H1", "1:2")
        with pytest.raises(ValueError):
            topo.add_host("H2", "1:2")

    def test_ports_of(self):
        topo = Topology().add_link("1:1", "2:2").add_host("H1", "1:5")
        assert topo.ports_of(1) == frozenset({1, 5})

    def test_edge_locations_sorted(self):
        topo = Topology().add_host("B", "2:1").add_host("A", "1:1")
        assert topo.edge_locations() == (Location(1, 1), Location(2, 1))

    def test_links_iteration_deterministic(self):
        topo = Topology().add_duplex_link("1:1", "2:2").add_duplex_link("2:1", "3:2")
        assert list(topo.links()) == list(topo.links())


class TestPaperTopologies:
    def test_firewall_shape(self):
        topo = firewall_topology()
        assert topo.switches == frozenset({1, 4})
        assert {h.name for h in topo.hosts} == {"H1", "H4"}
        assert topo.has_link(Location(1, 1), Location(4, 1))

    def test_learning_shape(self):
        topo = learning_topology()
        assert topo.switches == frozenset({1, 2, 4})
        assert {h.name for h in topo.hosts} == {"H1", "H2", "H4"}

    def test_star_shape(self):
        topo = star_topology()
        assert topo.switches == frozenset({1, 2, 3, 4})
        assert {h.name for h in topo.hosts} == {"H1", "H2", "H3", "H4"}
        # s4 is the hub
        for spoke, port in [(1, 1), (2, 3), (3, 4)]:
            assert topo.has_link(Location(4, port), Location(spoke, 1))

    @pytest.mark.parametrize("diameter", [1, 2, 3, 5, 8])
    def test_ring_size(self, diameter):
        topo = ring_topology(diameter)
        assert len(topo.switches) == 2 * diameter

    @pytest.mark.parametrize("diameter", [2, 4])
    def test_ring_is_connected_cycle(self, diameter):
        topo = ring_topology(diameter)
        n = 2 * diameter
        for i in range(1, n + 1):
            nxt = (i % n) + 1
            assert topo.has_link(Location(i, 1), Location(nxt, 2))
            assert topo.has_link(Location(nxt, 2), Location(i, 1))

    def test_ring_host_placement(self):
        topo = ring_topology(3)
        assert topo.host("H1").attachment == Location(1, 3)
        assert topo.host("H2").attachment == Location(4, 3)

    def test_ring_rejects_zero_diameter(self):
        with pytest.raises(ValueError):
            ring_topology(0)
