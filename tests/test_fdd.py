"""Tests for the FDD compiler core: agreement with the denotational
semantics on randomly generated link-free policies and predicates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netkat.ast import (
    DROP,
    ID,
    Policy,
    Predicate,
    assign,
    conj,
    disj,
    filter_,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.fdd import FDDBuilder, mod_compose, mod_of
from repro.netkat.packet import Packet
from repro.netkat.semantics import eval_packet, eval_predicate


FIELDS = ["sw", "pt", "a", "b"]
VALUES = [0, 1, 2]

predicates = st.deferred(
    lambda: st.one_of(
        st.just(filter_(field_test("zzz", 0)).predicate),  # unlikely test
        st.builds(field_test, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
        st.builds(neg, predicates),
        st.builds(lambda a, b: conj(a, b), predicates, predicates),
        st.builds(lambda a, b: disj(a, b), predicates, predicates),
    )
)

policies = st.deferred(
    lambda: st.one_of(
        st.just(ID),
        st.just(DROP),
        st.builds(filter_, predicates),
        st.builds(assign, st.sampled_from(FIELDS), st.sampled_from(VALUES)),
        st.builds(lambda p, q: union(p, q), policies, policies),
        st.builds(lambda p, q: seq(p, q), policies, policies),
    )
)

packets = st.builds(
    lambda d: Packet(d),
    st.fixed_dictionaries({f: st.sampled_from(VALUES) for f in FIELDS}),
)


class TestModOperations:
    def test_mod_of_sorts(self):
        assert mod_of({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_compose_overrides(self):
        assert mod_compose(mod_of({"a": 1}), mod_of({"a": 2})) == mod_of({"a": 2})

    def test_compose_merges(self):
        got = mod_compose(mod_of({"a": 1}), mod_of({"b": 2}))
        assert got == mod_of({"a": 1, "b": 2})

    def test_identity_mod(self):
        assert mod_compose((), mod_of({"a": 1})) == mod_of({"a": 1})


class TestBuilderBasics:
    def test_id_and_drop_are_cached(self):
        b = FDDBuilder()
        assert b.leaf(frozenset()) is b.drop
        assert b.of_policy(ID) is b.id
        assert b.of_policy(DROP) is b.drop

    def test_branch_collapses_equal_children(self):
        b = FDDBuilder()
        assert b.branch("f", 1, b.id, b.id) is b.id

    def test_hash_consing(self):
        b = FDDBuilder()
        d1 = b.of_policy(seq(filter_(field_test("a", 1)), assign("b", 2)))
        d2 = b.of_policy(seq(filter_(field_test("a", 1)), assign("b", 2)))
        assert d1 is d2

    def test_union_identities(self):
        b = FDDBuilder()
        d = b.of_policy(assign("a", 1))
        assert b.union(d, b.drop) is d
        assert b.union(b.drop, d) is d
        assert b.union(d, d) is d

    def test_dup_rejected(self):
        from repro.netkat.ast import Dup

        with pytest.raises(ValueError):
            FDDBuilder().of_policy(Dup())

    def test_link_rejected(self):
        from repro.netkat.ast import link

        with pytest.raises(ValueError):
            FDDBuilder().of_policy(link("1:1", "2:2"))

    def test_negate_requires_predicate(self):
        b = FDDBuilder()
        with pytest.raises(ValueError):
            b.negate(b.of_policy(assign("a", 1)))

    def test_size(self):
        b = FDDBuilder()
        assert b.size(b.id) == 1
        d = b.of_predicate(field_test("a", 1))
        assert b.size(d) == 3  # one branch + two leaves


class TestAgreementWithSemantics:
    @given(predicates, packets)
    @settings(max_examples=300, deadline=None)
    def test_predicate_fdd_agrees(self, a, pkt):
        b = FDDBuilder()
        d = b.of_predicate(a)
        expected = frozenset({pkt}) if eval_predicate(a, pkt) else frozenset()
        assert b.eval(d, pkt) == expected

    @given(policies, packets)
    @settings(max_examples=300, deadline=None)
    def test_policy_fdd_agrees(self, p, pkt):
        b = FDDBuilder()
        assert b.eval(b.of_policy(p), pkt) == eval_packet(p, pkt)

    @given(policies, policies, packets)
    @settings(max_examples=150, deadline=None)
    def test_union_agrees(self, p, q, pkt):
        b = FDDBuilder()
        d = b.union(b.of_policy(p), b.of_policy(q))
        assert b.eval(d, pkt) == eval_packet(union(p, q), pkt)

    @given(policies, policies, packets)
    @settings(max_examples=150, deadline=None)
    def test_seq_agrees(self, p, q, pkt):
        b = FDDBuilder()
        d = b.seq(b.of_policy(p), b.of_policy(q))
        assert b.eval(d, pkt) == eval_packet(seq(p, q), pkt)

    @given(policies, packets)
    @settings(max_examples=75, deadline=None)
    def test_star_agrees(self, p, pkt):
        b = FDDBuilder()
        d = b.star(b.of_policy(p))
        assert b.eval(d, pkt) == eval_packet(star(p), pkt)


class TestCofactor:
    @given(policies, packets)
    @settings(max_examples=150, deadline=None)
    def test_cofactor_agrees_on_matching_packets(self, p, pkt):
        b = FDDBuilder()
        d = b.of_policy(p)
        field, value = "sw", pkt["sw"]
        specialized = b.cofactor(d, field, value)
        assert b.eval(specialized, pkt) == b.eval(d, pkt)

    def test_cofactor_removes_field_tests(self):
        b = FDDBuilder()
        d = b.of_policy(seq(filter_(field_test("sw", 1)), assign("a", 2)))
        spec = b.cofactor(d, "sw", 1)
        pkt = Packet({"sw": 9, "pt": 0, "a": 0, "b": 0})
        # After cofactoring, the sw test is gone: even a sw=9 packet passes.
        assert len(b.eval(spec, pkt)) == 1


class TestPaths:
    def test_paths_cover_all_behaviors(self):
        b = FDDBuilder()
        p = union(
            seq(filter_(field_test("a", 1)), assign("b", 2)),
            seq(filter_(field_test("a", 2)), assign("b", 0)),
        )
        d = b.of_policy(p)
        leaves = [actions for _, actions in b.paths(d)]
        nonempty = [a for a in leaves if a]
        assert len(nonempty) == 2

    def test_paths_ordering_is_hi_first(self):
        b = FDDBuilder()
        d = b.of_predicate(field_test("a", 1))
        constraint_lists = [c for c, _ in b.paths(d)]
        assert constraint_lists[0] == (("a", 1, True),)
        assert constraint_lists[1] == (("a", 1, False),)


class TestStarConvergence:
    def test_star_of_field_rotation(self):
        b = FDDBuilder()
        step = union(
            seq(filter_(field_test("a", 0)), assign("a", 1)),
            seq(filter_(field_test("a", 1)), assign("a", 2)),
            seq(filter_(field_test("a", 2)), assign("a", 0)),
        )
        d = b.star(b.of_policy(step))
        pkt = Packet({"sw": 0, "pt": 0, "a": 0, "b": 0})
        assert {o["a"] for o in b.eval(d, pkt)} == {0, 1, 2}
