"""Tests for the rule-sharing trie optimization (section 5.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import authentication_app, bandwidth_cap_app, firewall_app
from repro.netkat.packet import Packet
from repro.optimize.sharing import (
    optimize_compiled_nes,
    optimized_table_equivalent,
)
from repro.optimize.trie import (
    build_trie,
    exact_best_order,
    heuristic_order,
    naive_rule_count,
    optimize_configurations,
    trie_rule_count,
)


def fs(*items):
    return frozenset(items)


class TestTrieConstruction:
    def test_leaf_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            build_trie([fs("a"), fs("b"), fs("c")])

    def test_root_holds_intersection(self):
        root = build_trie([fs("a", "b"), fs("a", "c")])
        assert root.rules == fs("a")

    def test_leaf_indices_in_order(self):
        root = build_trie([fs("a"), fs("b")])
        assert [c.leaf_index for c in root.children] == [0, 1]

    def test_dummy_leaves_are_universal(self):
        root = build_trie([fs("a", "b"), None])
        assert root.rules == fs("a", "b")  # dummy shares everything


class TestTrieCounting:
    def test_figure_18_example(self):
        """C0={r1,r2} C1={r1,r3} C2={r2,r3} C3={r1,r2}: trie (a) order
        costs 6, trie (b) order costs 5."""
        c0, c1, c2, c3 = fs("r1", "r2"), fs("r1", "r3"), fs("r2", "r3"), fs("r1", "r2")
        trie_a = build_trie([c0, c1, c2, c3])  # pairs (C0,C1) and (C2,C3)
        assert trie_rule_count(trie_a) == 6
        trie_b = build_trie([c0, c3, c1, c2])  # pairs (C0,C3) and (C1,C2)
        assert trie_rule_count(trie_b) == 5

    def test_identical_configs_fully_shared(self):
        c = fs("r1", "r2", "r3")
        root = build_trie([c, c, c, c])
        assert trie_rule_count(root) == 3

    def test_disjoint_configs_no_sharing(self):
        root = build_trie([fs("a"), fs("b"), fs("c"), fs("d")])
        assert trie_rule_count(root) == 4

    def test_dummy_leaf_materializes_nothing(self):
        root = build_trie([fs("a", "b"), None])
        assert trie_rule_count(root) == 2  # a, b once at the root

    def test_naive_count(self):
        assert naive_rule_count([fs("a", "b"), fs("a")]) == 3


class TestHeuristic:
    def test_heuristic_matches_exact_on_figure_18(self):
        configs = [fs("r1", "r2"), fs("r1", "r3"), fs("r2", "r3"), fs("r1", "r2")]
        ordered = heuristic_order(configs)
        heuristic_count = trie_rule_count(build_trie(ordered))
        _, exact = exact_best_order(configs, max_leaves=4)
        assert heuristic_count == exact == 5

    def test_heuristic_never_worse_than_naive(self):
        rng = random.Random(0)
        pool = [f"r{i}" for i in range(12)]
        for _ in range(20):
            configs = [
                frozenset(r for r in pool if rng.random() < 0.4) for _ in range(8)
            ]
            result = optimize_configurations(configs)
            assert result.optimized <= result.original

    @given(st.lists(
        st.frozensets(st.sampled_from(["a", "b", "c", "d"]), max_size=4),
        min_size=1,
        max_size=4,
    ))
    @settings(max_examples=60, deadline=None)
    def test_heuristic_within_exact_bound(self, configs):
        """The heuristic never beats the true optimum (sanity), and the
        optimum never beats total sharing."""
        ordered = heuristic_order(configs)
        heuristic_count = trie_rule_count(build_trie(ordered))
        _, exact = exact_best_order(configs, max_leaves=4)
        union_all = frozenset().union(*configs)
        assert exact <= heuristic_count <= naive_rule_count(configs)
        # Every distinct rule must be materialized at least once.
        assert exact >= len(union_all)

    def test_pads_non_power_of_two(self):
        configs = [fs("a", "b"), fs("a", "b"), fs("a")]
        result = optimize_configurations(configs)
        assert result.original == 5
        assert result.optimized <= 5

    def test_empty_input(self):
        result = optimize_configurations([])
        assert result.original == result.optimized == 0

    def test_savings_fraction(self):
        result = optimize_configurations([fs("a"), fs("a")])
        assert result.optimized == 1
        assert result.savings_fraction == 0.5


class TestRandomInstancesShape:
    def test_paper_style_savings(self):
        """64 random configs over a 20-rule pool: expect ~30% savings
        (the paper reports 32-37% on average)."""
        rng = random.Random(42)
        pool = [f"rule{i}" for i in range(20)]
        fractions = []
        for _ in range(10):
            configs = [
                frozenset(r for r in pool if rng.random() < 0.3)
                for _ in range(64)
            ]
            result = optimize_configurations(configs)
            fractions.append(result.savings_fraction)
        average = sum(fractions) / len(fractions)
        assert 0.2 <= average <= 0.6


class TestCompiledNESOptimization:
    @pytest.mark.parametrize(
        "make_app", [firewall_app, authentication_app, lambda: bandwidth_cap_app(4)]
    )
    def test_optimized_counts_never_exceed_original(self, make_app):
        app = make_app()
        result = optimize_compiled_nes(app.compiled)
        assert result.optimized <= result.original

    def test_bandwidth_cap_saves_most(self):
        """The cap's chain of near-identical configurations shares best."""
        cap = optimize_compiled_nes(bandwidth_cap_app(10).compiled)
        fw = optimize_compiled_nes(firewall_app().compiled)
        assert cap.savings_fraction > fw.savings_fraction

    @pytest.mark.parametrize(
        "make_app", [firewall_app, authentication_app, lambda: bandwidth_cap_app(3)]
    )
    def test_optimized_tables_semantically_equivalent(self, make_app):
        """Deployed wildcard-guarded tables behave exactly like the naive
        per-configuration tables."""
        app = make_app()
        result = optimize_compiled_nes(app.compiled)
        for switch_result in result.per_switch:
            assert optimized_table_equivalent(app.compiled, switch_result), (
                f"switch {switch_result.switch} optimized table diverges"
            )

    def test_guarded_rules_use_prefix_matches(self):
        from repro.netkat.flowtable import PrefixMatch
        from repro.runtime.compiler import TAG_FIELD

        app = bandwidth_cap_app(4)
        result = optimize_compiled_nes(app.compiled)
        shared = [
            rule
            for sw in result.per_switch
            for rule in sw.rules
            if isinstance(rule.match.get(TAG_FIELD), PrefixMatch)
            and rule.match.get(TAG_FIELD).wildcard_bits > 0
        ]
        assert shared  # the chain must share at least one rule
