"""Tests for the concrete-syntax parser and pretty-printer, including
parse/pretty round-trip properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netkat.ast import (
    Assign,
    Dup,
    Filter,
    Link,
    Test,
    assign,
    conj,
    disj,
    filter_,
    link,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.packet import Location
from repro.netkat.parser import ParseError, parse_policy, parse_predicate
from repro.netkat.pretty import pretty_policy, pretty_predicate
from repro.stateful.ast import LinkUpdate, StateTest, link_update, state_test


class TestParseAtoms:
    def test_test(self):
        assert parse_policy("ip_dst=4") == Filter(Test("ip_dst", 4))

    def test_assign(self):
        assert parse_policy("pt<-2") == Assign("pt", 2)

    def test_constants(self):
        assert parse_policy("id") == filter_(conj())
        assert parse_policy("drop").predicate.__class__.__name__ == "PFalse"
        assert parse_policy("dup") == Dup()

    def test_state_test(self):
        assert parse_policy("state(0)=3") == Filter(StateTest(0, 3))

    def test_link(self):
        assert parse_policy("(1:1)->(4:1)") == Link(Location(1, 1), Location(4, 1))

    def test_link_update_single(self):
        got = parse_policy("(1:1)->(4:1)<state(0)<-1>")
        assert got == LinkUpdate(Location(1, 1), Location(4, 1), ((0, 1),))

    def test_link_update_multiple(self):
        got = parse_policy("(1:1)->(4:1)<state(0)<-1, state(1)<-2>")
        assert got == LinkUpdate(Location(1, 1), Location(4, 1), ((0, 1), (1, 2)))


class TestParseOperators:
    def test_seq(self):
        assert parse_policy("a=1; b<-2") == seq(filter_(field_test("a", 1)), assign("b", 2))

    def test_union(self):
        assert parse_policy("a<-1 + a<-2") == union(assign("a", 1), assign("a", 2))

    def test_precedence_union_looser_than_seq(self):
        got = parse_policy("a<-1; b<-2 + c<-3")
        want = union(seq(assign("a", 1), assign("b", 2)), assign("c", 3))
        assert got == want

    def test_conj_tighter_than_seq(self):
        got = parse_policy("a=1 & b=2; c<-3")
        want = seq(filter_(conj(field_test("a", 1), field_test("b", 2))), assign("c", 3))
        assert got == want

    def test_negation(self):
        assert parse_policy("!a=1") == filter_(neg(field_test("a", 1)))

    def test_double_negation(self):
        assert parse_policy("!!a=1") == filter_(field_test("a", 1))

    def test_disjunction(self):
        got = parse_policy("a=1 | b=2")
        assert got == filter_(disj(field_test("a", 1), field_test("b", 2)))

    def test_star(self):
        assert parse_policy("(a<-1)*") == star(assign("a", 1))

    def test_grouping(self):
        got = parse_policy("(a<-1 + b<-2); c<-3")
        want = seq(union(assign("a", 1), assign("b", 2)), assign("c", 3))
        assert got == want

    def test_comments_and_whitespace(self):
        got = parse_policy(
            """
            a=1;     # match
            b<-2     # then rewrite
            """
        )
        assert got == seq(filter_(field_test("a", 1)), assign("b", 2))


class TestParseErrors:
    def test_conj_of_policies_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("a<-1 & b<-2")

    def test_negation_of_policy_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("!a<-1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_policy("a=1 )")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            parse_policy("a=1 @ b=2")

    def test_incomplete_link(self):
        with pytest.raises(ParseError):
            parse_policy("(1:1)->")

    def test_bad_update_keyword(self):
        with pytest.raises(ParseError):
            parse_policy("(1:1)->(2:2)<foo(0)<-1>")

    def test_predicate_parser_rejects_policy(self):
        with pytest.raises(ParseError):
            parse_predicate("pt<-1")

    def test_predicate_parser_accepts_test(self):
        assert parse_predicate("a=1 & b=2") == conj(
            field_test("a", 1), field_test("b", 2)
        )


class TestPaperPrograms:
    def test_figure_9a_firewall(self):
        source = """
        pt=2 & ip_dst=4; pt<-1;
          ( state(0)=0; (1:1)->(4:1)<state(0)<-1>
          + !state(0)=0; (1:1)->(4:1) );
        pt<-2
        + pt=2 & ip_dst=1; state(0)=1; pt<-1; (4:1)->(1:1); pt<-2
        """
        parsed = parse_policy(source)
        from repro.apps import firewall_app

        assert parsed == firewall_app().program

    def test_figure_9c_authentication_fragment(self):
        source = "state(0)=0 & pt=2 & ip_dst=1; pt<-1; (4:1)->(1:1)<state(0)<-1>; pt<-2"
        parsed = parse_policy(source)
        assert isinstance(parsed, type(seq(assign("a", 1), assign("b", 2))))


FIELDS = ["a", "b", "sw", "pt"]

policies = st.deferred(
    lambda: st.one_of(
        st.builds(lambda f, v: filter_(field_test(f, v)),
                  st.sampled_from(FIELDS), st.integers(0, 9)),
        st.builds(lambda f, v: filter_(neg(field_test(f, v))),
                  st.sampled_from(FIELDS), st.integers(0, 9)),
        st.builds(assign, st.sampled_from(FIELDS), st.integers(0, 9)),
        st.builds(lambda c, v: filter_(StateTest(c, v)),
                  st.integers(0, 3), st.integers(0, 5)),
        st.builds(
            lambda s1, p1, s2, p2: Link(Location(s1, p1), Location(s2, p2)),
            *(st.integers(1, 5),) * 4,
        ),
        st.builds(
            lambda s1, p1, s2, p2, m, n: LinkUpdate(
                Location(s1, p1), Location(s2, p2), ((m, n),)
            ),
            *(st.integers(1, 5),) * 4,
            st.integers(0, 3),
            st.integers(0, 5),
        ),
        st.builds(lambda p, q: union(p, q), policies, policies),
        st.builds(lambda p, q: seq(p, q), policies, policies),
        st.builds(star, policies),
        st.builds(
            lambda a, b: filter_(conj(a, b)),
            policies.filter(lambda p: isinstance(p, Filter)).map(lambda p: p.predicate),
            policies.filter(lambda p: isinstance(p, Filter)).map(lambda p: p.predicate),
        ),
    )
)


class TestRoundTrip:
    @given(policies)
    @settings(max_examples=300, deadline=None)
    def test_parse_pretty_roundtrip(self, p):
        assert parse_policy(pretty_policy(p)) == p

    def test_pretty_firewall_parses_back(self):
        from repro.apps import firewall_app

        program = firewall_app().program
        assert parse_policy(pretty_policy(program)) == program

    @pytest.mark.parametrize(
        "make_app",
        ["firewall_app", "learning_switch_app", "authentication_app", "ids_app"],
    )
    def test_all_apps_roundtrip(self, make_app):
        import repro.apps as apps

        program = getattr(apps, make_app)().program
        assert parse_policy(pretty_policy(program)) == program
