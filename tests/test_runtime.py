"""Tests for the operational semantics (Figure 7) and its compiler:
tags, digests, event detection, per-packet consistency, and the
application-level behaviors of all five case studies."""

import pytest

from repro.apps import (
    authentication_app,
    bandwidth_cap_app,
    firewall_app,
    ids_app,
    learning_switch_app,
)
from repro.runtime.compiler import TAG_FIELD, LocalityError, compile_nes
from repro.runtime.semantics import Runtime, RuntimeInvariantError


H1, H2, H3, H4 = 1, 2, 3, 4


class TestCompiledNES:
    def test_tag_encoding_roundtrip(self):
        app = bandwidth_cap_app(3)
        compiled = app.compiled
        for event_set in compiled.event_sets:
            mask = compiled.encode_digest(event_set)
            assert compiled.decode_digest(mask) == event_set

    def test_distinct_tags_per_state(self):
        compiled = firewall_app().compiled
        assert len(set(compiled.config_ids.values())) == len(compiled.states)

    def test_guarded_tables_have_tag_guards(self):
        compiled = firewall_app().compiled
        for table in compiled.guarded_tables().values():
            for rule in table:
                assert rule.match.get(TAG_FIELD) is not None

    def test_rule_counts_add_up(self):
        compiled = firewall_app().compiled
        assert (
            compiled.total_rule_count()
            == compiled.forwarding_rule_count() + compiled.stamp_rule_count()
        )

    def test_locality_enforced(self):
        """A non-locally-determined NES is refused by compile_nes."""
        from repro.events.ets_to_nes import nes_of_ets
        from repro.netkat.ast import assign, filter_, seq, union
        from repro.stateful.ast import link_update, state_eq
        from repro.stateful.ets import build_ets
        from repro.topology import star_topology

        # Two conflicting events at different switches (program P1).
        prog = union(
            seq(filter_(state_eq([0])), link_update("4:1", "1:1", [1])),
            seq(filter_(state_eq([0])), link_update("4:3", "2:1", [2])),
        )
        nes = nes_of_ets(build_ets(prog, (0,)))
        with pytest.raises(LocalityError):
            compile_nes(nes, star_topology())

    def test_locality_enforcement_can_be_disabled(self):
        from repro.events.ets_to_nes import nes_of_ets
        from repro.netkat.ast import filter_, seq, union
        from repro.stateful.ast import link_update, state_eq
        from repro.stateful.ets import build_ets
        from repro.topology import star_topology

        prog = union(
            seq(filter_(state_eq([0])), link_update("4:1", "1:1", [1])),
            seq(filter_(state_eq([0])), link_update("4:3", "2:1", [2])),
        )
        nes = nes_of_ets(build_ets(prog, (0,)))
        compiled = compile_nes(nes, star_topology(), enforce_locality=False)
        assert compiled is not None


class TestFirewallRuntime:
    def test_blocked_before_event(self):
        rt = firewall_app().runtime()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        assert len(rt.state.dropped) == 1 and not rt.state.delivered

    def test_event_opens_reverse_path(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        assert len(rt.state.delivered) == 1
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        assert len(rt.state.delivered) == 2

    def test_event_recorded_at_s4(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        assert len(rt.state.switch(4).known_events) == 1
        # s1 has not heard yet: no packet flowed back
        assert not rt.state.switch(1).known_events

    def test_digest_gossip_reaches_s1(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        # the reply carried the digest to s1
        assert len(rt.state.switch(1).known_events) == 1

    def test_event_reported_to_controller_queue(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        assert len(rt.state.controller_queue | rt.state.controller) == 1

    def test_drain_controller(self):
        rt = firewall_app().runtime(controller_assist=True)
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        rt.drain_controller()
        # with assist, every switch now knows the event
        for switch in rt.state.switches.values():
            assert len(switch.known_events) == 1

    def test_per_packet_consistency_tag_fixed_at_ingress(self):
        """A packet stamped in Ci keeps using Ci even after the event."""
        rt = firewall_app().runtime()
        packet = rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        assert packet.tag == frozenset()
        rt.run_until_quiescent()


class TestLearningSwitchRuntime:
    def test_flooding_before_learning(self):
        rt = learning_switch_app().runtime()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        hosts = sorted(
            rt.compiled.topology.host_at(loc).name for loc, _ in rt.state.delivered
        )
        assert hosts == ["H1", "H2"]  # flooded to both

    def test_point_to_point_after_learning(self):
        rt = learning_switch_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})  # the learning event
        rt.run_until_quiescent()
        before = len(rt.state.delivered)
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        new = rt.state.delivered[before:]
        hosts = sorted(rt.compiled.topology.host_at(loc).name for loc, _ in new)
        assert hosts == ["H1"]  # no more flooding


class TestAuthenticationRuntime:
    def knock(self, rt, dst):
        rt.inject("H4", {"ip_dst": dst, "ip_src": H4})
        rt.run_until_quiescent()

    def reply(self, rt, src):
        rt.inject(f"H{src}", {"ip_dst": H4, "ip_src": src})
        rt.run_until_quiescent()

    def test_h3_blocked_initially(self):
        rt = authentication_app().runtime()
        self.knock(rt, H3)
        assert not rt.state.delivered

    def test_knock_sequence_grants_access(self):
        rt = authentication_app().runtime()
        self.knock(rt, H1)
        self.reply(rt, H1)  # reply carries the digest back to s4
        self.knock(rt, H2)
        self.reply(rt, H2)
        before = len(rt.state.delivered)
        self.knock(rt, H3)
        assert len(rt.state.delivered) == before + 1

    def test_wrong_order_does_not_unlock(self):
        rt = authentication_app().runtime()
        self.knock(rt, H2)  # H2 first: no event in state [0]
        self.knock(rt, H3)
        assert not any(
            rt.compiled.topology.host_at(loc).name == "H3"
            for loc, _ in rt.state.delivered
        )


class TestBandwidthCapRuntime:
    def exchange(self, rt):
        """One full ping: H1->H4 then H4->H1 reply; count reply delivery."""
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        before = len(rt.state.delivered)
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        return len(rt.state.delivered) > before

    @pytest.mark.parametrize("cap", [1, 3, 5])
    def test_exactly_cap_replies_allowed(self, cap):
        rt = bandwidth_cap_app(cap).runtime()
        successes = sum(1 for _ in range(cap + 3) if self.exchange(rt))
        assert successes == cap

    def test_outgoing_still_allowed_after_cap(self):
        cap = 2
        rt = bandwidth_cap_app(cap).runtime()
        for _ in range(cap + 2):
            self.exchange(rt)
        outgoing = [
            1
            for loc, _ in rt.state.delivered
            if rt.compiled.topology.host_at(loc).name == "H4"
        ]
        assert len(outgoing) == cap + 2  # requests keep flowing


class TestIDSRuntime:
    def contact(self, rt, dst, with_reply=True):
        rt.inject("H4", {"ip_dst": dst, "ip_src": H4})
        rt.run_until_quiescent()
        if with_reply:
            rt.inject(f"H{dst}", {"ip_dst": H4, "ip_src": dst})
            rt.run_until_quiescent()

    def delivered_to(self, rt, name):
        return sum(
            1
            for loc, _ in rt.state.delivered
            if rt.compiled.topology.host_at(loc).name == name
        )

    def test_all_hosts_reachable_initially(self):
        rt = ids_app().runtime()
        for dst in (H3, H2, H1):
            self.contact(rt, dst, with_reply=False)
        assert self.delivered_to(rt, "H3") == 1
        assert self.delivered_to(rt, "H2") == 1
        assert self.delivered_to(rt, "H1") == 1

    def test_scan_signature_blocks_h3(self):
        rt = ids_app().runtime()
        self.contact(rt, H1)  # event 1
        self.contact(rt, H2)  # event 2 (scan detected)
        before = self.delivered_to(rt, "H3")
        self.contact(rt, H3, with_reply=False)
        assert self.delivered_to(rt, "H3") == before  # blocked

    def test_benign_order_keeps_h3_open(self):
        rt = ids_app().runtime()
        self.contact(rt, H2)  # H2 before H1: not the signature
        self.contact(rt, H3, with_reply=False)
        assert self.delivered_to(rt, "H3") == 1


class TestRuntimeInvariants:
    def test_trace_extraction_covers_everything(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        trace = rt.network_trace()
        assert len(trace.trace_indices) == 2

    def test_pending_packets_counted(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        assert rt.state.total_pending() == 1
        assert not rt.state.quiescent()
        rt.run_until_quiescent()
        assert rt.state.quiescent()

    def test_fifo_policy_deterministic(self):
        def run():
            rt = firewall_app().runtime()
            rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
            rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
            rt.run_until_quiescent(policy="fifo")
            return [repr(p) for p in rt.network_trace().packets]

        assert run() == run()

    def test_unknown_host_rejected(self):
        rt = firewall_app().runtime()
        with pytest.raises(KeyError):
            rt.inject("H9", {"ip_dst": 1})
