"""Tests for event-driven consistent updates: FO (first occurrences),
Definition 2 correctness, and the Definition 6 NES checker -- on
hand-built traces covering both correct and incorrect behaviors."""

import pytest

from repro.apps import firewall_app
from repro.consistency.checker import NESChecker, check_trace_against_nes
from repro.consistency.traces import NetworkTrace
from repro.consistency.update import (
    EventDrivenUpdate,
    check_update_correctness,
    first_occurrences,
)
from repro.events.event import Event
from repro.formula import EQ, Formula, Literal
from repro.netkat.packet import LocatedPacket, Location, Packet


def lp(sw, pt, **fields):
    return LocatedPacket.of(Packet({"sw": sw, "pt": pt, **fields}))


H1, H4 = 1, 4
EVENT = Event(Formula((Literal("ip_dst", EQ, H4),)), Location(4, 1))

# Trace positions for the firewall scenario:
#  pkt A (H1->H4): 1:2, 1:1, 4:1, 4:2        (triggers the event at 4:1)
#  pkt B (H4->H1) after A: 4:2, 4:1, 1:1, 1:2 (allowed in Cf)
A = [lp(1, 2, ip_dst=H4), lp(1, 1, ip_dst=H4), lp(4, 1, ip_dst=H4), lp(4, 2, ip_dst=H4)]
B = [lp(4, 2, ip_dst=H1), lp(4, 1, ip_dst=H1), lp(1, 1, ip_dst=H1), lp(1, 2, ip_dst=H1)]


@pytest.fixture(scope="module")
def app():
    return firewall_app()


@pytest.fixture(scope="module")
def checker(app):
    return NESChecker(app.nes, app.topology)


@pytest.fixture(scope="module")
def update(app, checker):
    ci = checker.config_of_event_set(frozenset())
    cf = checker.config_of_event_set(frozenset({EVENT}))
    return EventDrivenUpdate.single(ci, EVENT, cf)


def good_trace():
    """A then B: B is processed entirely in Cf."""
    packets = tuple(A + B)
    return NetworkTrace(packets, frozenset({(0, 1, 2, 3), (4, 5, 6, 7)}))


def b_dropped_after_event_trace():
    """A then B, but B is dropped at s4 -- the 'too late' violation."""
    packets = tuple(A + B[:1])
    return NetworkTrace(packets, frozenset({(0, 1, 2, 3), (4,)}))


def b_delivered_before_event_trace():
    """B delivered *before* any event -- the 'too early' violation."""
    packets = tuple(B + A)
    return NetworkTrace(packets, frozenset({(0, 1, 2, 3), (4, 5, 6, 7)}))


def b_dropped_before_event_trace():
    """B dropped at ingress before the event: correct in Ci."""
    packets = tuple(B[:1] + A)
    return NetworkTrace(packets, frozenset({(0,), (1, 2, 3, 4)}))


class TestFirstOccurrences:
    def test_fo_found(self, update):
        fo = first_occurrences(good_trace(), update)
        assert fo == (2,)  # A's arrival at 4:1

    def test_fo_missing_event(self, update):
        trace = NetworkTrace(tuple(B[:1]), frozenset({(0,)}))
        assert first_occurrences(trace, update) is None

    def test_fo_requires_trigger_in_preceding_config(self, app, checker):
        """The event-matching packet must have been processed by Ci."""
        ci = checker.config_of_event_set(frozenset())
        cf = checker.config_of_event_set(frozenset({EVENT}))
        update = EventDrivenUpdate.single(ci, EVENT, cf)
        # A is cut short (dropped mid-path): its trace is in no Traces(Ci).
        packets = tuple(A[:3])
        trace = NetworkTrace(packets, frozenset({(0, 1, 2)}))
        assert first_occurrences(trace, update) is None


class TestDefinition2:
    def test_good_trace_correct(self, update):
        assert check_update_correctness(good_trace(), update)

    def test_too_late_violation(self, update):
        report = check_update_correctness(b_dropped_after_event_trace(), update)
        assert not report
        assert "too late" in report.reason

    def test_too_early_violation(self, update):
        report = check_update_correctness(b_delivered_before_event_trace(), update)
        assert not report

    def test_drop_before_event_correct(self, update):
        assert check_update_correctness(b_dropped_before_event_trace(), update)

    def test_update_shape_validated(self, update):
        with pytest.raises(ValueError):
            EventDrivenUpdate((update.configurations[0],), (EVENT,), frozenset({EVENT}))

    def test_events_must_be_ambient(self, update):
        other = Event(Formula(), Location(9, 9))
        with pytest.raises(ValueError):
            EventDrivenUpdate(update.configurations, (other,), frozenset({EVENT}))


class TestDefinition6:
    def test_good_trace_correct(self, app, checker):
        assert checker.check(good_trace())

    def test_too_late_rejected(self, app, checker):
        report = checker.check(b_dropped_after_event_trace())
        assert not report

    def test_too_early_rejected(self, app, checker):
        assert not checker.check(b_delivered_before_event_trace())

    def test_quiet_case_correct(self, app, checker):
        """No event fires and the packet is dropped as Ci dictates."""
        trace = NetworkTrace(tuple(B[:1]), frozenset({(0,)}))
        assert checker.check(trace)

    def test_quiet_case_violation(self, app, checker):
        """No event fires but a packet is delivered against Ci."""
        trace = NetworkTrace(tuple(B), frozenset({(0, 1, 2, 3)}))
        report = checker.check(trace)
        assert not report

    def test_convenience_wrapper(self, app):
        assert check_trace_against_nes(good_trace(), app.nes, app.topology)

    def test_config_cache_reused(self, checker):
        c1 = checker.config_of_event_set(frozenset())
        c2 = checker.config_of_event_set(frozenset())
        assert c1 is c2
