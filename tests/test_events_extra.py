"""Additional event-layer tests: Event matching, NES edge cases, and a
property-based check that random well-formed ETSs convert soundly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events.ets_to_nes import ETSConversionError, family_of_ets, nes_of_ets
from repro.events.event import Event
from repro.formula import EQ, Formula, Literal, NE
from repro.netkat.ast import assign
from repro.netkat.packet import LocatedPacket, Location, Packet
from repro.stateful.ets import ETS
from repro.stateful.events import EventEdge


def lp(sw, pt, **fields):
    return LocatedPacket.of(Packet({"sw": sw, "pt": pt, **fields}))


class TestEventMatching:
    def test_location_and_guard_both_required(self):
        e = Event(Formula((Literal("ip_dst", EQ, 4),)), Location(4, 1))
        assert e.matches(lp(4, 1, ip_dst=4))
        assert not e.matches(lp(4, 2, ip_dst=4))  # wrong port
        assert not e.matches(lp(1, 1, ip_dst=4))  # wrong switch
        assert not e.matches(lp(4, 1, ip_dst=9))  # guard fails

    def test_true_guard_matches_any_packet_there(self):
        e = Event(Formula(), Location(2, 3))
        assert e.matches(lp(2, 3))
        assert e.matches(lp(2, 3, anything=7))

    def test_negative_guard(self):
        e = Event(Formula((Literal("ip_dst", NE, 4),)), Location(4, 1))
        assert e.matches(lp(4, 1, ip_dst=5))
        assert not e.matches(lp(4, 1, ip_dst=4))

    def test_renaming_does_not_affect_matching(self):
        base = Event(Formula(), Location(1, 1))
        assert base.renamed(3).matches(lp(1, 1))

    def test_base_and_renamed(self):
        e = Event(Formula(), Location(1, 1), eid=2)
        assert e.base().eid == 0
        assert e.base().renamed(2) == e

    def test_repr_shows_occurrence(self):
        e = Event(Formula(), Location(1, 1), eid=3)
        assert "_3" in repr(e)
        assert "_" not in repr(e.base()).split(",")[-1]


# -- random chain/diamond/tree ETSs should always convert -------------------


@st.composite
def random_tree_ets(draw):
    """A random ETS whose underlying graph is a tree (always convertible
    when every edge carries a unique event and configs are distinct)."""
    n_states = draw(st.integers(1, 6))
    states = [(i,) for i in range(n_states)]
    edges = []
    for i in range(1, n_states):
        parent = draw(st.integers(0, i - 1))
        event = Event(
            Formula((Literal("f", EQ, i),)), Location(draw(st.integers(1, 3)), 1)
        )
        edges.append(EventEdge(states[parent], event, states[i]))
    vertices = tuple((s, assign("cfg", i)) for i, s in enumerate(states))
    return ETS(initial=states[0], vertices=vertices, edges=frozenset(edges))


class TestRandomETSConversion:
    @given(random_tree_ets())
    @settings(max_examples=80, deadline=None)
    def test_tree_ets_always_converts(self, ets):
        nes = nes_of_ets(ets)
        # Every ETS state reachable from the root appears as some
        # event-set's image.
        images = {nes.state_of(s) for s in nes.event_sets()}
        assert ets.initial in images

    @given(random_tree_ets())
    @settings(max_examples=80, deadline=None)
    def test_family_matches_structure_event_sets(self, ets):
        nes = nes_of_ets(ets)
        assert nes.structure.event_sets() == nes.event_sets()

    @given(random_tree_ets())
    @settings(max_examples=50, deadline=None)
    def test_every_allowed_sequence_lands_in_family(self, ets):
        nes = nes_of_ets(ets)
        for sequence in nes.structure.allowed_sequences(max_length=4):
            assert frozenset(sequence) in nes.event_sets()


class TestNESOnPolicies:
    def test_config_lookup_by_event_set_and_state(self):
        e = Event(Formula(), Location(1, 1))
        ets = ETS(
            initial=(0,),
            vertices=(((0,), assign("cfg", 0)), ((1,), assign("cfg", 1))),
            edges=frozenset({EventEdge((0,), e, (1,))}),
        )
        nes = nes_of_ets(ets)
        assert nes.config_of(frozenset()) == assign("cfg", 0)
        assert nes.config_of(frozenset({e})) == assign("cfg", 1)
        assert nes.configuration_policy((1,)) == assign("cfg", 1)

    def test_configuration_states_sorted(self):
        e = Event(Formula(), Location(1, 1))
        ets = ETS(
            initial=(0,),
            vertices=(((0,), assign("cfg", 0)), ((1,), assign("cfg", 1))),
            edges=frozenset({EventEdge((0,), e, (1,))}),
        )
        nes = nes_of_ets(ets)
        assert nes.configuration_states() == ((0,), (1,))
