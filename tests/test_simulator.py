"""Tests for the discrete-event simulator, traffic generators, and the
correct (tag-based) simulation logic."""

import pytest

from repro.apps import firewall_app, learning_switch_app, ring_app, SIGNAL_FIELD
from repro.baselines import ReferenceLogic
from repro.netkat.packet import Packet
from repro.network import (
    CorrectLogic,
    Frame,
    LinkParams,
    SimNetwork,
    Simulator,
    goodput,
    install_ping_responders,
    ping_outcomes,
    send_bulk,
    send_ping,
)


class TestSimulatorCore:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append("first"))
        sim.schedule(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, lambda: log.append("late"))
        assert sim.run(until=1.0) == 1.0
        assert not log

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: log.append("x")))
        sim.run()
        assert log == ["x"] and sim.now == 2.0


class TestSimNetworkForwarding:
    def test_ping_roundtrip(self):
        app = firewall_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        install_ping_responders(net)
        send_ping(net, "H1", "H4", 1, 0.1)
        net.run(until=5.0)
        outcomes = ping_outcomes(net, [("H1", "H4", 1, 0.1)])
        assert outcomes[0].succeeded
        assert outcomes[0].completed_at > 0.1

    def test_blocked_ping_recorded_as_drop(self):
        app = firewall_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        install_ping_responders(net)
        send_ping(net, "H4", "H1", 1, 0.1)
        net.run(until=5.0)
        assert len(net.drops) == 1
        assert not ping_outcomes(net, [("H4", "H1", 1, 0.1)])[0].succeeded

    def test_flood_delivers_two_copies(self):
        app = learning_switch_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        send_ping(net, "H4", "H1", 1, 0.1)
        net.run(until=5.0)
        assert {d.host for d in net.deliveries} == {"H1", "H2"}

    def test_bystander_does_not_reply(self):
        """A flooded copy delivered to H2 must not generate a reply."""
        app = learning_switch_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        install_ping_responders(net)
        send_ping(net, "H4", "H1", 1, 0.1)
        net.run(until=5.0)
        replies = [d for d in net.deliveries if d.frame.flow[0] == "ping-reply"]
        assert len(replies) == 1  # only H1 answered

    def test_event_learned_times_recorded(self):
        app = firewall_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        install_ping_responders(net)
        send_ping(net, "H1", "H4", 1, 0.1)
        net.run(until=5.0)
        switches = {sw for (sw, _e) in net.event_learned_at}
        assert 4 in switches  # s4 detected the event
        assert 1 in switches  # the reply gossiped it back to s1


class TestLinkModel:
    def test_latency_delays_delivery(self):
        app = firewall_app()
        slow = LinkParams(latency=0.5, capacity=1e9)
        net = SimNetwork(
            app.topology,
            CorrectLogic(app.compiled),
            seed=0,
            default_link=slow,
        )
        send_ping(net, "H1", "H4", 1, 0.0)
        net.run(until=5.0)
        (delivery,) = [d for d in net.deliveries if d.host == "H4"]
        assert delivery.time >= 0.5

    def test_capacity_serializes_packets(self):
        app = firewall_app()
        thin = LinkParams(latency=0.0, capacity=1000.0)  # 1 KB/s
        net = SimNetwork(
            app.topology,
            CorrectLogic(app.compiled),
            seed=0,
            default_link=thin,
        )
        send_bulk(net, "H1", "H4", packets=3, payload_bytes=1000)
        net.run(until=60.0)
        times = sorted(d.time for d in net.deliveries if d.host == "H4")
        assert len(times) == 3
        # each ~1KB+hdr packet needs > 1 second of link time
        assert times[1] - times[0] >= 1.0

    def test_goodput_measured(self):
        app = firewall_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        send_bulk(net, "H1", "H4", packets=50)
        net.run(until=60.0)
        assert goodput(net, "H1", "H4") > 0


class TestOverheadAccounting:
    def test_tagged_headers_larger_than_reference(self):
        app = firewall_app()
        correct = CorrectLogic(app.compiled)
        reference = ReferenceLogic(
            app.compiled.config_for_state(app.compiled.nes.initial_state)
        )
        frame = Frame(packet=Packet({}))
        assert correct.header_bytes(frame) > reference.header_bytes(frame)

    def test_tagged_goodput_slightly_lower(self):
        app = ring_app(2)
        fast = LinkParams(latency=0.001, capacity=1.25e9)

        def bw(logic):
            net = SimNetwork(
                app.topology, logic, seed=5, default_link=fast, switch_delay=1e-4
            )
            send_bulk(net, "H1", "H2", packets=200)
            net.run(until=120.0)
            return goodput(net, "H1", "H2")

        ref = bw(
            ReferenceLogic(
                app.compiled.config_for_state(app.compiled.nes.initial_state)
            )
        )
        ours = bw(CorrectLogic(app.compiled))
        assert ours < ref
        assert ours > 0.85 * ref  # overhead bounded (~6% in the paper)


class TestRingSignal:
    def test_signal_flips_forwarding(self):
        app = ring_app(2)
        logic = CorrectLogic(app.compiled)
        net = SimNetwork(app.topology, logic, seed=0)
        install_ping_responders(net)
        # before the signal: clockwise forwarding works
        send_ping(net, "H1", "H2", 1, 0.1)
        net.run(until=1.0)
        assert ping_outcomes(net, [("H1", "H2", 1, 0.1)])[0].succeeded
        # signal at t=1.0
        signal = Frame(
            packet=Packet({"ip_src": 1, SIGNAL_FIELD: 1, "kind": 0, "ident": 0}),
            flow=("signal",),
        )
        net.inject("H1", signal, at=1.0)
        net.run(until=2.0)
        event_switch = 2 + 1  # diameter + 1
        assert any(sw == event_switch for (sw, _e) in net.event_learned_at)
        # after the signal: pings still complete (via the new path)
        send_ping(net, "H1", "H2", 2, 2.5)
        net.run(until=6.0)
        assert ping_outcomes(net, [("H1", "H2", 2, 2.5)])[0].succeeded
