"""End-to-end tests for the compilation service.

Everything here runs against a live localhost daemon
(:func:`repro.service.serve_in_thread` around a real
``ThreadingHTTPServer``) talked to through the real urllib client — the
wire, the handlers, and the shared state are all exercised exactly as a
deployment would.  The invariants pinned:

- **byte identity**: tables served over HTTP equal a direct
  :class:`~repro.pipeline.Pipeline` build, per switch, byte for byte, on
  all seven seed apps — and the served artifact key equals the direct
  build's, so the wire round-trip (pretty-print -> parse) is invisible
  to the content-addressed cache;
- **single flight**: N concurrent identical requests run exactly one
  cold compile, observable in ``GET /stats``;
- **/update**: incremental recompilation over the wire matches a cold
  rebuild of the post-delta inputs;
- **chaos**: a fault plan installed server-side yields a typed JSON
  error with stage provenance — never a wrong table — and the daemon
  serves correct tables immediately after;
- **strict cache**: a tampered shared cache under ``--strict-cache``
  surfaces as a 503 and flips ``GET /health`` non-200.
"""

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import CompileOptions, Delta, Pipeline, faults
from repro.apps import firewall_app, ids_app, ring_app
from repro.pipeline import ArtifactCache, _topology_fingerprint
from repro.service import (
    ServiceClient,
    ServiceError,
    create_server,
    serve_in_thread,
)
from repro.service import protocol
from repro.service.state import ServiceState, UnknownArtifactError

from seed_apps import APPS


@contextmanager
def fresh_service(**kwargs):
    """A throwaway daemon on an ephemeral port, torn down on exit."""
    server = create_server(**kwargs)
    with serve_in_thread(server) as url:
        yield ServiceClient(url), server


@pytest.fixture(scope="module")
def shared_service(tmp_path_factory):
    """One daemon (with an on-disk cache) shared by the read-mostly
    tests; tests that assert on counters spin up their own."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    server = create_server(options=CompileOptions(cache_dir=str(cache_dir)))
    with serve_in_thread(server) as url:
        yield ServiceClient(url)


def raw_request(client, method, path, data=None, headers=None):
    """An uncooked HTTP exchange, for malformed-wire cases the typed
    client cannot produce; returns ``(status, parsed body)``."""
    request = urllib.request.Request(
        f"{client.base_url}{path}",
        data=data,
        headers=headers or {},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ---------------------------------------------------------------------------
# Byte identity: served tables == direct Pipeline build, all seven apps
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
def test_served_tables_byte_identical_to_direct_build(
    name, make, shared_service
):
    app = make()
    result = shared_service.compile(
        app.program, app.topology, app.initial_state
    )
    direct = Pipeline(app.program, app.topology, app.initial_state)
    assert result["tables"] == protocol.tables_to_wire(direct.compiled)
    # The wire round-trip is key-invisible: the served artifact is the
    # same cache tenant a local build would read and write.
    assert result["artifact_key"] == direct.artifact_key()
    assert result["source"] in ("memo", "disk", "cold")
    assert result["report"]["stages"].keys() >= {"compile"}


def test_repeat_request_is_a_memo_hit(shared_service):
    app = firewall_app()
    first = shared_service.compile(
        app.program, app.topology, app.initial_state
    )
    again = shared_service.compile(
        app.program, app.topology, app.initial_state
    )
    assert again["source"] == "memo"
    assert again["artifact_key"] == first["artifact_key"]
    assert again["tables"] == first["tables"]


def test_disk_cache_warms_a_restarted_daemon(tmp_path):
    """The on-disk artifact cache is shared tenancy: a fresh daemon over
    the same directory serves its first request from disk."""
    app = ids_app()
    options = CompileOptions(cache_dir=str(tmp_path))
    with fresh_service(options=options) as (client, _):
        cold = client.compile(app.program, app.topology, app.initial_state)
        assert cold["source"] == "cold"
    with fresh_service(options=options) as (client, _):
        warm = client.compile(app.program, app.topology, app.initial_state)
        assert warm["source"] == "disk"
        assert warm["tables"] == cold["tables"]
        assert client.stats()["compiles"]["disk_hits"] == 1


# ---------------------------------------------------------------------------
# Single flight: N identical concurrent requests, ONE compile
# ---------------------------------------------------------------------------


def test_concurrent_identical_requests_compile_once():
    app = ring_app(4)
    workers = 8
    with fresh_service() as (client, _):
        barrier = threading.Barrier(workers)
        results = [None] * workers

        def request(slot):
            barrier.wait()
            results[slot] = client.compile(
                app.program, app.topology, app.initial_state
            )

        threads = [
            threading.Thread(target=request, args=(slot,))
            for slot in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        compiles = client.stats()["compiles"]
        assert compiles["cold"] == 1
        # Everyone else adopted the one compile: either by waiting on
        # the flight lock (coalesced) or by arriving after it was
        # memoized (memo hit) — but nobody compiled again.
        assert (
            compiles["memo_hits"] + compiles["singleflight_coalesced"]
            == workers - 1
        )

        keys = {result["artifact_key"] for result in results}
        tables = [result["tables"] for result in results]
        assert len(keys) == 1
        assert all(entry == tables[0] for entry in tables)


# ---------------------------------------------------------------------------
# /update: incremental recompilation over the wire
# ---------------------------------------------------------------------------


class TestUpdate:
    def test_update_matches_cold_rebuild(self, shared_service):
        app = ids_app()
        base = shared_service.compile(
            app.program, app.topology, app.initial_state
        )
        delta = Delta(set_state=((0, 1),))
        updated = shared_service.update(base["artifact_key"], delta)

        cold = Pipeline(
            app.program,
            app.topology,
            delta.apply_initial_state(app.initial_state),
        )
        assert updated["tables"] == protocol.tables_to_wire(cold.compiled)
        assert updated["artifact_key"] == cold.artifact_key()
        assert updated["artifact_key"] != base["artifact_key"]
        assert updated["source"] == "update"
        assert "update.reuse_percent" in updated["report"]["stats"]

    def test_updated_pipeline_is_memoized_under_its_new_key(
        self, shared_service
    ):
        app = ids_app()
        base = shared_service.compile(
            app.program, app.topology, app.initial_state
        )
        delta = Delta(set_state=((0, 1),))
        updated = shared_service.update(base["artifact_key"], delta)
        again = shared_service.compile(
            app.program,
            app.topology,
            delta.apply_initial_state(app.initial_state),
        )
        assert again["source"] == "memo"
        assert again["artifact_key"] == updated["artifact_key"]

    def test_update_accepts_wire_dict_deltas(self, shared_service):
        app = firewall_app()
        base = shared_service.compile(
            app.program, app.topology, app.initial_state
        )
        updated = shared_service.update(
            base["artifact_key"], {"set_state": [[0, 1]]}
        )
        cold = Pipeline(app.program, app.topology, (1,) + tuple(
            app.initial_state[1:]
        ))
        assert updated["tables"] == protocol.tables_to_wire(cold.compiled)

    def test_unknown_artifact_key_is_a_404(self, shared_service):
        with pytest.raises(ServiceError) as excinfo:
            shared_service.update("no-such-key", Delta(set_state=((0, 1),)))
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_artifact_key"

    def test_evicted_key_is_a_404(self):
        """A memo_size=1 daemon forgets the first app when the second
        arrives; /update against the evicted key tells the client to
        fall back to /compile."""
        first, second = firewall_app(), ids_app()
        with fresh_service(memo_size=1) as (client, _):
            base = client.compile(
                first.program, first.topology, first.initial_state
            )
            client.compile(
                second.program, second.topology, second.initial_state
            )
            memo = client.stats()["memo"]
            assert memo == {"size": 1, "capacity": 1, "evictions": 1}
            with pytest.raises(ServiceError) as excinfo:
                client.update(base["artifact_key"], Delta(set_state=((0, 1),)))
            assert excinfo.value.status == 404


# ---------------------------------------------------------------------------
# Chaos: server-side fault plan => typed JSON error, never a wrong table
# ---------------------------------------------------------------------------


def test_injected_stage_fault_is_a_typed_error_with_provenance():
    app = firewall_app()
    direct = Pipeline(app.program, app.topology, app.initial_state)
    with fresh_service() as (client, _):
        plan = faults.FaultPlan({"stage.compile": faults.FaultRule(max_fires=1)})
        with faults.injected(plan):
            with pytest.raises(ServiceError) as excinfo:
                client.compile(app.program, app.topology, app.initial_state)
        assert plan.fires("stage.compile") == 1
        assert excinfo.value.status == 422
        assert excinfo.value.error["type"] == "StageError"
        assert excinfo.value.stage == "compile"

        # The failed compile was not memoized: with the plan gone the
        # daemon serves the correct tables — a fault yields an error or
        # the right answer, never a wrong table.
        result = client.compile(app.program, app.topology, app.initial_state)
        assert result["source"] == "cold"
        assert result["tables"] == protocol.tables_to_wire(direct.compiled)
        ok, body = client.health()
        assert ok and body["integrity_errors"] == 0


def test_tampered_strict_cache_fails_health(tmp_path):
    """The acceptance chaos case for the shared cache: under
    ``strict_cache`` a bit-flipped artifact is a 503 with a
    machine-readable cause, and /health goes (and stays) non-200."""
    first, second = firewall_app(), ids_app()
    options = CompileOptions(
        cache_dir=str(tmp_path), cache_hmac_key="service-key",
        strict_cache=True,
    )
    with fresh_service(options=options, memo_size=1) as (client, _):
        base = client.compile(
            first.program, first.topology, first.initial_state
        )
        # Evict the first pipeline from the memo so the re-request must
        # go back to the (about to be tampered) disk artifact.
        client.compile(second.program, second.topology, second.initial_state)

        path = ArtifactCache(tmp_path).path(base["artifact_key"])
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))

        with pytest.raises(ServiceError) as excinfo:
            client.compile(first.program, first.topology, first.initial_state)
        assert excinfo.value.status == 503
        assert excinfo.value.error["type"] == "ArtifactIntegrityError"
        assert excinfo.value.stage == "cache"

        ok, body = client.health()
        assert not ok
        assert body["integrity_errors"] == 1
        assert body["strict_cache"] is True


# ---------------------------------------------------------------------------
# Wire hygiene: malformed input => structured 4xx, never a bare 500
# ---------------------------------------------------------------------------


class TestProtocolErrors:
    def test_unparseable_program_is_a_400(self, shared_service):
        app = firewall_app()
        with pytest.raises(ServiceError) as excinfo:
            shared_service.compile("filter (", app.topology, (0,))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "parse_error"

    def test_server_owned_option_fields_are_rejected(self, shared_service):
        app = firewall_app()
        for forbidden in ("cache_dir", "cache_hmac_key", "strict_cache"):
            with pytest.raises(ServiceError) as excinfo:
                shared_service.compile(
                    app.program, app.topology, app.initial_state,
                    options={forbidden: "anything"},
                )
            assert excinfo.value.status == 400
            assert excinfo.value.code == "bad_options"

    def test_unknown_option_field_fails_loudly(self, shared_service):
        app = firewall_app()
        with pytest.raises(ServiceError) as excinfo:
            shared_service.compile(
                app.program, app.topology, app.initial_state,
                options={"backnd": "thread"},
            )
        assert excinfo.value.status == 400
        assert "backnd" in str(excinfo.value)

    def test_missing_required_field_is_a_400(self, shared_service):
        status, body = raw_request(
            shared_service, "POST", "/compile",
            data=json.dumps({"program": "drop"}).encode(),
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "topology" in body["error"]["message"]

    def test_unknown_request_field_is_a_400(self, shared_service):
        app = firewall_app()
        wire = protocol.compile_request_to_wire(
            app.program, app.topology, app.initial_state
        )
        wire["cache_dir"] = "/tmp/nope"
        status, body = raw_request(
            shared_service, "POST", "/compile", data=json.dumps(wire).encode()
        )
        assert status == 400
        assert "cache_dir" in body["error"]["message"]

    def test_non_json_body_is_a_400(self, shared_service):
        status, body = raw_request(
            shared_service, "POST", "/compile", data=b"definitely not json"
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_nonpositive_deadline_is_a_400(self, shared_service):
        app = firewall_app()
        with pytest.raises(ServiceError) as excinfo:
            shared_service.compile(
                app.program, app.topology, app.initial_state,
                deadline_seconds=-1,
            )
        assert excinfo.value.status == 400

    def test_unknown_endpoint_is_a_404_with_an_index(self, shared_service):
        status, body = raw_request(shared_service, "GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "unknown_endpoint"
        assert "POST /compile" in body["error"]["endpoints"]


# ---------------------------------------------------------------------------
# Batch, options, deadline, introspection endpoints
# ---------------------------------------------------------------------------


def test_batch_isolates_per_entry_failures(shared_service):
    app = firewall_app()
    results = shared_service.compile_batch([
        shared_service.compile_request(
            app.program, app.topology, app.initial_state
        ),
        {"program": "filter (", "topology": protocol.topology_to_wire(
            app.topology
        ), "initial_state": [0]},
    ])
    assert len(results) == 2
    good, bad = results
    assert good["artifact_key"]
    assert good["tables"]
    assert bad["status"] == 400
    assert bad["error"]["code"] == "parse_error"


def test_include_tables_false_omits_tables(shared_service):
    app = firewall_app()
    result = shared_service.compile(
        app.program, app.topology, app.initial_state, include_tables=False
    )
    assert "tables" not in result
    assert result["artifact_key"]


def test_request_options_and_deadline_do_not_perturb_the_key(shared_service):
    """backend/deadline are execution-only: a request naming them is the
    same cache tenant as one that doesn't."""
    app = firewall_app()
    plain = shared_service.compile(
        app.program, app.topology, app.initial_state
    )
    tuned = shared_service.compile(
        app.program, app.topology, app.initial_state,
        options={"backend": "thread", "max_workers": 2},
        deadline_seconds=60.0,
    )
    assert tuned["artifact_key"] == plain["artifact_key"]
    assert tuned["tables"] == plain["tables"]


def test_version_reports_package_and_protocol(shared_service):
    body = shared_service.version()
    assert body["package"]
    assert body["protocol"] == protocol.PROTOCOL_VERSION
    assert body["artifact_format"] >= 1


def test_health_is_ok_on_a_clean_daemon(shared_service):
    ok, body = shared_service.health()
    assert ok
    assert body["ok"] is True
    assert body["integrity_errors"] == 0


def test_stats_reports_endpoint_latency_quantiles(shared_service):
    app = firewall_app()
    shared_service.compile(app.program, app.topology, app.initial_state)
    shared_service.version()
    stats = shared_service.stats()
    assert stats["compiles"]["cold"] >= 1
    endpoint = stats["endpoints"]["version"]
    assert endpoint["count"] >= 1
    assert set(endpoint["latency"]) == {"p50_ms", "p90_ms", "p99_ms", "max_ms"}
    assert stats["memo"]["size"] >= 1


def test_index_lists_endpoints(shared_service):
    status, body = raw_request(shared_service, "GET", "/")
    assert status == 200
    assert "POST /update" in body["endpoints"]


# ---------------------------------------------------------------------------
# Wire round-trips (no server needed)
# ---------------------------------------------------------------------------


class TestWireRoundTrips:
    @pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
    def test_program_round_trip_is_ast_equal(self, name, make):
        program = make().program
        wire = protocol.program_to_wire(program)
        assert isinstance(wire, str)
        assert protocol.program_from_wire(wire) == program

    @pytest.mark.parametrize("name,make", APPS, ids=[name for name, _ in APPS])
    def test_topology_round_trip_keeps_the_fingerprint(self, name, make):
        topology = make().topology
        wire = protocol.topology_to_wire(topology)
        json.dumps(wire)  # wire form must be pure JSON
        rebuilt = protocol.topology_from_wire(wire)
        assert _topology_fingerprint(rebuilt) == _topology_fingerprint(
            topology
        )

    def test_delta_round_trip(self):
        from repro.netkat.ast import Filter, test

        app = firewall_app()
        delta = Delta(
            set_state=((0, 1),),
            replace_policy=Filter(test("ip_dst", 4)),
            with_policy=Filter(test("ip_dst", 5)),
            topology=app.topology,
        )
        wire = protocol.delta_to_wire(delta)
        json.dumps(wire)
        rebuilt = protocol.delta_from_wire(wire)
        assert rebuilt.set_state == delta.set_state
        assert rebuilt.replace_policy == delta.replace_policy
        assert rebuilt.with_policy == delta.with_policy
        assert _topology_fingerprint(rebuilt.topology) == (
            _topology_fingerprint(delta.topology)
        )

    def test_empty_delta_round_trips_to_a_noop(self):
        rebuilt = protocol.delta_from_wire(protocol.delta_to_wire(Delta()))
        assert rebuilt == Delta()

    def test_unknown_delta_key_is_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.delta_from_wire({"set_sate": [[0, 1]]})

    def test_options_round_trip(self):
        options = CompileOptions(backend="thread", max_workers=3)
        wire = protocol.options_to_wire(options)
        json.dumps(wire)
        rebuilt = protocol.options_from_wire(wire, CompileOptions())
        for field in protocol.REQUESTABLE_OPTION_FIELDS:
            assert getattr(rebuilt, field) == getattr(options, field)

    def test_bad_backend_is_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.options_from_wire(
                {"backend": "gpu"}, CompileOptions()
            )
        assert excinfo.value.code == "bad_options"


# ---------------------------------------------------------------------------
# State-layer units that want no HTTP in the way
# ---------------------------------------------------------------------------


class TestServiceState:
    def test_memo_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceState(memo_size=0)

    def test_unknown_artifact_error_carries_its_code(self):
        app = firewall_app()
        state = ServiceState()
        with pytest.raises(UnknownArtifactError) as excinfo:
            state.update_pipeline("missing", Delta())
        assert excinfo.value.code == "unknown_artifact_key"
        key, _, source = state.compile_pipeline(
            app.program, app.topology, app.initial_state, CompileOptions()
        )
        assert source == "cold"
        assert state.memo_get(key) is not None

    def test_deadline_maps_onto_execution_only_options(self):
        state = ServiceState()
        effective = state.effective_options(deadline_seconds=12.5)
        assert effective.deadline_seconds == 12.5
        # Execution-only: the deadline never perturbs the artifact key.
        app = firewall_app()
        keyed = Pipeline(
            app.program, app.topology, app.initial_state, effective
        )
        plain = Pipeline(app.program, app.topology, app.initial_state)
        assert keyed.artifact_key() == plain.artifact_key()
