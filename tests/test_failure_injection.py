"""Failure injection: corrupted digests, broken invariants, and
malformed inputs must fail loudly, not silently corrupt state."""

import pytest

from repro.apps import authentication_app, bandwidth_cap_app, firewall_app
from repro.events.event import Event
from repro.formula import EQ, Formula, Literal
from repro.netkat.packet import Location, Packet
from repro.runtime.model import RuntimePacket
from repro.runtime.semantics import Runtime, RuntimeInvariantError, Transition

H1, H4 = 1, 4


class TestCorruptedDigests:
    def test_forged_digest_of_unenabled_event_rejected(self):
        """A digest claiming a chain event occurred out of order would
        make the register a non-event-set; the SWITCH rule must refuse."""
        app = bandwidth_cap_app(3)
        rt = app.runtime()
        # Forge the *second* chain event without the first.
        by_eid = {e.eid: e for e in app.nes.events}
        forged = frozenset({by_eid[1]})
        packet = Packet({"ip_dst": H4, "ip_src": H1}).at(Location(1, 2))
        rt.state.switch(1).enqueue_in(
            2, RuntimePacket(packet, tag=frozenset(), digest=forged, trace_path=(0,))
        )
        rt.recorder.record(packet, Location(1, 2))
        with pytest.raises(RuntimeInvariantError):
            rt.apply(Transition("SWITCH", (1, 2)))

    def test_forged_tag_of_unknown_event_set_rejected(self):
        """A tag that is no event-set of the NES cannot name a
        configuration; forwarding must fail loudly."""
        app = firewall_app()
        rt = app.runtime()
        alien = Event(Formula((Literal("zz", EQ, 1),)), Location(9, 9))
        packet = Packet({"ip_dst": H4, "ip_src": H1}).at(Location(1, 2))
        rt.state.switch(1).enqueue_in(
            2,
            RuntimePacket(
                packet, tag=frozenset({alien}), digest=frozenset(), trace_path=(0,)
            ),
        )
        rt.recorder.record(packet, Location(1, 2))
        with pytest.raises(KeyError):
            rt.apply(Transition("SWITCH", (1, 2)))

    def test_consistent_forged_digest_is_absorbed(self):
        """A digest for an event that *could* have occurred is
        indistinguishable from gossip and must be absorbed (the model
        trusts the wire, as the paper's implementation does)."""
        app = firewall_app()
        rt = app.runtime()
        (event,) = app.nes.events
        packet = Packet({"ip_dst": H4, "ip_src": H1}).at(Location(1, 2))
        rt.state.switch(1).enqueue_in(
            2,
            RuntimePacket(
                packet, tag=frozenset(), digest=frozenset({event}), trace_path=(0,)
            ),
        )
        rt.recorder.record(packet, Location(1, 2))
        rt.apply(Transition("SWITCH", (1, 2)))
        assert event in rt.state.switch(1).known_events


class TestBrokenTopology:
    def test_link_transition_without_link_raises(self):
        app = firewall_app()
        rt = app.runtime()
        packet = Packet({"ip_dst": H4}).at(Location(1, 3))  # port 3 has no link
        rt.state.switch(1).enqueue_out(
            3, RuntimePacket(packet, tag=frozenset(), trace_path=(0,))
        )
        rt.recorder.record(packet, Location(1, 3))
        with pytest.raises(RuntimeInvariantError):
            rt.apply(Transition("LINK", (Location(1, 3),)))

    def test_simulator_drops_at_linkless_port(self):
        """The timed simulator records (not raises) when a rule emits to
        a dead port -- packets on the wire can't throw exceptions."""
        from repro.network import CorrectLogic, Frame, SimNetwork

        app = firewall_app()
        net = SimNetwork(app.topology, CorrectLogic(app.compiled), seed=0)
        # Directly emit at a port with neither host nor link.
        frame = Frame(packet=Packet({"sw": 1, "pt": 9}))
        net._emit(Location(1, 9), frame)
        net.run(until=1.0)
        assert any(d.reason == "no-link-at-port" for d in net.drops)


class TestMalformedWorkloads:
    def test_injection_at_unknown_host(self):
        rt = firewall_app().runtime()
        with pytest.raises(KeyError):
            rt.inject("H99", {"ip_dst": 1})

    def test_non_integer_field_rejected_at_injection(self):
        rt = firewall_app().runtime()
        with pytest.raises(TypeError):
            rt.inject("H1", {"ip_dst": "four"})

    def test_runaway_execution_bounded(self):
        rt = firewall_app().runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        with pytest.raises(RuntimeInvariantError):
            rt.run_until_quiescent(max_steps=1)


class TestRegisterMonotonicity:
    def test_registers_only_grow(self):
        """Event knowledge is monotone: no transition shrinks a register."""
        app = authentication_app()
        rt = app.runtime(seed=5, controller_assist=True)
        rt.inject("H4", {"ip_dst": 1, "ip_src": 4, "ident": 1})
        rt.inject("H1", {"ip_dst": 4, "ip_src": 1, "ident": 2})
        rt.inject("H4", {"ip_dst": 2, "ip_src": 4, "ident": 3})
        snapshots = {n: set() for n in rt.state.switches}
        for _ in range(10_000):
            transitions = rt.enabled_transitions()
            if not transitions or rt.state.quiescent():
                break
            rt.apply(transitions[0])
            for n, switch in rt.state.switches.items():
                assert snapshots[n] <= switch.known_events
                snapshots[n] = set(switch.known_events)

    def test_controller_view_superset_of_detected(self):
        app = firewall_app()
        rt = app.runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        rt.drain_controller()
        detected = set().union(
            *(s.known_events for s in rt.state.switches.values())
        )
        assert detected <= (rt.state.controller | rt.state.controller_queue) or (
            rt.state.controller | rt.state.controller_queue
        ) <= detected
