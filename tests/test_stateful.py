"""Tests for Stateful NetKAT: AST, projection (Figure 5), and event
extraction (Figure 6)."""

import pytest

from repro.formula import EQ, Formula, Literal, NE
from repro.netkat.ast import (
    FALSE,
    Filter,
    Link,
    TRUE,
    assign,
    filter_,
    link,
    neg,
    seq,
    star,
    test as field_test,
    union,
)
from repro.netkat.packet import Location
from repro.stateful.ast import (
    LinkUpdate,
    StateTest,
    link_update,
    state_eq,
    state_test,
    uses_state,
    vector_update,
)
from repro.stateful.events import extract
from repro.stateful.projection import project, project_predicate


class TestStatefulAST:
    def test_state_test(self):
        t = state_test(0, 3)
        assert isinstance(t, StateTest)
        assert t.component == 0 and t.value == 3

    def test_state_eq_builds_conjunction(self):
        a = state_eq([1, 2])
        # must mention both components
        assert uses_state(filter_(a))

    def test_link_update_vector_sugar(self):
        lu = link_update("1:1", "2:2", [5, 6])
        assert isinstance(lu, LinkUpdate)
        assert lu.updates == ((0, 5), (1, 6))

    def test_link_update_pairs(self):
        lu = link_update("1:1", "2:2", [(1, 9)])
        assert lu.updates == ((1, 9),)

    def test_vector_update(self):
        assert vector_update((0, 0), [(1, 5)]) == (0, 5)
        assert vector_update((1, 2), [(0, 9), (1, 8)]) == (9, 8)

    def test_vector_update_out_of_range(self):
        with pytest.raises(IndexError):
            vector_update((0,), [(3, 1)])

    def test_uses_state(self):
        assert uses_state(filter_(state_test(0, 1)))
        assert uses_state(link_update("1:1", "2:2", [1]))
        assert not uses_state(seq(assign("a", 1), link("1:1", "2:2")))


class TestProjection:
    def test_state_test_resolves_true(self):
        assert project_predicate(state_test(0, 1), (1,)) is TRUE

    def test_state_test_resolves_false(self):
        assert project_predicate(state_test(0, 1), (2,)) is FALSE

    def test_state_test_out_of_range(self):
        with pytest.raises(IndexError):
            project_predicate(state_test(3, 1), (0,))

    def test_negated_state_test(self):
        assert project_predicate(neg(state_test(0, 1)), (2,)) is TRUE

    def test_link_update_becomes_link(self):
        p = project(link_update("1:1", "2:2", [1]), (0,))
        assert p == Link(Location(1, 1), Location(2, 2))

    def test_guarded_branch_selection(self):
        prog = union(
            seq(filter_(state_eq([0])), assign("a", 1)),
            seq(filter_(state_eq([1])), assign("a", 2)),
        )
        c0 = project(prog, (0,))
        c1 = project(prog, (1,))
        assert c0 == assign("a", 1)
        assert c1 == assign("a", 2)

    def test_field_tests_untouched(self):
        p = filter_(field_test("ip_dst", 4) & state_test(0, 0))
        assert project(p, (0,)) == filter_(field_test("ip_dst", 4))

    def test_projection_of_star(self):
        p = star(seq(filter_(state_eq([0])), assign("a", 1)))
        assert project(p, (1,)) == Filter(TRUE)  # drop* = id


class TestEventExtraction:
    def test_no_update_no_edges(self):
        result = extract(seq(filter_(field_test("a", 1)), link("1:1", "2:2")), (0,))
        assert result.edges == frozenset()
        assert len(result.formulas) == 1

    def test_link_update_produces_edge(self):
        result = extract(
            seq(filter_(field_test("ip_dst", 4)), link_update("1:1", "4:1", [1])),
            (0,),
        )
        (edge,) = result.edges
        assert edge.src == (0,) and edge.dst == (1,)
        assert edge.event.location == Location(4, 1)
        assert edge.event.guard == Formula((Literal("ip_dst", EQ, 4),))

    def test_guard_collects_conjunction(self):
        result = extract(
            seq(
                filter_(field_test("a", 1) & field_test("b", 2)),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        (edge,) = result.edges
        assert edge.event.guard == Formula(
            (Literal("a", EQ, 1), Literal("b", EQ, 2))
        )

    def test_sw_pt_tests_ignored_in_guard(self):
        """Figure 6: Lsw =© nM phi = LtrueM phi, likewise for port."""
        result = extract(
            seq(
                filter_(field_test("pt", 2) & field_test("sw", 1) & field_test("a", 1)),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        (edge,) = result.edges
        assert edge.event.guard == Formula((Literal("a", EQ, 1),))

    def test_pt_assignment_ignored_in_guard(self):
        result = extract(
            seq(filter_(field_test("a", 1)), assign("pt", 1), link_update("1:1", "4:1", [1])),
            (0,),
        )
        (edge,) = result.edges
        assert edge.event.guard == Formula((Literal("a", EQ, 1),))

    def test_assignment_strips_and_replaces(self):
        """Lf <- nM phi = ((exists f: phi) AND f=n)."""
        result = extract(
            seq(
                filter_(field_test("a", 1)),
                assign("a", 5),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        (edge,) = result.edges
        assert edge.event.guard == Formula((Literal("a", EQ, 5),))

    def test_state_test_prunes_branch(self):
        prog = union(
            seq(filter_(state_eq([0])), link_update("1:1", "4:1", [1])),
            seq(filter_(state_eq([1])), link_update("1:1", "4:1", [2])),
        )
        r0 = extract(prog, (0,))
        assert {e.dst for e in r0.edges} == {(1,)}
        r1 = extract(prog, (1,))
        assert {e.dst for e in r1.edges} == {(2,)}

    def test_negated_state_test(self):
        prog = seq(filter_(~state_eq([0])), link_update("1:1", "4:1", [5]))
        assert extract(prog, (0,)).edges == frozenset()
        assert len(extract(prog, (1,)).edges) == 1

    def test_negated_field_test_gives_ne_literal(self):
        result = extract(
            seq(filter_(neg(field_test("a", 1))), link_update("1:1", "4:1", [1])),
            (0,),
        )
        (edge,) = result.edges
        assert edge.event.guard == Formula((Literal("a", NE, 1),))

    def test_demorgan_negated_conj(self):
        """not (a=1 and b=2) splits into two branches."""
        result = extract(
            seq(
                filter_(neg(field_test("a", 1) & field_test("b", 2))),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        guards = {e.event.guard for e in result.edges}
        assert guards == {
            Formula((Literal("a", NE, 1),)),
            Formula((Literal("b", NE, 2),)),
        }

    def test_disjunction_unions(self):
        result = extract(
            seq(
                filter_(field_test("a", 1) | field_test("a", 2)),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        guards = {e.event.guard for e in result.edges}
        assert guards == {
            Formula((Literal("a", EQ, 1),)),
            Formula((Literal("a", EQ, 2),)),
        }

    def test_contradictory_path_pruned(self):
        result = extract(
            seq(
                filter_(field_test("a", 1) & field_test("a", 2)),
                link_update("1:1", "4:1", [1]),
            ),
            (0,),
        )
        assert result.edges == frozenset()

    def test_multi_component_update(self):
        result = extract(link_update("1:1", "4:1", [(0, 7), (1, 8)]), (0, 0))
        (edge,) = result.edges
        assert edge.dst == (7, 8)

    def test_star_extraction_terminates(self):
        prog = star(seq(filter_(field_test("a", 1)), assign("a", 1)))
        result = extract(prog, (0,))
        assert result.formulas  # converged without raising

    def test_star_collects_edges(self):
        prog = star(link_update("1:1", "4:1", [1]))
        result = extract(prog, (0,))
        assert any(e.dst == (1,) for e in result.edges)

    def test_kleisli_threads_formulas(self):
        """Tests after a union see each branch's formula separately."""
        prog = seq(
            union(filter_(field_test("a", 1)), filter_(field_test("a", 2))),
            filter_(field_test("b", 3)),
            link_update("1:1", "4:1", [1]),
        )
        guards = {e.event.guard for e in extract(prog, (0,)).edges}
        assert guards == {
            Formula((Literal("a", EQ, 1), Literal("b", EQ, 3))),
            Formula((Literal("a", EQ, 2), Literal("b", EQ, 3))),
        }
