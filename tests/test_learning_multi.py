"""Tests for the multi-host learning switch: the diamond NES."""

import pytest

from repro.apps import learning_multi_app
from repro.consistency.checker import NESChecker
from repro.events.locality import is_locally_determined
from repro.verify import explore_all_interleavings

H1, H2, H4 = 1, 2, 4


@pytest.fixture(scope="module")
def app():
    return learning_multi_app()


class TestDiamondNES:
    def test_four_states(self, app):
        assert set(app.ets.states()) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_two_independent_events(self, app):
        assert len(app.nes.events) == 2

    def test_full_diamond_of_event_sets(self, app):
        sizes = sorted(len(s) for s in app.nes.event_sets())
        assert sizes == [0, 1, 1, 2]

    def test_both_orders_allowed(self, app):
        e1, e2 = sorted(app.nes.events, key=repr)
        assert app.nes.allows_sequence([e1, e2])
        assert app.nes.allows_sequence([e2, e1])

    def test_lub_maps_to_joint_state(self, app):
        full = frozenset(app.nes.events)
        assert app.nes.state_of(full) == (1, 1)

    def test_locally_determined(self, app):
        assert is_locally_determined(app.nes)


class TestBehavior:
    def deliveries_by_host(self, rt):
        out = {}
        for loc, _ in rt.state.delivered:
            name = rt.compiled.topology.host_at(loc).name
            out[name] = out.get(name, 0) + 1
        return out

    def test_flooding_both_directions_initially(self, app):
        rt = app.runtime()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.run_until_quiescent()
        assert self.deliveries_by_host(rt) == {"H1": 1, "H2": 1}

    def test_learning_h1_stops_h1_flooding_only(self, app):
        rt = app.runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})  # learn H1
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})  # no more flooding
        rt.run_until_quiescent()
        rt.inject("H4", {"ip_dst": H2, "ip_src": H4})  # H2 still floods
        rt.run_until_quiescent()
        counts = self.deliveries_by_host(rt)
        assert counts["H4"] == 1       # H1's reply
        assert counts["H2"] == 1       # direct copy of the H2 request
        assert counts["H1"] == 2       # direct H1 request + flooded H2 copy

    def test_learning_both_ends_all_flooding(self, app):
        rt = app.runtime()
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1})
        rt.run_until_quiescent()
        rt.inject("H2", {"ip_dst": H4, "ip_src": H2})
        rt.run_until_quiescent()
        before = len(rt.state.delivered)
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4})
        rt.inject("H4", {"ip_dst": H2, "ip_src": H4})
        rt.run_until_quiescent()
        new = rt.state.delivered[before:]
        names = sorted(rt.compiled.topology.host_at(loc).name for loc, _ in new)
        assert names == ["H1", "H2"]  # exactly one copy each


class TestTheorem1Diamond:
    @pytest.mark.parametrize("seed", [0, 3, 11, 29])
    def test_racing_learn_events_stay_correct(self, app, seed):
        """Both learning events race; every interleaving's trace must
        satisfy Definition 6 (the diamond makes any order acceptable)."""
        rt = app.runtime(seed=seed)
        rt.inject("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1})
        rt.inject("H2", {"ip_dst": H4, "ip_src": H2, "ident": 2})
        rt.inject("H4", {"ip_dst": H1, "ip_src": H4, "ident": 3})
        rt.run_until_quiescent()
        report = NESChecker(app.nes, app.topology).check(rt.network_trace())
        assert report, report.reason

    def test_exhaustive_two_event_race(self, app):
        result = explore_all_interleavings(
            app,
            [
                ("H1", {"ip_dst": H4, "ip_src": H1, "ident": 1}),
                ("H2", {"ip_dst": H4, "ip_src": H2, "ident": 2}),
            ],
        )
        assert result.all_correct
        assert result.states_visited > 10
